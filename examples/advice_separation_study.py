#!/usr/bin/env python3
"""The paper's headline result as an experiment: Selection is exponentially cheaper.

Produces three small studies:

1. the measured advice of the Theorem 2.2 Selection oracle on members of
   G_{Δ,1}, growing only polynomially with Δ;
2. the Port Election side: on U_{Δ,k}, the correct output of the hub roots
   r_{j,1,1} depends on the member (the swapped port Δ-1+s_j) although their
   views do not -- so any minimum-time PE algorithm needs advice that grows
   with |T_{Δ,k}| ~ (Δ-1)^((Δ-2)(Δ-1)^(k-1)) (Theorem 3.11);
3. the exact pigeonhole tables behind Theorems 2.9, 3.11, 4.11.

Run with:  python examples/advice_separation_study.py
"""

from __future__ import annotations

from repro.advice import (
    measured_selection_advice_bits,
    min_advice_bits_to_distinguish,
    selection_advice_upper_bound_bits,
)
from repro.analysis import (
    format_table,
    pe_lower_bound_rows,
    ppe_cppe_lower_bound_rows,
    selection_lower_bound_rows,
)
from repro.algorithms import udk_port_election_outputs
from repro.families import build_gdk_member, build_udk_member, udk_class_size, udk_tree_count


def study_selection_upper_bound() -> None:
    print("\n-- 1. Selection in minimum time is cheap (Theorem 2.2) --")
    rows = []
    for delta in (4, 5, 6, 7, 8):
        member = build_gdk_member(delta, 1, 2)
        measured = measured_selection_advice_bits(member.graph)
        bound = selection_advice_upper_bound_bits(delta, 1)
        rows.append([delta, member.graph.num_nodes, measured, bound])
    print(format_table(["Δ", "n of G_{Δ,1}[2]", "measured advice bits", "explicit bound"], rows))
    print("Growth is polynomial in Δ (for fixed minimum time k).")


def study_pe_needs_per_member_advice() -> None:
    print("\n-- 2. Port Election in minimum time must be told the member (Theorem 3.11) --")
    delta, k = 4, 1
    y = udk_tree_count(delta, k)
    rows = []
    for s in (1, 2, 3):
        member = build_udk_member(delta, k, tuple(s for _ in range(y)))
        outputs = udk_port_election_outputs(member)
        hub_output = outputs[member.hub_roots[(1, 1)]]
        rows.append([f"σ = ({s},...,{s})", hub_output])
    print(format_table(["class member", "required PE output of hub root r_{1,1,1}"], rows))
    print(
        f"The hub roots' views are identical in all {udk_class_size(delta, k)} members, yet the\n"
        "correct output differs -- the information must come from the advice string, and\n"
        f"distinguishing the members takes at least {min_advice_bits_to_distinguish(udk_class_size(delta, k))} bits."
    )


def study_pigeonhole_tables() -> None:
    print("\n-- 3. The pigeonhole tables of Theorems 2.9, 3.11, 4.11 --")
    print("\nSelection lower bound on G_{Δ,k} (Theorem 2.9):")
    rows = selection_lower_bound_rows([(5, 1), (6, 2), (8, 3)])
    print(
        format_table(
            ["Δ", "k", "class size (bits)", "paper budget (bits)", "collision forced"],
            [[r.delta, r.k, r.class_size.bit_length(), round(r.paper_budget_bits, 1), r.collision_at_paper_budget]
             for r in rows],
        )
    )
    print("\nPort Election lower bound on U_{Δ,k} (Theorem 3.11):")
    rows = pe_lower_bound_rows([(4, 1), (6, 1), (8, 1)])
    print(
        format_table(
            ["Δ", "k", "min advice bits for PE", "Selection budget bits", "exponential gap"],
            [[r.delta, r.k, r.pigeonhole_bits, r.selection_budget_bits,
              r.pigeonhole_bits > r.selection_budget_bits] for r in rows],
        )
    )
    print("\nPPE/CPPE lower bound on J_{µ,k} (Theorems 4.11/4.12):")
    rows = ppe_cppe_lower_bound_rows([(2, 4), (4, 6), (8, 6)])
    print(
        format_table(
            ["µ", "k", "log2 |J_{µ,k}|", "min advice bits", "Selection budget bits"],
            [[r.delta // 4, r.k, r.class_size_log2, r.pigeonhole_bits, r.selection_budget_bits] for r in rows],
        )
    )


def main() -> None:
    study_selection_upper_bound()
    study_pe_needs_per_member_advice()
    study_pigeonhole_tables()


if __name__ == "__main__":
    main()
