#!/usr/bin/env python3
"""How fast does a network de-anonymise?  Per-node anonymity depths.

For every node, the *anonymity depth* is the number of LOCAL rounds after
which its view becomes unique -- the moment it could safely say "it's me" in a
Selection algorithm.  ψ_S(G) is the minimum of these depths; the maximum tells
how long the last twins survive.  The study prints the profiles of a few
networks, including a member of the paper's class G_{Δ,k}, whose whole point
is that only one special node ever reaches a unique view by depth k.

Run with:  python examples/anonymity_profile_study.py
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import anonymity_profile, format_table
from repro.families import build_gdk_member
from repro.portgraph import generators


def describe(name: str, graph) -> None:
    profile = anonymity_profile(graph)
    histogram = Counter(d for d in profile.depths.values() if d is not None)
    forever = len(profile.forever_anonymous)
    depth_summary = ", ".join(f"{count}@{depth}" for depth, count in sorted(histogram.items()))
    print(
        f"{name:<28} n={graph.num_nodes:<5} ψ_S={str(profile.selection_index):<5} "
        f"classes/depth={profile.classes_by_depth}  unique-at-depth: {depth_summary or '--'}"
        + (f"  forever-anonymous: {forever}" if forever else "")
    )


def main() -> None:
    print("Anonymity profiles (how many nodes first become unique at each depth):\n")
    describe("asymmetric ring (n=10)", generators.asymmetric_cycle(10))
    describe("star (5 leaves)", generators.star_graph(5))
    describe("grid 3x4", generators.grid_graph(3, 4))
    describe("hypercube dim 3 (symmetric)", generators.hypercube_graph(3))
    describe("caterpillar 4x2", generators.caterpillar_graph(4, 2))
    describe("random (n=14)", generators.random_connected_graph(14, extra_edges=7, seed=3))

    print("\nThe paper's G_{Δ,k} construction concentrates uniqueness in one node:")
    member = build_gdk_member(4, 1, 3)
    profile = anonymity_profile(member.graph)
    rows = []
    for depth in range(profile.stable_depth + 1):
        count = sum(1 for d in profile.depths.values() if d == depth)
        note = "only r_{i,2} (Lemma 2.6)" if depth == member.k else ""
        rows.append([depth, count, note])
    if profile.forever_anonymous:
        rows.append(["never", len(profile.forever_anonymous), ""])
    print(format_table(["depth", "#nodes first unique here", "note"], rows))
    print(
        f"\nψ_S = {profile.selection_index} = k = {member.k}: exactly one node -- the root of the single "
        "copy of T_{i,2} -- is unique at depth k (Lemma 2.6).  The graph is feasible, so every node "
        "does become unique eventually, but only at depths strictly beyond k: that gap is what makes "
        "electing in *minimum* time require advice."
    )


if __name__ == "__main__":
    main()
