#!/usr/bin/env python3
"""Token-ring recovery: the motivating application of leader election.

Leader election was first formulated (Le Lann 1977; Section 1 of the paper)
for local-area token rings: exactly one node may hold the token that grants
the right to initiate communication, and when the token is lost a new owner
must be elected.

This example shows why the *anonymous* version of the problem is delicate and
what the four task variants buy you:

* a perfectly symmetric ring can never elect a token owner deterministically
  (all views coincide -- infeasible);
* a ring with one irregular port labeling is feasible; Selection names the
  token owner, but only Port Election / (Complete) Port Path Election give
  the other stations a route for forwarding the token request to the owner;
* the stronger the variant, the more rounds may be needed (Fact 1.1), and the
  time is governed by how far a station is from the asymmetry.

Run with:  python examples/token_ring_recovery.py
"""

from __future__ import annotations

from repro.advice import universal_scheme
from repro.analysis import format_table
from repro.core import (
    LEADER,
    Task,
    all_election_indices,
    infeasibility_witness,
    is_feasible,
    validate_outcome,
)
from repro.portgraph import generators
from repro.portgraph.paths import follow_ports


def main() -> None:
    # --- a symmetric ring: recovery is impossible -------------------------- #
    symmetric = generators.cycle_graph(8)
    print("Symmetric 8-station ring (every station labels clockwise=0, counter-clockwise=1):")
    print(f"  feasible? {is_feasible(symmetric)}")
    witness = infeasibility_witness(symmetric)
    print(f"  {len(witness)} stations share one view -- no deterministic algorithm can break the tie.\n")

    # --- an asymmetric ring: recovery works -------------------------------- #
    ring = generators.asymmetric_cycle(8)
    print("Ring with one irregular station (station 0 swapped its two port labels):")
    print(f"  feasible? {is_feasible(ring)}")
    indices = all_election_indices(ring)
    rows = [[task.value, task.full_name, indices[task]] for task in Task.ordered()]
    print(format_table(["task", "name", "rounds needed"], rows))

    # --- electing the token owner and routing to it ------------------------ #
    outcome = universal_scheme(Task.PORT_PATH_ELECTION).run(ring)
    validate_outcome(ring, outcome).raise_if_invalid()
    owner = outcome.leader()
    print(f"\nElected token owner: station {owner} (after {outcome.rounds} rounds)")
    print("Each station's forwarding route to the owner (its PPE output):")
    rows = []
    for station in ring.nodes():
        output = outcome.outputs[station]
        if output == LEADER or station == owner:
            rows.append([station, "-- owns the token --", 0])
            continue
        route = follow_ports(ring, station, output)
        rows.append([station, "->".join(str(v) for v in route), len(output)])
    print(format_table(["station", "token request route", "hops"], rows))

    # --- why Selection alone is not enough --------------------------------- #
    print(
        "\nWith Selection only, a station knows *that* an owner exists but not how to\n"
        "reach it; with Port Election it knows the next hop; with (Complete) Port Path\n"
        "Election it can put the whole route in the packet header -- the trade-off the\n"
        "paper quantifies in advice bits."
    )


if __name__ == "__main__":
    main()
