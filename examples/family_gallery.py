#!/usr/bin/env python3
"""Gallery of the paper's lower-bound constructions.

Builds small instances of every construction of the paper -- the trees of
Figure 1, a member of G_{Δ,k} (Figure 2), the template U (Figure 3), the
layer graphs (Figure 4), the component H and gadget Ĥ (Figures 5-8) and a
small prefix view of the class J_{µ,k} (Figures 9-11) -- prints their
statistics, and exports the small ones to Graphviz DOT files in the current
directory so they can be rendered and compared against the paper's figures.

Run with:  python examples/family_gallery.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import format_table, summarize_graph
from repro.families import (
    build_component,
    build_gadget,
    build_gdk_member,
    build_layer_graph,
    build_udk_template,
    figure_1_example,
    gadget_size,
    jmuk_border_count,
    jmuk_class_size,
    jmuk_num_gadgets,
)
from repro.portgraph.io import graph_to_dot

OUTPUT_DIR = Path(".")
EXPORT_DOT = True
MAX_DOT_NODES = 120


def show(title: str, graph, highlight=None) -> None:
    summary = summarize_graph(graph, max_depth=4)
    print(
        f"{title:<38} n={summary.num_nodes:<6} m={summary.num_edges:<6} "
        f"Δ={summary.max_degree:<3} ψ_S={summary.selection_index}"
    )
    if EXPORT_DOT and graph.num_nodes <= MAX_DOT_NODES:
        filename = OUTPUT_DIR / (title.split(" ")[0].replace("/", "-") + ".dot")
        filename.write_text(graph_to_dot(graph, highlight=highlight or {}))
        print(f"{'':<38} wrote {filename}")


def main() -> None:
    print("Figure 1: the trees T_{X,1} and T_{X,2} (Δ=4, k=2, X=(1,2,3,3,2,2))")
    for variant in (1, 2):
        graph, handles = figure_1_example(variant)
        show(f"T_X{variant} (figure 1)", graph, highlight={handles.root: "lightblue"})

    print("\nFigure 2: a member of G_{Δ,k}")
    member = build_gdk_member(4, 1, 3)
    show("G_{4,1}[3] (figure 2)", member.graph, highlight={member.distinguished_root: "gold"})

    print("\nFigure 3: the template U of the class U_{Δ,k}")
    template = build_udk_template(4, 1)
    show("U(4,1) (figure 3)", template.graph)

    print("\nFigure 4: layer graphs for µ=3")
    rows = []
    for m in range(6):
        graph, _handles = build_layer_graph(3, m)
        rows.append([m, graph.num_nodes, graph.num_edges])
    print(format_table(["m", "|L_m|", "edges"], rows))

    print("\nFigures 5-8: component H and gadget Ĥ for µ=2, k=4")
    component_graph, component_handles = build_component(2, 4)
    show("H(2,4) (figures 5-7)", component_graph, highlight={component_handles.root: "lightblue"})
    gadget_graph, gadget_handles = build_gadget(2, 4)
    show("gadget(2,4) (figure 8)", gadget_graph, highlight={gadget_handles.rho: "gold"})

    print("\nFigures 9-11: the class J_{µ,k} at µ=2, k=4 (not exported: 132k nodes)")
    z = jmuk_border_count(2, 4)
    rows = [
        ["z = |L_4|", z],
        ["gadgets chained (2^z)", jmuk_num_gadgets(2, 4)],
        ["nodes per gadget", gadget_size(2, 4)],
        ["total nodes of one member", jmuk_num_gadgets(2, 4) * gadget_size(2, 4)],
        ["members in the class (2^(2^(z-1)))", f"2^{2 ** (z - 1)}"],
    ]
    print(format_table(["quantity", "value"], rows))
    assert jmuk_class_size(2, 4) == 2 ** (2 ** (z - 1))


if __name__ == "__main__":
    main()
