#!/usr/bin/env python3
"""A tour of the four shades of leader election on one graph.

Solves Selection, Port Election, Port Path Election and Complete Port Path
Election -- each in its own minimum time -- on the paper's 3-node example and
on a richer random network, showing the outputs side by side and how each
stronger variant refines the weaker one (Fact 1.1).

Run with:  python examples/four_shades_tour.py
"""

from __future__ import annotations

from repro.algorithms import weaken_outputs
from repro.analysis import format_table
from repro.core import (
    LEADER,
    Task,
    all_election_indices,
    path_election_assignment,
    port_election_assignment,
    selection_assignment,
    validate,
)
from repro.portgraph import generators


def outputs_for(graph, task, depth):
    """Minimum-time outputs of a map-based algorithm for the given task."""
    if task is Task.SELECTION:
        leader = selection_assignment(graph, depth)
        return {v: LEADER if v == leader else "non-leader" for v in graph.nodes()}
    if task is Task.PORT_ELECTION:
        leader, ports = port_election_assignment(graph, depth)
        outputs = dict(ports)
        outputs[leader] = LEADER
        return outputs
    complete = task is Task.COMPLETE_PORT_PATH_ELECTION
    leader, sequences = path_election_assignment(graph, depth, complete=complete)
    outputs = dict(sequences)
    outputs[leader] = LEADER
    return outputs


def tour(graph) -> None:
    print(f"\n=== {graph.name}: n={graph.num_nodes}, m={graph.num_edges} ===")
    indices = all_election_indices(graph)
    per_task = {}
    for task in Task.ordered():
        depth = indices[task]
        outputs = outputs_for(graph, task, depth)
        assert validate(task, graph, outputs).ok
        per_task[task] = (depth, outputs)

    rows = []
    for v in graph.nodes():
        rows.append(
            [v]
            + [repr(per_task[task][1][v]) for task in Task.ordered()]
        )
    headers = ["node"] + [
        f"{task.value} (ψ={per_task[task][0]})" for task in Task.ordered()
    ]
    print(format_table(headers, rows))

    # Fact 1.1 in action: the CPPE solution projects down to all the others.
    depth, cppe_outputs = per_task[Task.COMPLETE_PORT_PATH_ELECTION]
    for weaker in (Task.PORT_PATH_ELECTION, Task.PORT_ELECTION, Task.SELECTION):
        derived = weaken_outputs(Task.COMPLETE_PORT_PATH_ELECTION, cppe_outputs, weaker)
        assert validate(weaker, graph, derived).ok
    print(
        f"Projecting the CPPE solution (computed in {depth} rounds) downwards yields valid "
        "PPE, PE and Selection solutions -- Fact 1.1."
    )


def main() -> None:
    # The paper's own example: 3-node line with ports 0,0,1,0 (ψ_CPPE = 1 > 0 = ψ_S).
    tour(generators.three_node_line())
    # A star: CPPE needs one round because the leaves arrive at the centre on
    # different ports, yet Selection is instantaneous.
    tour(generators.star_graph(4))
    # A richer random network.
    tour(generators.random_connected_graph(9, extra_edges=4, seed=12))


if __name__ == "__main__":
    main()
