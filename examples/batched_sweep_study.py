#!/usr/bin/env python3
"""Batched sweeps with the experiment runner and the shared refinement cache.

This study shows the machinery behind the ``repro-leader-election bench``
subcommand:

1. declare a sweep (graph specs x tasks) as plain data,
2. run it serially -- every ψ_S/ψ_PE/ψ_PPE/ψ_CPPE query about one graph is
   answered from a single memoised partition refinement,
3. run the *same* sweep again and observe, via the cache counters, that no
   new refinement passes were needed,
4. fan the sweep out over worker processes and check that the result table
   is byte-identical to the serial one.

Run with:  python examples/batched_sweep_study.py
"""

from __future__ import annotations

from repro.runner import ExperimentRunner, GraphSpec, SweepSpec, refinement_cache


def build_sweep() -> SweepSpec:
    """Graph families x all four tasks, declared as data."""
    graphs = [GraphSpec.make("asymmetric-cycle", n=n) for n in range(5, 11)]
    graphs += [GraphSpec.make("star", leaves=leaves) for leaves in (3, 4, 5)]
    graphs += [GraphSpec.make("gdk", delta=4, k=1, index=index) for index in (1, 2, 3)]
    graphs += [GraphSpec.make("random", n=9, extra_edges=4, seed=seed) for seed in (1, 2)]
    return SweepSpec.make(graphs, profile_depths=(0, 1))


def main() -> None:
    sweep = build_sweep()
    runner = ExperimentRunner()

    # 1+2. Cold run: every graph is refined exactly once.
    refinement_cache.clear()
    cold = runner.run(sweep)
    print(cold.table.to_text())
    stats = cold.cache_stats
    print(
        f"\nCold run: {len(sweep.graphs)} graphs in {cold.elapsed:.3f}s -- "
        f"{stats['misses']} refinements built, {stats['refinement_passes']} refinement passes"
    )

    # 3. Warm run: the same spec is served entirely from the cache.
    before = refinement_cache.stats()
    warm = runner.run(sweep)
    after = warm.cache_stats
    print(
        f"Warm run:  same sweep in {warm.elapsed:.3f}s -- "
        f"{after['hits'] - before['hits']} cache hits, "
        f"{after['refinement_passes'] - before['refinement_passes']} new refinement passes"
    )
    assert warm.table.to_json() == cold.table.to_json()

    # 4. Parallel fan-out: deterministic chunked scheduling, identical bytes.
    parallel = ExperimentRunner(workers=2).run(sweep)
    identical = parallel.table.to_csv() == cold.table.to_csv()
    print(
        f"Parallel run (2 workers): {parallel.elapsed:.3f}s -- "
        f"table byte-identical to serial: {identical}"
    )
    assert identical

    # The spec itself is serialisable: hand it to `repro-leader-election bench --spec`.
    print("\nSpec as JSON (first 3 lines):")
    print("\n".join(sweep.to_json().splitlines()[:3]))


if __name__ == "__main__":
    main()
