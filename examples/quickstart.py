#!/usr/bin/env python3
"""Quickstart: anonymous leader election on a small port-labeled network.

This walks through the core objects of the library:

1. build a port-labeled anonymous network,
2. check whether leader election is feasible at all (Yamashita-Kameda),
3. compute the election indices ψ_S, ψ_PE, ψ_PPE, ψ_CPPE -- the minimum number
   of communication rounds for each of the paper's four task variants,
4. run the Theorem 2.2 algorithm-with-advice in the LOCAL-model simulator and
   validate its output,
5. solve all four tasks in minimum time with the universal map-advice scheme.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.advice import selection_with_advice_scheme, universal_scheme
from repro.analysis import format_table, summarize_graph
from repro.core import Task, all_election_indices, is_feasible, validate_outcome
from repro.portgraph import GraphBuilder, generators


def build_custom_network():
    """A small asymmetric network: a 5-cycle with a pendant path and a leaf."""
    builder = GraphBuilder(name="quickstart-network")
    cycle = builder.add_nodes(5)
    for i in range(5):
        builder.add_edge(cycle[i], 0, cycle[(i + 1) % 5], 1)
    # a pendant path of length 2 hanging off node 0 and a single leaf off node 2
    p1, p2 = builder.add_nodes(2)
    builder.add_edge(cycle[0], 2, p1, 0)
    builder.add_edge(p1, 1, p2, 0)
    leaf = builder.add_node()
    builder.add_edge(cycle[2], 2, leaf, 0)
    return builder.build()


def main() -> None:
    graph = build_custom_network()
    print(f"Built {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges, Δ={graph.max_degree}")

    # 1. Feasibility: leader election is possible iff all (infinite) views differ.
    print(f"\nFeasible for leader election? {is_feasible(graph)}")
    symmetric = generators.cycle_graph(6)
    print(f"(for comparison, the symmetric 6-cycle: {is_feasible(symmetric)})")

    # 2. Election indices: minimum time for each of the four shades.
    indices = all_election_indices(graph)
    rows = [[task.value, task.full_name, indices[task]] for task in Task.ordered()]
    print("\nElection indices (minimum rounds, given the map):")
    print(format_table(["task", "name", "ψ_Z(G)"], rows))

    # 3. Theorem 2.2: Selection in minimum time with a short advice string.
    scheme = selection_with_advice_scheme()
    outcome = scheme.run(graph)
    validate_outcome(graph, outcome).raise_if_invalid()
    print(
        f"\nTheorem 2.2 Selection-with-advice: leader = node {outcome.leader()}, "
        f"{outcome.rounds} round(s), {outcome.advice_bits} advice bits"
    )

    # 4. Universal map-advice algorithms: every task in its minimum time.
    print("\nUniversal (map advice) minimum-time algorithms:")
    rows = []
    for task in Task.ordered():
        result = universal_scheme(task).run(graph)
        validate_outcome(graph, result).raise_if_invalid()
        sample_node = max(graph.nodes())
        rows.append([task.value, result.rounds, result.advice_bits, repr(result.outputs[sample_node])])
    print(format_table(["task", "rounds", "advice bits", f"output of node {max(graph.nodes())}"], rows))

    # 5. A compact summary of the instance.
    summary = summarize_graph(graph)
    print(
        f"\nView classes by depth (how fast the network 'de-symmetrises'): "
        f"{summary.view_classes_by_depth}"
    )


if __name__ == "__main__":
    main()
