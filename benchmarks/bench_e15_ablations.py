"""E15 -- ablations and extensions beyond the paper's stated results.

Two studies that complement the theorems:

* **Sufficient vs necessary advice on the lower-bound classes.**  The classes
  are parameterised by a sequence (σ for U_{Δ,k}, Y for J_{µ,k}); transmitting
  that sequence is enough to solve the respective task in minimum time, so the
  lower bounds of Theorems 3.11 and 4.11/4.12 are essentially tight on their
  own classes.
* **Time vs advice for Selection.**  The paper's concluding open question asks
  how the picture changes when more than the minimum time is allotted; for the
  concrete Theorem 2.2 scheme the advice *grows* with the allotted time (the
  encoded view gets deeper), while the full-map baseline is time-independent.
"""

from __future__ import annotations

import pytest

from repro.advice import min_advice_bits_to_distinguish, sufficient_vs_necessary_bits
from repro.analysis import map_advice_vs_time, selection_advice_vs_time
from repro.families import (
    build_jmuk_member,
    build_udk_member,
    jmuk_border_count,
    udk_class_size,
    udk_tree_count,
)
from repro.portgraph import generators


def bench_sufficient_vs_necessary_advice(benchmark, table_printer):
    def measure():
        rows = []
        for delta in (4, 5):
            y = udk_tree_count(delta, 1)
            member = build_udk_member(delta, 1, tuple((j % (delta - 1)) + 1 for j in range(y)))
            entry = sufficient_vs_necessary_bits(member)
            rows.append(["U", delta, 1, entry["task"], entry["sufficient_bits"], entry["necessary_bits"]])
        z = jmuk_border_count(2, 4)
        member = build_jmuk_member(2, 4, tuple(i % 2 for i in range(2 ** (z - 1))))
        entry = sufficient_vs_necessary_bits(member)
        rows.append(["J", 8, 4, entry["task"], entry["sufficient_bits"], entry["necessary_bits"]])
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=2)
    table_printer(
        "E15: sufficient (constructive) vs necessary (pigeonhole) advice on the classes",
        ["family", "Δ", "k", "task", "sufficient bits (this repo)", "necessary bits (paper's LB)"],
        rows,
    )
    # the constructive advice is within a small factor of the lower bound
    for row in rows:
        assert row[4] >= row[5] or row[4] * 4 >= row[5]
    # and for J it matches the forced amount exactly
    assert rows[-1][4] == rows[-1][5]


def bench_udk_sigma_advice_matches_lower_bound_order(benchmark, table_printer):
    def measure():
        rows = []
        for delta in (4, 5, 6):
            y = udk_tree_count(delta, 1)
            member = build_udk_member(delta, 1, tuple(1 for _ in range(y)))
            entry = sufficient_vs_necessary_bits(member)
            lower = min_advice_bits_to_distinguish(udk_class_size(delta, 1))
            rows.append([delta, y, entry["sufficient_bits"], lower])
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=2)
    table_printer(
        "E15: σ-advice for PE on U_{Δ,1} vs the Theorem 3.11 requirement",
        ["Δ", "|T_{Δ,1}|", "σ-advice bits (sufficient)", "min bits (necessary)"],
        rows,
    )
    # both grow with the same driver |T_{Δ,k}|: their ratio stays within the log factor
    for _delta, y, sufficient, necessary in rows:
        assert sufficient <= 8 * necessary + 16
        assert necessary <= 8 * sufficient + 16


def bench_selection_time_vs_advice(benchmark, table_printer):
    graph = generators.asymmetric_cycle(9)

    def measure():
        return selection_advice_vs_time(graph, extra_rounds=(0, 1, 2, 3)), map_advice_vs_time(graph)

    rows, baseline = benchmark(measure)
    table_printer(
        "E15: allotted time vs advice for Selection (Theorem 2.2 scheme vs full map)",
        ["graph", "allotted rounds", "ψ_S", "advice bits", "scheme"],
        [[r.graph_name, r.allotted_time, r.minimum_time, r.advice_bits, r.scheme] for r in rows]
        + [[baseline.graph_name, f">= {baseline.minimum_time}", baseline.minimum_time, baseline.advice_bits, baseline.scheme]],
    )
    bits = [r.advice_bits for r in rows]
    assert bits == sorted(bits)  # the view-comparison scheme pays more for more time
