"""E11 -- Lemma 4.8: the k-round CPPE algorithm on J_{µ,k}.

Runs the gadget-index decoding and path construction for nodes sampled from
gadgets across the whole chain (including both boundary gadgets), validates
every produced path (simple, ends at ρ_0), and times the per-node decision.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import JmukCppeAlgorithm, jmuk_leader
from repro.core.tasks import LEADER
from repro.families import build_jmuk_member, jmuk_border_count
from repro.portgraph.paths import is_simple_node_sequence, path_from_complete_ports

MU, K = 2, 4


@pytest.fixture(scope="module")
def member():
    z = jmuk_border_count(MU, K)
    random.seed(11)
    y = tuple(random.randint(0, 1) for _ in range(2 ** (z - 1)))
    return build_jmuk_member(MU, K, y)


@pytest.fixture(scope="module")
def algorithm(member):
    return JmukCppeAlgorithm(member)


def bench_cppe_decisions_across_the_chain(benchmark, table_printer, member, algorithm):
    random.seed(5)
    sampled_gadgets = [0, 1, 127, 128, 511, 512, 767, 1022, 1023]
    nodes = []
    for gadget in sampled_gadgets:
        nodes.extend(random.sample(member.gadget_nodes(gadget), 4))
    nodes.extend(member.rho(i) for i in (0, 1, 512, 1023))

    def decide_all():
        return {v: algorithm.output(v) for v in nodes}

    outputs = benchmark.pedantic(decide_all, iterations=1, rounds=3)
    leader = jmuk_leader(member)
    valid = 0
    max_length = 0
    for v, value in outputs.items():
        if v == leader:
            valid += value == LEADER
            continue
        path = path_from_complete_ports(member.graph, v, value)
        ok = path is not None and is_simple_node_sequence(path) and path[-1] == leader
        valid += ok
        max_length = max(max_length, len(value) // 2)
    table_printer(
        "E11 / Lemma 4.8: CPPE outputs on sampled nodes of J_Y (µ=2, k=4)",
        ["sampled nodes", "valid outputs", "longest output path (edges)", "leader", "rounds of information used"],
        [[len(outputs), valid, max_length, "ρ_0", K]],
    )
    assert valid == len(outputs)


def bench_gadget_index_decoding(benchmark, table_printer, member, algorithm):
    gadgets = [0, 1, 2, 100, 511, 512, 1000, 1023]

    def decode_all():
        results = []
        for i in gadgets:
            for component, block in (("L", 0), ("T", 1), ("R", 2), ("B", 3)):
                code = algorithm.component_code(i, component)
                results.append(algorithm.decode_gadget_index(code, block) == i)
        return results

    results = benchmark(decode_all)
    table_printer(
        "E11: gadget-index decoding from border-node degrees (the W values of Lemma 4.8)",
        ["gadgets probed", "component codes decoded", "all correct"],
        [[len(gadgets), len(results), all(results)]],
    )
    assert all(results)
