"""Shared fixtures and table-printing helpers for the benchmark harness.

Every benchmark module regenerates the rows of one of the paper's
figures/facts/theorems (see DESIGN.md's per-experiment index E1..E14 and
EXPERIMENTS.md for the paper-vs-measured record).  Each module both

* prints the reproduced table (parameter columns, paper-predicted value,
  measured value), and
* times the underlying computation with ``pytest-benchmark``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.analysis import format_table


def emit_table(title: str, headers: Sequence[str], rows: List[List[object]]) -> None:
    """Print one reproduced table.  ``-s`` shows it live; it is also captured in the report."""
    print()
    print(f"== {title} ==")
    print(format_table(list(headers), rows))


@pytest.fixture(scope="session")
def table_printer():
    return emit_table
