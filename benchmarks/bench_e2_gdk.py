"""E2 -- Figure 2, Fact 2.3, Lemmas 2.5-2.7: the class G_{Δ,k}.

Rebuilds members G_i, checks that exactly the root of the single copy of
T_{i,2} has a unique depth-k view (Lemma 2.6), that ψ_S(G_i) = k (Lemma 2.7),
and tabulates the class sizes of Fact 2.3.

ψ_S and the uniqueness profile are computed through the experiment runner
(one ``gdk`` spec per member, profiled at depth k); the structural check that
the unique node is the distinguished root r_{i,2} reuses the same cached
refinement via :func:`repro.runner.shared_refinement`.
"""

from __future__ import annotations

import pytest

from repro.core import Task
from repro.families import build_gdk_member, gdk_class_size
from repro.runner import ExperimentRunner, GraphSpec, SweepSpec, shared_refinement

_MEMBER_POINTS = [(4, 1, 3), (4, 1, 9), (5, 1, 4), (4, 2, 2)]


@pytest.mark.parametrize("delta,k,index", _MEMBER_POINTS)
def bench_gdk_member_construction(benchmark, table_printer, delta, k, index):
    member = benchmark(build_gdk_member, delta, k, index)
    sweep = SweepSpec.make(
        [GraphSpec.make("gdk", delta=delta, k=k, index=index)],
        tasks=[Task.SELECTION],
        profile_depths=[k],
    )
    record = ExperimentRunner().run(sweep).table.records()[0]
    # the runner built an equal graph, so this is a cache hit, not a recompute
    unique = shared_refinement(member.graph).unique_nodes(k)
    table_printer(
        f"E2 / Figure 2: G_{{Δ={delta},k={k}}}[{index}]",
        ["Δ", "k", "i", "nodes", "edges", "ψ_S (paper: k)", "#unique@k (paper: 1)", "unique is r_{i,2}"],
        [[
            delta, k, index,
            record["n"], record["m"],
            record["psi_S"], record[f"unique_at_{k}"], unique == [member.distinguished_root],
        ]],
    )
    assert record["psi_S"] == k
    assert record[f"unique_at_{k}"] == 1
    assert unique == [member.distinguished_root]


def bench_gdk_selection_sweep(benchmark, table_printer):
    """ψ_S = k across members of several classes, as one batched runner sweep."""
    sweep = SweepSpec.make(
        [GraphSpec.make("gdk", delta=delta, k=k, index=index) for delta, k, index in _MEMBER_POINTS],
        tasks=[Task.SELECTION],
    )
    report = benchmark(ExperimentRunner().run, sweep)
    records = report.table.records()
    table_printer(
        "E2 / Lemma 2.7: ψ_S(G_i) = k over a batched member sweep",
        ["graph", "n", "ψ_S", "ψ_S == k"],
        [[r["graph"], r["n"], r["psi_S"], r["psi_S"] == k]
         for r, (_delta, k, _index) in zip(records, _MEMBER_POINTS)],
    )
    assert all(
        record["psi_S"] == k for record, (_delta, k, _index) in zip(records, _MEMBER_POINTS)
    )


def bench_fact_2_3_class_sizes(benchmark, table_printer):
    parameters = [(4, 1), (5, 1), (6, 1), (4, 2), (5, 2), (6, 3), (8, 4)]

    def compute():
        return [(delta, k, gdk_class_size(delta, k)) for delta, k in parameters]

    rows = benchmark(compute)
    table_printer(
        "E2 / Fact 2.3: |G_{Δ,k}| = (Δ-1)^((Δ-2)(Δ-1)^(k-1))",
        ["Δ", "k", "|G_{Δ,k}| (exact)"],
        [[delta, k, size if size < 10**40 else f"~2^{size.bit_length() - 1}"] for delta, k, size in rows],
    )
    assert rows[0][2] == 9
    assert rows[1][2] == 64
