"""E2 -- Figure 2, Fact 2.3, Lemmas 2.5-2.7: the class G_{Δ,k}.

Rebuilds members G_i, checks that exactly the root of the single copy of
T_{i,2} has a unique depth-k view (Lemma 2.6), that ψ_S(G_i) = k (Lemma 2.7),
and tabulates the class sizes of Fact 2.3.
"""

from __future__ import annotations

import pytest

from repro.core import selection_index
from repro.families import build_gdk_member, gdk_class_size
from repro.views import ViewRefinement


@pytest.mark.parametrize("delta,k,index", [(4, 1, 3), (4, 1, 9), (5, 1, 4), (4, 2, 2)])
def bench_gdk_member_construction(benchmark, table_printer, delta, k, index):
    member = benchmark(build_gdk_member, delta, k, index)
    refinement = ViewRefinement(member.graph)
    psi = selection_index(member.graph, refinement=refinement)
    unique = refinement.unique_nodes(k)
    table_printer(
        f"E2 / Figure 2: G_{{Δ={delta},k={k}}}[{index}]",
        ["Δ", "k", "i", "nodes", "edges", "ψ_S (paper: k)", "#unique@k (paper: 1)", "unique is r_{i,2}"],
        [[
            delta, k, index,
            member.graph.num_nodes, member.graph.num_edges,
            psi, len(unique), unique == [member.distinguished_root],
        ]],
    )
    assert psi == k
    assert unique == [member.distinguished_root]


def bench_fact_2_3_class_sizes(benchmark, table_printer):
    parameters = [(4, 1), (5, 1), (6, 1), (4, 2), (5, 2), (6, 3), (8, 4)]

    def compute():
        return [(delta, k, gdk_class_size(delta, k)) for delta, k in parameters]

    rows = benchmark(compute)
    table_printer(
        "E2 / Fact 2.3: |G_{Δ,k}| = (Δ-1)^((Δ-2)(Δ-1)^(k-1))",
        ["Δ", "k", "|G_{Δ,k}| (exact)"],
        [[delta, k, size if size < 10**40 else f"~2^{size.bit_length() - 1}"] for delta, k, size in rows],
    )
    assert rows[0][2] == 9
    assert rows[1][2] == 64
