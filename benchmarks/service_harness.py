"""Shared in-process service harness for benchmarks and the CI gate.

Runs an :class:`~repro.service.ElectionServer` on an ephemeral port, driven
by a background event-loop thread, and provides tiny blocking HTTP helpers
(single query, NDJSON batch stream, stats) so benchmark scripts and
``ci_gate.py`` exercise the real wire protocol without duplicating the
server plumbing.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.service import ElectionServer, ElectionService

__all__ = ["ThreadedElectionServer"]


class ThreadedElectionServer:
    """Context manager: a live server on ``127.0.0.1:<ephemeral>``."""

    def __init__(self, service: ElectionService) -> None:
        self.service = service
        self.server = ElectionServer(service, port=0)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.base = ""

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def __enter__(self) -> "ThreadedElectionServer":
        self._thread.start()
        if not self._started.wait(10):
            raise RuntimeError("service failed to start")
        self.base = f"http://127.0.0.1:{self.server.port}"
        return self

    def __exit__(self, *exc_info) -> None:
        async def _shutdown() -> None:
            await self.server.close()
            await asyncio.sleep(0.05)

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)

    # ------------------------------------------------------------------ #
    def get(self, path: str) -> Dict[str, Any]:
        with urllib.request.urlopen(f"{self.base}{path}", timeout=60) as response:
            return json.loads(response.read())

    def post(self, path: str, payload: Any) -> Dict[str, Any]:
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=600) as response:
            return json.loads(response.read())

    def post_batch(
        self, payload: Any
    ) -> Tuple[List[Dict[str, Any]], List[float], float]:
        """POST a batch; returns (parsed NDJSON lines, per-line arrival gaps, wall s)."""
        request = urllib.request.Request(
            f"{self.base}/elections",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        lines: List[Dict[str, Any]] = []
        gaps: List[float] = []
        begin = time.perf_counter()
        previous: Optional[float] = None
        with urllib.request.urlopen(request, timeout=600) as response:
            for raw_line in response:
                now = time.perf_counter()
                if previous is not None:
                    gaps.append(now - previous)
                previous = now
                lines.append(json.loads(raw_line))
        return lines, gaps, time.perf_counter() - begin
