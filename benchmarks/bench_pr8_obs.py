"""PR 8 — tracing overhead on the warm serving path, gated at < 3 %.

Not a table of the paper: the performance record of the observability
layer.  The E16-style mixed sweep (families + generators + joint searches)
is first made fully warm (store-backed, every answer memoised), then the
warm replay is timed repeatedly in two modes:

* **traced** -- tracing enabled *and* an active root span, so every
  ``evaluate_graph`` call produces a real span with counter-delta tags
  (the state a served request is in);
* **untraced** -- tracing disabled wholesale via
  :func:`repro.obs.set_tracing`, the kill-switch a production operator
  would flip.

Modes alternate round by round so drift (thermal, page cache) hits both
equally; the comparison uses the **minimum** round per mode, the standard
noise-robust estimator for a deterministic workload.  The gate asserts the
traced minimum is within ``OVERHEAD_GATE`` of the untraced one.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr8_obs.py [BENCH_PR8.json]
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_e16_service import E16_SWEEP  # noqa: E402

from repro.obs import default_recorder, new_trace_id, set_tracing, span  # noqa: E402
from repro.runner import ExperimentRunner, refinement_cache  # noqa: E402

#: Alternating timed rounds per mode.
ROUNDS = 7
#: Warm sweep replays per timed round (one replay is too short to time).
REPS_PER_ROUND = 10
#: The gate: traced warm-path time within this fraction of untraced.
OVERHEAD_GATE = 0.03


def _warm_up(store_dir: str) -> None:
    """Populate the store and the in-memory cache; verify the replay is warm."""
    runner = ExperimentRunner(store_path=store_dir)
    runner.run(E16_SWEEP)
    before = refinement_cache.stats()["refinement_passes"]
    runner.run(E16_SWEEP)
    after = refinement_cache.stats()["refinement_passes"]
    assert after == before, "replay must be fully warm before timing starts"


def _timed_round(runner: ExperimentRunner, traced: bool) -> float:
    prior = set_tracing(traced)
    try:
        begin = time.perf_counter()
        if traced:
            with span("bench", trace_id=new_trace_id("pr8")):
                for _ in range(REPS_PER_ROUND):
                    runner.run(E16_SWEEP)
        else:
            for _ in range(REPS_PER_ROUND):
                runner.run(E16_SWEEP)
        return time.perf_counter() - begin
    finally:
        set_tracing(prior)


def run_overhead(store_dir: str) -> dict:
    refinement_cache.clear()
    default_recorder.clear()
    _warm_up(store_dir)
    runner = ExperimentRunner(store_path=store_dir)
    traced_rounds: list = []
    untraced_rounds: list = []
    for round_index in range(ROUNDS):
        # alternate starting sides so neither mode always runs first
        order = (True, False) if round_index % 2 == 0 else (False, True)
        for traced in order:
            elapsed = _timed_round(runner, traced)
            (traced_rounds if traced else untraced_rounds).append(elapsed)
    traced_best = min(traced_rounds)
    untraced_best = min(untraced_rounds)
    overhead = traced_best / untraced_best - 1.0
    recorder = default_recorder.stats()
    result = {
        "sweep_graphs": [spec.label for spec in E16_SWEEP.graphs],
        "rounds": ROUNDS,
        "reps_per_round": REPS_PER_ROUND,
        "traced_rounds_s": [round(value, 6) for value in traced_rounds],
        "untraced_rounds_s": [round(value, 6) for value in untraced_rounds],
        "traced_best_s": round(traced_best, 6),
        "untraced_best_s": round(untraced_best, 6),
        "overhead_fraction": round(overhead, 6),
        "overhead_gate": OVERHEAD_GATE,
        "spans_recorded": recorder["spans"],
        "spans_dropped": recorder["dropped"],
    }
    assert recorder["spans"] > 0, "traced rounds must have recorded spans"
    assert overhead < OVERHEAD_GATE, (
        f"tracing overhead {overhead:.2%} exceeds the {OVERHEAD_GATE:.0%} gate "
        f"(traced {traced_best:.6f}s vs untraced {untraced_best:.6f}s)"
    )
    return result


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else "BENCH_PR8.json"
    store_dir = tempfile.mkdtemp(prefix="bench-pr8-store-")
    try:
        result = {"tracing_overhead_warm_path": run_overhead(store_dir)}
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
        default_recorder.clear()
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    overhead = result["tracing_overhead_warm_path"]["overhead_fraction"]
    print(f"bench_pr8_obs: tracing overhead {overhead:+.2%} (gate < 3%) -> {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
