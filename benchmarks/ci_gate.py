"""CI micro-benchmark gate: certify that warm replays do zero fresh work.

Runs a small fixed sweep twice through the experiment runner and writes
``BENCH_PR2.json`` (cold/warm wall-time, refinement passes, joint-search
states).  The gate **fails** (exit code 1) if the warm replay performed any
refinement passes — the contract of the kernel-object cache: replaying a
sweep must be served entirely from memoised partitions, block-cut trees and
ψ memos.  Byte-identical tables across the two runs are asserted as well.

Since PR 3 the gate also certifies the *persistent* layer: the parent
flushes its cache into a throwaway artifact store and spawns a genuinely
cold child process (``--replay``) pointed at it.  The child must answer the
same sweep with **zero refinement passes and zero fresh search states**,
served entirely from store records, and produce a byte-identical table.

Since PR 4 the gate additionally certifies the *batch/streaming* layer over
the wire: a 200-graph mixed-corpus sweep streamed through ``POST
/elections`` must be byte-identical, item by item, to sequential ``POST
/election`` calls (modulo the declared volatile timing fields, which the
stream omits), and a store-warm replay of the same batch by a fresh service
must perform **zero refinement passes**.

Usage (as in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/ci_gate.py [output.json]
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.core import Task, reset_search_statistics, search_statistics
from repro.runner import (
    ExperimentRunner,
    GraphSpec,
    SweepSpec,
    attach_store_path,
    refinement_cache,
)

#: The fixed gate sweep: one graph per hot path — a G_{Δ,k} member for the
#: refinement and block-cut paths, small mixed graphs for the PPE/CPPE joint
#: searches.  (U_{Δ,k} members are deliberately absent: their exact CPPE
#: searches take minutes and belong to the benchmark record, not a CI gate.)
GATE_SWEEP = SweepSpec.make(
    [
        GraphSpec.make("gdk", delta=4, k=1, index=3),
        GraphSpec.make("asymmetric-cycle", n=7),
        GraphSpec.make("star", leaves=4),
        GraphSpec.make("random", n=9, extra_edges=4, seed=2),
    ],
    tasks=Task.ordered(),
    profile_depths=(1,),
)


def _measure(runner: ExperimentRunner):
    cache_before = refinement_cache.stats()
    search_before = search_statistics()
    started = time.perf_counter()
    report = runner.run(GATE_SWEEP)
    elapsed = time.perf_counter() - started
    cache_after = refinement_cache.stats()
    search_after = search_statistics()
    return report, {
        "wall_time_s": round(elapsed, 6),
        "refinement_passes": cache_after["refinement_passes"]
        - cache_before["refinement_passes"],
        "search_states": search_after["states"] - search_before["states"],
        "search_cells": search_after["cells"] - search_before["cells"],
        "cache_hits": cache_after["hits"] - cache_before["hits"],
        "cache_misses": cache_after["misses"] - cache_before["misses"],
    }


def _replay(store_dir: str) -> int:
    """Child entry point: replay the gate sweep in a cold process, store-backed."""
    refinement_cache.clear()
    reset_search_statistics()
    report, metrics = _measure(ExperimentRunner(store_path=store_dir))
    print(
        json.dumps(
            {
                "metrics": metrics,
                "store_hits": report.cache_stats["store_hits"],
                "store_misses": report.cache_stats["store_misses"],
                "table_json": report.table.to_json(),
            }
        )
    )
    return 0


def _store_warm_replay() -> dict:
    """Flush the warm cache to a throwaway store and replay it in a cold child."""
    store_dir = tempfile.mkdtemp(prefix="repro-gate-store-")
    try:
        attach_store_path(store_dir)
        flushed = refinement_cache.flush_to_store()
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--replay", store_dir],
            capture_output=True,
            text=True,
            cwd=os.getcwd(),
            timeout=600,
        )
        if child.returncode != 0:
            raise RuntimeError(
                f"store-warm replay child failed (exit {child.returncode}):\n{child.stderr}"
            )
        replay = json.loads(child.stdout)
        replay["records_flushed"] = flushed
        return replay
    finally:
        refinement_cache.attach_store(None)
        shutil.rmtree(store_dir, ignore_errors=True)


#: The acceptance batch: a 200-graph mixed-corpus sweep (every scenario
#: family, feasible and infeasible alike), expanded server-side.
BATCH_SWEEP = {"corpus": "mixed", "count": 200, "seed": 4}

#: Shards of the process-backend leg (matches the CI runner's cores).
PROCESS_SHARDS = 4


def _batch_gate(failures) -> dict:
    """Certify the batch endpoint: byte-identity and store-warm zero-refinement.

    Three legs over one artifact store: a cold thread-backend stream whose
    items must match sequential ``POST /election`` calls; a store-warm
    thread-backend replay with zero refinement passes; and a store-warm
    replay through the sharded **process** backend, which must return the
    byte-identical NDJSON stream and report zero refinement passes across
    all shard workers (aggregated ``/stats``).
    """
    from repro.service import ElectionService, deterministic_response
    from repro.service.batch import expand_sweep
    from repro.store import ArtifactStore
    from service_harness import ThreadedElectionServer

    def strip_trace(lines):
        # trace ids are per-request by design; byte-identity claims exclude them
        return [
            {key: value for key, value in line.items() if key != "trace"}
            for line in lines
        ]

    store_dir = tempfile.mkdtemp(prefix="repro-gate-batch-")
    refinement_cache.clear()
    reset_search_statistics()
    result: dict = {"items": BATCH_SWEEP["count"]}
    try:
        # cold: stream the whole corpus through POST /elections, store-backed
        with ThreadedElectionServer(
            ElectionService(store=ArtifactStore(store_dir), workers=4)
        ) as running:
            started = time.perf_counter()
            lines, _gaps, _wall = running.post_batch({"sweep": BATCH_SWEEP})
            result["cold_stream_s"] = round(time.perf_counter() - started, 6)
            items = strip_trace(lines[1:-1])
            trailer = lines[-1]
            if trailer.get("ok") != BATCH_SWEEP["count"] or trailer.get("errors"):
                failures.append(f"batch gate: unexpected trailer {trailer}")
            # byte-identity: every streamed item vs a sequential single call
            mismatches = 0
            for payload, line in zip(expand_sweep(BATCH_SWEEP), items):
                single = deterministic_response(running.post("/election", payload))
                streamed = {
                    key: value
                    for key, value in line.items()
                    if key not in ("index", "status", "trace")
                }
                if json.dumps(streamed, sort_keys=True) != json.dumps(single, sort_keys=True):
                    mismatches += 1
            result["byte_mismatches"] = mismatches
            if mismatches:
                failures.append(
                    f"batch gate: {mismatches} streamed items differ from sequential calls"
                )
        # store-warm replay: a fresh service (cold cache, same store) must
        # answer the identical batch without a single refinement pass
        refinement_cache.clear()
        reset_search_statistics()
        with ThreadedElectionServer(
            ElectionService(store=ArtifactStore(store_dir), workers=4)
        ) as running:
            started = time.perf_counter()
            replay_lines, _gaps, _wall = running.post_batch({"sweep": BATCH_SWEEP})
            result["warm_stream_s"] = round(time.perf_counter() - started, 6)
            stats = running.get("/stats")
        replay_trailer = replay_lines[-1]
        result["warm_refinement_passes"] = stats["cache"]["refinement_passes"]
        result["warm_store_hits"] = stats["cache"]["store_hits"]
        if replay_trailer.get("ok") != BATCH_SWEEP["count"]:
            failures.append(f"batch gate: warm replay trailer {replay_trailer}")
        if result["warm_refinement_passes"] != 0:
            failures.append(
                f"batch gate: store-warm batch replay performed "
                f"{result['warm_refinement_passes']} refinement passes (expected 0)"
            )
        if strip_trace(replay_lines[1:-1]) != items:
            failures.append("batch gate: warm replay stream differs from the cold stream")
        # process-backend replay: the same batch through the sharded worker
        # processes must be byte-identical and refinement-free (store-warm)
        refinement_cache.clear()
        reset_search_statistics()
        with ThreadedElectionServer(
            ElectionService(
                store=ArtifactStore(store_dir),
                workers=4,
                backend="process",
                shards=PROCESS_SHARDS,
            )
        ) as running:
            started = time.perf_counter()
            process_lines, _gaps, _wall = running.post_batch({"sweep": BATCH_SWEEP})
            result["process_stream_s"] = round(time.perf_counter() - started, 6)
            stats = running.get("/stats")
        result["process_shards"] = PROCESS_SHARDS
        result["process_refinement_passes"] = stats["cache"]["refinement_passes"]
        result["process_store_hits"] = stats["cache"]["store_hits"]
        if stats["service"]["backend"] != "process":
            # no "shards" section exists after a fallback; report and move on
            failures.append("batch gate: process backend fell back to thread")
        elif stats["shards"]["crashes"]:
            failures.append(
                f"batch gate: {stats['shards']['crashes']} shard worker crashes"
            )
        if process_lines[-1].get("ok") != BATCH_SWEEP["count"]:
            failures.append(f"batch gate: process replay trailer {process_lines[-1]}")
        if strip_trace(process_lines[1:-1]) != items:
            failures.append(
                "batch gate: process-backend stream differs from the thread-backend stream"
            )
        if result["process_refinement_passes"] != 0:
            failures.append(
                f"batch gate: store-warm process-backend replay performed "
                f"{result['process_refinement_passes']} refinement passes (expected 0)"
            )
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
        shutil.rmtree(store_dir, ignore_errors=True)
    return result


def main(argv) -> int:
    if len(argv) > 2 and argv[1] == "--replay":
        return _replay(argv[2])
    output_path = argv[1] if len(argv) > 1 else "BENCH_PR2.json"
    refinement_cache.clear()
    reset_search_statistics()
    runner = ExperimentRunner()
    cold_report, cold = _measure(runner)
    warm_report, warm = _measure(runner)
    store_warm = _store_warm_replay()
    failures = []
    batch = _batch_gate(failures)
    payload = {
        "batch": batch,
        "sweep_graphs": [spec.label for spec in GATE_SWEEP.graphs],
        "cold": cold,
        "warm": warm,
        "store_warm": {
            "records_flushed": store_warm["records_flushed"],
            "store_hits": store_warm["store_hits"],
            "store_misses": store_warm["store_misses"],
            **store_warm["metrics"],
        },
        "tables_identical": cold_report.table.to_json() == warm_report.table.to_json(),
        "store_warm_table_identical": cold_report.table.to_json()
        == store_warm["table_json"],
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))

    if warm["refinement_passes"] != 0:
        failures.append(
            f"warm replay performed {warm['refinement_passes']} refinement passes (expected 0)"
        )
    if warm["search_states"] != 0:
        failures.append(
            f"warm replay stored {warm['search_states']} fresh search states (expected 0)"
        )
    if not payload["tables_identical"]:
        failures.append("cold and warm tables differ")
    if cold["refinement_passes"] == 0:
        failures.append("cold run performed no refinement passes: the gate measured nothing")
    store_warm_out = payload["store_warm"]
    if store_warm_out["refinement_passes"] != 0:
        failures.append(
            f"store-warm cold process performed {store_warm_out['refinement_passes']} "
            f"refinement passes (expected 0: every graph must warm-start from the store)"
        )
    if store_warm_out["search_states"] != 0:
        failures.append(
            f"store-warm cold process stored {store_warm_out['search_states']} "
            f"fresh search states (expected 0)"
        )
    if store_warm_out["store_hits"] != len(GATE_SWEEP.graphs):
        failures.append(
            f"store-warm cold process hit the store {store_warm_out['store_hits']} times "
            f"(expected {len(GATE_SWEEP.graphs)})"
        )
    if not payload["store_warm_table_identical"]:
        failures.append("store-warm table differs from the cold table")
    for failure in failures:
        print(f"ci_gate: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
