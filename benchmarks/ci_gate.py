"""CI micro-benchmark gate: certify that warm replays do zero fresh work.

Runs a small fixed sweep twice through the experiment runner and writes
``BENCH_PR2.json`` (cold/warm wall-time, refinement passes, joint-search
states).  The gate **fails** (exit code 1) if the warm replay performed any
refinement passes — the contract of the kernel-object cache: replaying a
sweep must be served entirely from memoised partitions, block-cut trees and
ψ memos.  Byte-identical tables across the two runs are asserted as well.

Since PR 3 the gate also certifies the *persistent* layer: the parent
flushes its cache into a throwaway artifact store and spawns a genuinely
cold child process (``--replay``) pointed at it.  The child must answer the
same sweep with **zero refinement passes and zero fresh search states**,
served entirely from store records, and produce a byte-identical table.

Since PR 4 the gate additionally certifies the *batch/streaming* layer over
the wire: a 200-graph mixed-corpus sweep streamed through ``POST
/elections`` must be byte-identical, item by item, to sequential ``POST
/election`` calls (modulo the declared volatile timing fields, which the
stream omits), and a store-warm replay of the same batch by a fresh service
must perform **zero refinement passes**.

Since PR 7 the gate certifies the *kernel backend* too (skipped cleanly when
numpy is absent): the numpy backend must produce byte-identical result
tables and canonical colour tables, replay a numpy-written store in an
env-forced numpy child with zero refinement passes, and beat the python
backend's cold refinement by ≥ 3× on a dedicated large workload.

Usage (as in ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/ci_gate.py [output.json]
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.core import Task, reset_search_statistics, search_statistics
from repro.runner import (
    ExperimentRunner,
    GraphSpec,
    SweepSpec,
    attach_store_path,
    refinement_cache,
)

#: The fixed gate sweep: one graph per hot path — a G_{Δ,k} member for the
#: refinement and block-cut paths, small mixed graphs for the PPE/CPPE joint
#: searches.  (U_{Δ,k} members are deliberately absent: their exact CPPE
#: searches take minutes and belong to the benchmark record, not a CI gate.)
GATE_SWEEP = SweepSpec.make(
    [
        GraphSpec.make("gdk", delta=4, k=1, index=3),
        GraphSpec.make("asymmetric-cycle", n=7),
        GraphSpec.make("star", leaves=4),
        GraphSpec.make("random", n=9, extra_edges=4, seed=2),
    ],
    tasks=Task.ordered(),
    profile_depths=(1,),
)


def _measure(runner: ExperimentRunner):
    cache_before = refinement_cache.stats()
    search_before = search_statistics()
    started = time.perf_counter()
    report = runner.run(GATE_SWEEP)
    elapsed = time.perf_counter() - started
    cache_after = refinement_cache.stats()
    search_after = search_statistics()
    return report, {
        "wall_time_s": round(elapsed, 6),
        "refinement_passes": cache_after["refinement_passes"]
        - cache_before["refinement_passes"],
        "search_states": search_after["states"] - search_before["states"],
        "search_cells": search_after["cells"] - search_before["cells"],
        "cache_hits": cache_after["hits"] - cache_before["hits"],
        "cache_misses": cache_after["misses"] - cache_before["misses"],
    }


def _replay(store_dir: str) -> int:
    """Child entry point: replay the gate sweep in a cold process, store-backed."""
    refinement_cache.clear()
    reset_search_statistics()
    report, metrics = _measure(ExperimentRunner(store_path=store_dir))
    print(
        json.dumps(
            {
                "metrics": metrics,
                "store_hits": report.cache_stats["store_hits"],
                "store_misses": report.cache_stats["store_misses"],
                "table_json": report.table.to_json(),
            }
        )
    )
    return 0


def _store_warm_replay(kernel_backend: str = None) -> dict:
    """Flush the warm cache to a throwaway store and replay it in a cold child.

    ``kernel_backend`` forces ``REPRO_KERNEL_BACKEND`` in the child process,
    so the store-warm zero-refinement contract can be certified under either
    kernel backend explicitly.
    """
    from repro.kernel import BACKEND_ENV_VAR

    child_env = dict(os.environ)
    if kernel_backend is not None:
        child_env[BACKEND_ENV_VAR] = kernel_backend
    store_dir = tempfile.mkdtemp(prefix="repro-gate-store-")
    try:
        attach_store_path(store_dir)
        flushed = refinement_cache.flush_to_store()
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--replay", store_dir],
            capture_output=True,
            text=True,
            cwd=os.getcwd(),
            env=child_env,
            timeout=600,
        )
        if child.returncode != 0:
            raise RuntimeError(
                f"store-warm replay child failed (exit {child.returncode}):\n{child.stderr}"
            )
        replay = json.loads(child.stdout)
        replay["records_flushed"] = flushed
        return replay
    finally:
        refinement_cache.attach_store(None)
        shutil.rmtree(store_dir, ignore_errors=True)


#: The acceptance batch: a 200-graph mixed-corpus sweep (every scenario
#: family, feasible and infeasible alike), expanded server-side.
BATCH_SWEEP = {"corpus": "mixed", "count": 200, "seed": 4}

#: Shards of the process-backend leg (matches the CI runner's cores).
PROCESS_SHARDS = 4


def _batch_gate(failures) -> dict:
    """Certify the batch endpoint: byte-identity and store-warm zero-refinement.

    Three legs over one artifact store: a cold thread-backend stream whose
    items must match sequential ``POST /election`` calls; a store-warm
    thread-backend replay with zero refinement passes; and a store-warm
    replay through the sharded **process** backend, which must return the
    byte-identical NDJSON stream and report zero refinement passes across
    all shard workers (aggregated ``/stats``).
    """
    from repro.service import ElectionService, deterministic_response
    from repro.service.batch import expand_sweep
    from repro.store import ArtifactStore
    from service_harness import ThreadedElectionServer

    def strip_trace(lines):
        # trace ids are per-request by design; byte-identity claims exclude them
        return [
            {key: value for key, value in line.items() if key != "trace_id"}
            for line in lines
        ]

    store_dir = tempfile.mkdtemp(prefix="repro-gate-batch-")
    refinement_cache.clear()
    reset_search_statistics()
    result: dict = {"items": BATCH_SWEEP["count"]}
    try:
        # cold: stream the whole corpus through POST /elections, store-backed
        with ThreadedElectionServer(
            ElectionService(store=ArtifactStore(store_dir), workers=4)
        ) as running:
            started = time.perf_counter()
            lines, _gaps, _wall = running.post_batch({"sweep": BATCH_SWEEP})
            result["cold_stream_s"] = round(time.perf_counter() - started, 6)
            items = strip_trace(lines[1:-1])
            trailer = lines[-1]
            if trailer.get("ok") != BATCH_SWEEP["count"] or trailer.get("errors"):
                failures.append(f"batch gate: unexpected trailer {trailer}")
            # byte-identity: every streamed item vs a sequential single call
            mismatches = 0
            for payload, line in zip(expand_sweep(BATCH_SWEEP), items):
                single = deterministic_response(running.post("/election", payload))
                streamed = {
                    key: value
                    for key, value in line.items()
                    if key not in ("index", "status", "trace_id")
                }
                if json.dumps(streamed, sort_keys=True) != json.dumps(single, sort_keys=True):
                    mismatches += 1
            result["byte_mismatches"] = mismatches
            if mismatches:
                failures.append(
                    f"batch gate: {mismatches} streamed items differ from sequential calls"
                )
        # store-warm replay: a fresh service (cold cache, same store) must
        # answer the identical batch without a single refinement pass
        refinement_cache.clear()
        reset_search_statistics()
        with ThreadedElectionServer(
            ElectionService(store=ArtifactStore(store_dir), workers=4)
        ) as running:
            started = time.perf_counter()
            replay_lines, _gaps, _wall = running.post_batch({"sweep": BATCH_SWEEP})
            result["warm_stream_s"] = round(time.perf_counter() - started, 6)
            stats = running.get("/stats")
        replay_trailer = replay_lines[-1]
        result["warm_refinement_passes"] = stats["cache"]["refinement_passes"]
        result["warm_store_hits"] = stats["cache"]["store_hits"]
        if replay_trailer.get("ok") != BATCH_SWEEP["count"]:
            failures.append(f"batch gate: warm replay trailer {replay_trailer}")
        if result["warm_refinement_passes"] != 0:
            failures.append(
                f"batch gate: store-warm batch replay performed "
                f"{result['warm_refinement_passes']} refinement passes (expected 0)"
            )
        if strip_trace(replay_lines[1:-1]) != items:
            failures.append("batch gate: warm replay stream differs from the cold stream")
        # process-backend replay: the same batch through the sharded worker
        # processes must be byte-identical and refinement-free (store-warm)
        refinement_cache.clear()
        reset_search_statistics()
        with ThreadedElectionServer(
            ElectionService(
                store=ArtifactStore(store_dir),
                workers=4,
                backend="process",
                shards=PROCESS_SHARDS,
            )
        ) as running:
            started = time.perf_counter()
            process_lines, _gaps, _wall = running.post_batch({"sweep": BATCH_SWEEP})
            result["process_stream_s"] = round(time.perf_counter() - started, 6)
            stats = running.get("/stats")
        result["process_shards"] = PROCESS_SHARDS
        result["process_refinement_passes"] = stats["cache"]["refinement_passes"]
        result["process_store_hits"] = stats["cache"]["store_hits"]
        if stats["service"]["backend"] != "process":
            # no "shards" section exists after a fallback; report and move on
            failures.append("batch gate: process backend fell back to thread")
        elif stats["shards"]["crashes"]:
            failures.append(
                f"batch gate: {stats['shards']['crashes']} shard worker crashes"
            )
        if process_lines[-1].get("ok") != BATCH_SWEEP["count"]:
            failures.append(f"batch gate: process replay trailer {process_lines[-1]}")
        if strip_trace(process_lines[1:-1]) != items:
            failures.append(
                "batch gate: process-backend stream differs from the thread-backend stream"
            )
        if result["process_refinement_passes"] != 0:
            failures.append(
                f"batch gate: store-warm process-backend replay performed "
                f"{result['process_refinement_passes']} refinement passes (expected 0)"
            )
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
        shutil.rmtree(store_dir, ignore_errors=True)
    return result


#: The kernel-backend gate workload: big enough that vectorisation wins by a
#: wide margin, small enough for CI (the tiny GATE_SWEEP graphs would measure
#: per-call overhead, where numpy is *slower* by design).
KERNEL_GATE_NODES = 12_000
KERNEL_GATE_DEPTH = 6
#: Required cold-refinement speedup of the numpy backend on that workload.
KERNEL_GATE_MIN_SPEEDUP = 3.0


def _kernel_cold_refinement(csr, backend: str):
    """Best-of-two cold refinement timing under ``backend``; returns (engine, seconds)."""
    from repro.kernel import make_refinement, use_backend

    best = None
    engine = None
    with use_backend(backend):
        for _ in range(2):
            started = time.perf_counter()
            engine = make_refinement(csr)
            engine.ensure_depth(KERNEL_GATE_DEPTH)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
    return engine, best


def _kernel_backend_gate(failures) -> dict:
    """The numpy-backend leg: byte-identity, store-warm zero-refinement, speed.

    Three certificates, skipped gracefully when numpy is absent (that CI leg
    exercises the fallback instead):

    * the full gate sweep under the numpy backend produces a byte-identical
      result table to the python backend, and a store written by a
      numpy-backend process replays in an env-forced numpy child with zero
      refinement passes;
    * on the dedicated kernel workload, cold canonical tables agree exactly;
    * the numpy cold refinement is at least ``KERNEL_GATE_MIN_SPEEDUP``×
      faster than the python one on that workload.
    """
    from repro.kernel import numpy_available, use_backend

    result: dict = {"numpy_available": numpy_available()}
    if not numpy_available():
        result["skipped"] = "numpy not installed: python fallback is the only backend"
        return result
    from repro.portgraph.generators import random_connected_graph

    # cold refinement speed + table identity on the kernel workload
    graph = random_connected_graph(
        KERNEL_GATE_NODES, extra_edges=KERNEL_GATE_NODES, seed=7
    )
    csr = graph.csr()
    python_engine, python_s = _kernel_cold_refinement(csr, "python")
    numpy_engine, numpy_s = _kernel_cold_refinement(csr, "numpy")
    speedup = python_s / numpy_s if numpy_s > 0 else float("inf")
    result["workload"] = (
        f"random_connected_graph(n={KERNEL_GATE_NODES}, "
        f"extra_edges={KERNEL_GATE_NODES}, seed=7), ensure_depth({KERNEL_GATE_DEPTH})"
    )
    result["python_cold_s"] = round(python_s, 6)
    result["numpy_cold_s"] = round(numpy_s, 6)
    result["speedup"] = round(speedup, 2)
    result["workload_tables_identical"] = (
        python_engine.canonical_tables() == numpy_engine.canonical_tables()
    )
    if not result["workload_tables_identical"]:
        failures.append("kernel gate: numpy and python canonical tables differ")
    if speedup < KERNEL_GATE_MIN_SPEEDUP:
        failures.append(
            f"kernel gate: numpy cold refinement only {speedup:.2f}x faster than "
            f"python (required ≥ {KERNEL_GATE_MIN_SPEEDUP}x)"
        )

    # full gate sweep under each backend: byte-identical tables, and a
    # store-warm replay by an env-forced numpy child with zero refinement
    sweep_tables = {}
    for backend in ("python", "numpy"):
        with use_backend(backend):
            refinement_cache.clear()
            reset_search_statistics()
            report, _metrics = _measure(ExperimentRunner())
            sweep_tables[backend] = report.table.to_json()
            if backend == "numpy":
                replay = _store_warm_replay(kernel_backend="numpy")
    refinement_cache.clear()
    result["sweep_tables_identical"] = sweep_tables["python"] == sweep_tables["numpy"]
    if not result["sweep_tables_identical"]:
        failures.append("kernel gate: gate-sweep tables differ between backends")
    result["numpy_store_warm"] = {
        "records_flushed": replay["records_flushed"],
        "store_hits": replay["store_hits"],
        **replay["metrics"],
    }
    if replay["metrics"]["refinement_passes"] != 0:
        failures.append(
            f"kernel gate: numpy store-warm replay performed "
            f"{replay['metrics']['refinement_passes']} refinement passes (expected 0)"
        )
    if replay["store_hits"] != len(GATE_SWEEP.graphs):
        failures.append(
            f"kernel gate: numpy store-warm replay hit the store "
            f"{replay['store_hits']} times (expected {len(GATE_SWEEP.graphs)})"
        )
    if replay["table_json"] != sweep_tables["numpy"]:
        failures.append("kernel gate: numpy store-warm table differs from the cold table")
    return result


def main(argv) -> int:
    if len(argv) > 2 and argv[1] == "--replay":
        return _replay(argv[2])
    output_path = argv[1] if len(argv) > 1 else "BENCH_PR2.json"
    refinement_cache.clear()
    reset_search_statistics()
    runner = ExperimentRunner()
    cold_report, cold = _measure(runner)
    warm_report, warm = _measure(runner)
    store_warm = _store_warm_replay()
    failures = []
    batch = _batch_gate(failures)
    kernel_backends = _kernel_backend_gate(failures)
    payload = {
        "batch": batch,
        "kernel_backends": kernel_backends,
        "sweep_graphs": [spec.label for spec in GATE_SWEEP.graphs],
        "cold": cold,
        "warm": warm,
        "store_warm": {
            "records_flushed": store_warm["records_flushed"],
            "store_hits": store_warm["store_hits"],
            "store_misses": store_warm["store_misses"],
            **store_warm["metrics"],
        },
        "tables_identical": cold_report.table.to_json() == warm_report.table.to_json(),
        "store_warm_table_identical": cold_report.table.to_json()
        == store_warm["table_json"],
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))

    if warm["refinement_passes"] != 0:
        failures.append(
            f"warm replay performed {warm['refinement_passes']} refinement passes (expected 0)"
        )
    if warm["search_states"] != 0:
        failures.append(
            f"warm replay stored {warm['search_states']} fresh search states (expected 0)"
        )
    if not payload["tables_identical"]:
        failures.append("cold and warm tables differ")
    if cold["refinement_passes"] == 0:
        failures.append("cold run performed no refinement passes: the gate measured nothing")
    store_warm_out = payload["store_warm"]
    if store_warm_out["refinement_passes"] != 0:
        failures.append(
            f"store-warm cold process performed {store_warm_out['refinement_passes']} "
            f"refinement passes (expected 0: every graph must warm-start from the store)"
        )
    if store_warm_out["search_states"] != 0:
        failures.append(
            f"store-warm cold process stored {store_warm_out['search_states']} "
            f"fresh search states (expected 0)"
        )
    if store_warm_out["store_hits"] != len(GATE_SWEEP.graphs):
        failures.append(
            f"store-warm cold process hit the store {store_warm_out['store_hits']} times "
            f"(expected {len(GATE_SWEEP.graphs)})"
        )
    if not payload["store_warm_table_identical"]:
        failures.append("store-warm table differs from the cold table")
    for failure in failures:
        print(f"ci_gate: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
