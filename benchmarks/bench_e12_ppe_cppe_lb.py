"""E12 -- Theorems 4.11/4.12 + Lemma 4.10: the PPE/CPPE advice lower bound on J_{µ,k}.

Reproduces the two ingredients:

* Lemma 4.10(1): the "left edge" node w_{1,1} of H_L of gadget 0 has the same
  depth-k view in every member of the class; (2): a port sequence that leads
  it (simply) into the right half of one member cannot do so in a member
  differing in a bit -- verified on actual members at µ=2, k=4;
* counting: |J_{µ,k}| versus the paper's (insufficient) budget 2^((4µ)^(k/6))
  at the theorem's own parameters (µ = ⌈Δ/4⌉, Δ >= 16, k >= 6), handled with
  exact exponents because the numbers dwarf anything materialisable.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import lemma_4_10_statement_2, ppe_cppe_lower_bound_rows
from repro.families import build_jmuk_member, jmuk_border_count
from repro.portgraph.paths import outgoing_ports_of_path, shortest_path
from repro.views import views_equal_across_graphs

MU, K = 2, 4


@pytest.fixture(scope="module")
def member_pair():
    z = jmuk_border_count(MU, K)
    random.seed(23)
    y = tuple(random.randint(0, 1) for _ in range(2 ** (z - 1)))
    y_other = (1 - y[0],) + y[1:]
    return build_jmuk_member(MU, K, y), build_jmuk_member(MU, K, y_other)


def bench_lemma_4_10_statement_1(benchmark, table_printer, member_pair):
    first, second = member_pair

    def check():
        a = first.border_node(0, "L", 1, 1)
        b = second.border_node(0, "L", 1, 1)
        return views_equal_across_graphs(first.graph, a, second.graph, b, K)

    equal = benchmark(check)
    table_printer(
        "E12 / Lemma 4.10(1): w_{1,1} of H_L of Ĥ_0 has the same view in all members",
        ["µ", "k", "depth", "views equal (paper: yes)"],
        [[MU, K, K, equal]],
    )
    assert equal


def bench_lemma_4_10_statement_2(benchmark, table_printer, member_pair):
    first, second = member_pair
    start = first.border_node(0, "L", 1, 1)
    target = first.rho(first.num_gadgets // 2 + 5)
    path = shortest_path(first.graph, start, target)
    sequence = outgoing_ports_of_path(first.graph, path)

    def check():
        return lemma_4_10_statement_2(first, second, sequence)

    holds = benchmark(check)
    table_printer(
        "E12 / Lemma 4.10(2): a right-half-reaching port sequence fails in the other member",
        ["sequence length", "reaches right half in J_α", "fails in J_β (paper: yes)"],
        [[len(sequence), True, holds]],
    )
    assert holds


def bench_theorem_4_11_counting(benchmark, table_printer):
    parameters = [(2, 4), (3, 5), (4, 6), (8, 6)]
    rows = benchmark(ppe_cppe_lower_bound_rows, parameters)
    table_printer(
        "E12 / Theorems 4.11-4.12: |J_{µ,k}| vs the paper's advice budget 2^((4µ)^(k/6))",
        ["µ", "Δ=4µ", "k", "log2 |J_{µ,k}|", "paper budget bits", "forces collision",
         "min bits for PPE/CPPE", "Selection budget bits"],
        [[r.delta // 4, r.delta, r.k, r.class_size_log2,
          None if r.paper_budget_bits is None else f"{r.paper_budget_bits:.3g}",
          r.collision_at_paper_budget, r.pigeonhole_bits, r.selection_budget_bits] for r in rows],
    )
    stated = [r for r in rows if r.paper_budget_bits is not None]
    assert stated and all(r.collision_at_paper_budget for r in stated)
    assert all(r.pigeonhole_bits > r.selection_budget_bits for r in stated)
