"""E8 -- Figure 4 + Fact 4.1: the layer graphs L_0, ..., L_k.

Builds every layer graph for several µ and checks the node counts against the
closed forms of Fact 4.1.
"""

from __future__ import annotations

import pytest

from repro.families import build_layer_graph, fact_4_1_layer_sizes, layer_size


@pytest.mark.parametrize("mu", [2, 3, 4])
def bench_fact_4_1_layer_sizes(benchmark, table_printer, mu):
    k = 6

    def build_all():
        return [build_layer_graph(mu, m)[0] for m in range(k + 1)]

    graphs = benchmark(build_all)
    predicted = fact_4_1_layer_sizes(mu, k)
    rows = [
        [m, predicted[m], graphs[m].num_nodes, graphs[m].num_edges, predicted[m] == graphs[m].num_nodes]
        for m in range(k + 1)
    ]
    table_printer(
        f"E8 / Fact 4.1: layer graph sizes for µ={mu} (Figure 4 shows µ=3)",
        ["m", "|L_m| predicted", "|L_m| built", "edges", "match"],
        rows,
    )
    assert all(row[-1] for row in rows)


def bench_figure_4_shapes(benchmark, table_printer):
    """The µ=3 layer graphs of Figure 4: middle counts and degrees."""

    def build():
        return {m: build_layer_graph(3, m) for m in range(6)}

    layers = benchmark(build)
    rows = []
    for m, (graph, handles) in layers.items():
        middles = handles.middle_nodes() if m >= 2 else []
        rows.append([m, graph.num_nodes, len(middles), graph.max_degree])
    table_printer(
        "E8 / Figure 4: layer graphs for µ=3",
        ["m", "nodes", "middle nodes", "max degree"],
        rows,
    )
    assert layers[4][0].num_nodes == 17
    assert layers[5][0].num_nodes == 26
