"""E7 -- Theorem 3.11: the Port Election advice lower bound on U_{Δ,k}.

Reproduces both halves of the argument:

* counting: |U_{Δ,k}| versus the number of advice strings of the paper's
  (insufficient) budget (1/4)|T_{Δ,k}| log2 Δ, and the resulting exponential
  separation from the Selection budget of Theorem 2.2;
* indistinguishability: the hub roots r_{j,1,1} have identical depth-k views
  in every member of the class (their correct PE output nevertheless differs
  per member -- it is the swapped port Δ-1+s_j).
"""

from __future__ import annotations

import pytest

from repro.algorithms import udk_port_election_outputs
from repro.analysis import pe_lower_bound_rows
from repro.families import build_udk_member, build_udk_template, udk_tree_count
from repro.views import views_equal_across_graphs


def bench_theorem_3_11_counting(benchmark, table_printer):
    parameters = [(4, 1), (5, 1), (6, 1), (7, 1), (8, 1)]
    rows = benchmark(pe_lower_bound_rows, parameters)
    table_printer(
        "E7 / Theorem 3.11: advice needed for PE in minimum time vs Selection budget",
        ["Δ", "k", "|U_{Δ,k}| bits", "paper budget bits", "forces collision",
         "min bits for PE (pigeonhole)", "Selection budget bits (Thm 2.2)"],
        [[r.delta, r.k, r.class_size.bit_length(), int(r.paper_budget_bits), r.collision_at_paper_budget,
          r.pigeonhole_bits, r.selection_budget_bits] for r in rows],
    )
    assert all(r.collision_at_paper_budget for r in rows)
    # exponential separation from Δ = 6 on (the theorem is asymptotic in Δ)
    assert all(r.pigeonhole_bits > r.selection_budget_bits for r in rows if r.delta >= 6)


def bench_hub_root_indistinguishability_vs_output(benchmark, table_printer):
    delta, k = 4, 1
    y = udk_tree_count(delta, k)
    template = build_udk_template(delta, k)
    member_a = build_udk_member(delta, k, tuple(1 for _ in range(y)))
    member_b = build_udk_member(delta, k, tuple(2 for _ in range(y)))

    def check():
        same_views = all(
            views_equal_across_graphs(
                member_a.graph, member_a.hub_roots[(j, 1)],
                member_b.graph, member_b.hub_roots[(j, 1)], k,
            )
            for j in range(1, y + 1)
        )
        outputs_a = udk_port_election_outputs(member_a)
        outputs_b = udk_port_election_outputs(member_b)
        differing = sum(
            outputs_a[member_a.hub_roots[(j, 1)]] != outputs_b[member_b.hub_roots[(j, 1)]]
            for j in range(1, y + 1)
        )
        return same_views, differing

    same_views, differing = benchmark(check)
    table_printer(
        "E7: hub roots look identical across members yet must answer differently",
        ["Δ", "k", "hub roots compared", "views equal across members (paper: yes)",
         "hub roots whose PE output differs (paper: all)"],
        [[delta, k, y, same_views, differing]],
    )
    assert same_views
    assert differing == y
