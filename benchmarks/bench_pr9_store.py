"""PR 9 — the traffic-shaped store tier: hot-tier p99, byte identity, compaction.

Not a table of the paper: the performance record of the warm/hot/compact
serving pipeline.  Three measurements, written to ``BENCH_PR9.json`` and
gated (a regression exits non-zero, failing the CI job):

* **Store-level zipf lookups, cold vs hot.**  The mixed corpus is warmed
  into a store by :func:`repro.runner.warm.warm_sweep` (the ``repro warm``
  pipeline), then a zipf-shaped key stream -- the traffic shape the hot
  tier is built for, where a few fingerprints absorb most requests -- is
  replayed through ``ArtifactStore.get`` twice: once on a cold handle
  (every lookup is open+read+decode) and once on a hot-tier handle (repeat
  fingerprints decode from mmap'd residents).  Gate: hot p99 strictly
  below cold p99, hot hits observed, and every record byte-identical
  between the two paths.
* **Service-level zipf traffic.**  An in-process
  :class:`~repro.service.ElectionServer` with traffic-shaped serving
  enabled (hot tier + second-touch admission) answers the same zipf
  stream over HTTP; p50/p99 and the /stats counters are recorded, and the
  deterministic part of every response is compared against a cold,
  store-less service computing from scratch.  Gate: zero byte-identity
  diffs.  (The HTTP p99 itself is recorded but not hard-gated -- loopback
  latency is too noisy across CI machines.)
* **Compaction curve.**  Debris is manufactured next to the live records
  (stale temp files, quarantined and corrupt objects) and
  ``ArtifactStore.compact()`` reclaims it; object counts, directory bytes
  and the manifest generation are recorded before and after.  Gate: all
  debris removed, no live record lost.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr9_store.py [BENCH_PR9.json]
"""

from __future__ import annotations

import json
import os
import random
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from service_harness import ThreadedElectionServer  # noqa: E402

from repro.runner import refinement_cache, warm_sweep  # noqa: E402
from repro.runner.spec import SweepSpec  # noqa: E402
from repro.scenarios.corpus import corpus_specs  # noqa: E402
from repro.service import ElectionService, deterministic_response  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

#: Corpus size warmed into the store (distinct graphs = distinct records).
CORPUS_COUNT = 16
CORPUS_SEED = 9
#: Zipf exponent of the replayed traffic (s ≈ 1.1: a hot head, a long tail).
ZIPF_S = 1.1
#: Store-level lookups replayed per path.
STORE_DRAWS = 1500
#: Service-level HTTP requests replayed.
SERVICE_DRAWS = 120
MAX_STATES = 50_000


def _percentiles(samples_ms):
    ordered = sorted(samples_ms)
    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p99_ms": round(ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))], 4),
        "mean_ms": round(statistics.fmean(ordered), 4),
    }


def zipf_choices(population, draws: int, *, seed: int, s: float = ZIPF_S):
    """``draws`` zipf-shaped picks from ``population`` (rank 1 hottest)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(len(population))]
    return rng.choices(population, weights=weights, k=draws)


def _warm_corpus(store_dir: str) -> dict:
    sweep = SweepSpec.make(
        corpus_specs(CORPUS_COUNT, seed=CORPUS_SEED), max_states=MAX_STATES
    )
    report = warm_sweep(
        sweep, store_dir, shared={"max_states": MAX_STATES}, jobs=2
    )
    assert report.errors == 0, "warm pipeline reported item errors"
    refinement_cache.attach_store(None)
    refinement_cache.clear()
    return {
        "sweep_id": report.sweep_id,
        "items": report.total,
        "warmed": report.warmed,
        "jobs": report.jobs,
        "elapsed_s": round(report.elapsed, 3),
        "records": report.store_stats["records"],
    }


def run_store_zipf(store_dir: str) -> dict:
    """Cold vs hot ``ArtifactStore.get`` over one zipf key stream (gated)."""
    cold_store = ArtifactStore(store_dir)
    keys = sorted(cold_store.manifest()["records"])
    stream = zipf_choices(keys, STORE_DRAWS, seed=CORPUS_SEED)

    def replay(store):
        samples, payloads = [], {}
        for key in stream:
            t0 = time.perf_counter()
            record = store.get(key)
            samples.append((time.perf_counter() - t0) * 1000.0)
            assert record is not None, f"lookup lost record {key}"
            if key not in payloads:
                payloads[key] = record.to_bytes()
        return samples, payloads

    cold_samples, cold_payloads = replay(cold_store)
    hot_store = ArtifactStore(store_dir, hot_tier_bytes=64 * 1024 * 1024)
    hot_samples, hot_payloads = replay(hot_store)
    counters = hot_store.stats()
    hot_store.close()

    diffs = sum(1 for key in cold_payloads if cold_payloads[key] != hot_payloads[key])
    result = {
        "keys": len(keys),
        "draws": STORE_DRAWS,
        "zipf_s": ZIPF_S,
        "cold": _percentiles(cold_samples),
        "hot": _percentiles(hot_samples),
        "hot_hits": counters["hot_hits"],
        "hot_admissions": counters["hot_admissions"],
        "hot_bytes": counters["hot_bytes"],
        "byte_identity_diffs": diffs,
    }
    assert diffs == 0, "hot-tier decode diverged from the cold read path"
    assert counters["hot_hits"] > 0, "zipf stream never hit the hot tier"
    assert result["hot"]["p99_ms"] < result["cold"]["p99_ms"], (
        f"hot tier did not improve store-get p99: "
        f"hot={result['hot']['p99_ms']}ms cold={result['cold']['p99_ms']}ms"
    )
    return result


def run_service_zipf(store_dir: str) -> dict:
    """Traffic-shaped serving over HTTP vs a cold store-less service (gated)."""
    sweep = SweepSpec.make(
        corpus_specs(CORPUS_COUNT, seed=CORPUS_SEED), max_states=MAX_STATES
    )
    payloads = [
        {"spec": spec.to_dict(), "max_states": MAX_STATES} for spec in sweep.graphs
    ]
    stream = zipf_choices(list(range(len(payloads))), SERVICE_DRAWS, seed=CORPUS_SEED + 1)

    refinement_cache.clear()
    service = ElectionService(
        store=ArtifactStore(store_dir), workers=2, hot_tier_bytes=64 * 1024 * 1024
    )
    samples, hot_responses = [], {}
    with ThreadedElectionServer(service) as running:
        for index in stream:
            t0 = time.perf_counter()
            response = running.post("/election", payloads[index])
            samples.append((time.perf_counter() - t0) * 1000.0)
            hot_responses.setdefault(index, deterministic_response(response))
        stats = running.get("/stats")
    refinement_cache.clear()

    cold_service = ElectionService(workers=2)
    with ThreadedElectionServer(cold_service) as running:
        diffs = sum(
            1
            for index, expected in sorted(hot_responses.items())
            if deterministic_response(running.post("/election", payloads[index]))
            != expected
        )
    refinement_cache.clear()

    store_section = stats["store"]
    result = {
        "draws": SERVICE_DRAWS,
        "distinct_payloads": len(payloads),
        "latency": _percentiles(samples),
        "store_hits": store_section["hits"],
        "hot_hits": store_section["hot_hits"],
        "hot_admissions": store_section["hot_admissions"],
        "cache_admissions": stats["cache"]["admissions"],
        "cache_admission_rejects": stats["cache"]["admission_rejects"],
        "refinement_passes": stats["cache"]["refinement_passes"],
        "byte_identity_diffs": diffs,
    }
    assert diffs == 0, "hot serving diverged from cold computation"
    assert store_section["hits"] > 0, "warmed service never read the store"
    return result


def run_compaction_curve(store_dir: str) -> dict:
    """Manufacture debris next to the live records; compaction reclaims it."""

    def census(root):
        objects = bytes_total = 0
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "objects")):
            for name in filenames:
                objects += 1
                bytes_total += os.path.getsize(os.path.join(dirpath, name))
        return objects, bytes_total

    store = ArtifactStore(store_dir)
    live_before = store.stats()["records"]
    objects_dir = os.path.join(store_dir, "objects", "zz")
    os.makedirs(objects_dir, exist_ok=True)
    debris = {
        "corrupt": os.path.join(objects_dir, "f" * 16 + ".rple"),
        "quarantined": os.path.join(objects_dir, "e" * 16 + ".rple.quarantine"),
        "stale_tmp": os.path.join(objects_dir, "d" * 16 + ".rple.tmp.999"),
    }
    for path in debris.values():
        with open(path, "wb") as handle:
            handle.write(b"\x00garbage" * 64)
    stale = time.time() - 3600.0
    os.utime(debris["stale_tmp"], (stale, stale))

    objects_before, bytes_before = census(store_dir)
    generation_before = store.generation()
    summary = store.compact()
    objects_after, bytes_after = census(store_dir)

    result = {
        "before": {
            "objects": objects_before,
            "bytes": bytes_before,
            "generation": generation_before,
        },
        "after": {
            "objects": objects_after,
            "bytes": bytes_after,
            "generation": store.generation(),
        },
        "summary": summary,
    }
    assert summary["removed_corrupt"] >= 1, "corrupt debris survived compaction"
    assert summary["removed_quarantined"] >= 1, "quarantined debris survived"
    assert summary["removed_tmp"] >= 1, "stale temp debris survived"
    assert summary["live_records"] == live_before, "compaction lost live records"
    assert bytes_after < bytes_before, "compaction reclaimed no bytes"
    assert result["after"]["generation"] > generation_before
    return result


def main(argv) -> int:
    output_path = argv[1] if len(argv) > 1 else "BENCH_PR9.json"
    store_dir = tempfile.mkdtemp(prefix="repro-pr9-store-")
    try:
        warm = _warm_corpus(store_dir)
        payload = {
            "warm": warm,
            "store_zipf": run_store_zipf(store_dir),
            "service_zipf": run_service_zipf(store_dir),
            "compaction": run_compaction_curve(store_dir),
        }
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
        shutil.rmtree(store_dir, ignore_errors=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
