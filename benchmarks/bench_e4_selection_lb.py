"""E4 -- Theorem 2.9 + Lemma 2.8: the Selection advice lower bound on G_{Δ,k}.

Reproduces the two ingredients of the proof:

* counting (Fact 2.3 + Pigeonhole): the number of graphs in the class versus
  the number of advice strings of the paper's (insufficient) budget
  (1/8)(Δ-1)^k log2 Δ;
* indistinguishability (Lemma 2.8): corresponding tree roots have identical
  depth-k views across two members that would receive the same advice.
"""

from __future__ import annotations

import math

import pytest

from repro.advice import num_advice_strings_up_to, pigeonhole_forces_collision
from repro.analysis import corresponding_views_equal, selection_lower_bound_rows
from repro.families import build_gdk_member, gdk_class_size


def bench_theorem_2_9_counting(benchmark, table_printer):
    parameters = [(5, 1), (5, 2), (6, 2), (8, 3), (12, 4)]
    rows = benchmark(selection_lower_bound_rows, parameters)
    table_printer(
        "E4 / Theorem 2.9: |G_{Δ,k}| vs advice strings of the paper's budget",
        ["Δ", "k", "|class| (bits)", "paper budget (bits)", "forces collision", "min distinguishing bits"],
        [[r.delta, r.k, r.class_size.bit_length(), round(r.paper_budget_bits, 1), r.collision_at_paper_budget,
          r.pigeonhole_bits] for r in rows],
    )
    assert all(r.collision_at_paper_budget for r in rows)


def bench_lemma_2_8_indistinguishability(benchmark, table_printer):
    delta, k, alpha, beta = 4, 1, 2, 5

    def check():
        g_alpha = build_gdk_member(delta, k, alpha)
        g_beta = build_gdk_member(delta, k, beta)
        pairs = [
            (g_alpha.tree_root(j, b, 1), g_beta.tree_root(j, b, 1))
            for j in range(1, alpha + 1)
            for b in (1, 2)
        ]
        return corresponding_views_equal(g_alpha.graph, g_beta.graph, pairs, k), len(pairs)

    equal, num_pairs = benchmark(check)
    table_printer(
        "E4 / Lemma 2.8: B^k(r_{j,b}) agrees across G_α and G_β",
        ["Δ", "k", "α", "β", "root pairs compared", "all views equal (paper: yes)"],
        [[delta, k, alpha, beta, num_pairs, equal]],
    )
    assert equal


def bench_explicit_fooling_argument(benchmark, table_printer):
    """The full Theorem 2.9 story at Δ=4, k=1: with a too-small budget, two graphs collide
    and the colliding advice makes two nodes of the larger graph elect themselves."""
    delta, k = 4, 1
    class_size = gdk_class_size(delta, k)
    budget = math.floor(math.log2(class_size)) - 2  # deliberately insufficient

    def count():
        return num_advice_strings_up_to(budget), class_size

    strings, graphs = benchmark(count)
    table_printer(
        "E4: explicit pigeonhole at Δ=4, k=1",
        ["budget bits", "#advice strings", "#graphs in class", "collision forced"],
        [[budget, strings, graphs, pigeonhole_forces_collision(graphs, budget)]],
    )
    assert pigeonhole_forces_collision(graphs, budget)
