"""E10 -- Figures 9-11, Fact 4.2, Lemmas 4.6/4.7/4.9: the class J_{µ,k}.

Builds a full member J_Y at the smallest buildable parameters (µ=2, k=4:
2^z = 1024 gadgets, ~132k nodes), verifies that no node has a unique view at
depth k-1 (Lemma 4.6, hence ψ_S >= k) and that depth k suffices (so
ψ_S = ψ_PPE = ψ_CPPE = k with Lemma 4.8), and tabulates Fact 4.2.

These are the heaviest benchmarks of the harness (a few seconds each); the
member is built once per module.
"""

from __future__ import annotations

import pytest

from repro.families import (
    build_jmuk_member,
    fact_4_2_z_bounds,
    gadget_size,
    jmuk_border_count,
    jmuk_class_size,
    jmuk_num_gadgets,
)
from repro.views import ViewRefinement

MU, K = 2, 4


@pytest.fixture(scope="module")
def member():
    z = jmuk_border_count(MU, K)
    y = tuple((i * 5 + 1) % 2 for i in range(2 ** (z - 1)))
    return build_jmuk_member(MU, K, y)


def bench_fact_4_2_counting(benchmark, table_printer):
    parameters = [(2, 4), (2, 5), (3, 4), (3, 5), (4, 6)]

    def compute():
        rows = []
        for mu, k in parameters:
            lower, z, upper = fact_4_2_z_bounds(mu, k)
            rows.append([mu, k, z, lower, upper, 2**z, f"2^(2^{z - 1})"])
        return rows

    rows = benchmark(compute)
    table_printer(
        "E10 / Fact 4.2: z = |L_k|, gadget count 2^z and |J_{µ,k}| = 2^(2^(z-1))",
        ["µ", "k", "z", "µ^⌊k/2⌋ (lower)", "4µ^⌊k/2⌋ (upper)", "#gadgets", "|J_{µ,k}|"],
        rows,
    )
    assert rows[0][2] == 10
    assert all(row[3] <= row[2] <= row[4] for row in rows)


def bench_member_construction(benchmark, table_printer):
    z = jmuk_border_count(MU, K)
    y = tuple(i % 2 for i in range(2 ** (z - 1)))
    built = benchmark.pedantic(build_jmuk_member, args=(MU, K, y), iterations=1, rounds=2)
    table_printer(
        "E10 / Figures 9-11: one full member J_Y at µ=2, k=4",
        ["µ", "k", "z", "#gadgets", "nodes", "edges", "gadget size"],
        [[MU, K, z, built.num_gadgets, built.graph.num_nodes, built.graph.num_edges, gadget_size(MU, K)]],
    )
    assert built.num_gadgets == jmuk_num_gadgets(MU, K)
    assert built.graph.num_nodes == built.num_gadgets * gadget_size(MU, K)


def bench_lemma_4_6_4_7_selection_index(benchmark, table_printer, member):
    def analyse():
        refinement = ViewRefinement(member.graph)
        return len(refinement.unique_nodes(K - 1)), len(refinement.unique_nodes(K))

    unique_below, unique_at = benchmark.pedantic(analyse, iterations=1, rounds=2)
    table_printer(
        "E10 / Lemmas 4.6, 4.7, 4.9: ψ_S(J_Y) = k",
        ["n", "#unique views at depth k-1 (paper: 0)", "#unique views at depth k (>0)", "ψ_S"],
        [[member.graph.num_nodes, unique_below, unique_at, K if unique_below == 0 and unique_at else "?"]],
    )
    assert unique_below == 0
    assert unique_at > 0
