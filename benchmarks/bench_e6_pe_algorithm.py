"""E6 -- Lemma 3.9: ψ_PE = ψ_S = k on U_{Δ,k}, certified by running the PE algorithm.

Runs the degree-case Port Election algorithm of Lemma 3.9 on the template and
on members, validates every output, and confirms both election indices.
"""

from __future__ import annotations

import pytest

from repro.algorithms import udk_port_election_outputs
from repro.core import Task, port_election_index, selection_index, validate
from repro.families import build_udk_member, build_udk_template, udk_tree_count
from repro.views import ViewRefinement


@pytest.mark.parametrize("delta,k,use_template", [(4, 1, True), (4, 1, False)])
def bench_lemma_3_9_pe_algorithm(benchmark, table_printer, delta, k, use_template):
    if use_template:
        member = build_udk_template(delta, k)
    else:
        y = udk_tree_count(delta, k)
        sigma = tuple((3 * j) % (delta - 1) + 1 for j in range(y))
        member = build_udk_member(delta, k, sigma)

    outputs = benchmark(udk_port_election_outputs, member)
    result = validate(Task.PORT_ELECTION, member.graph, outputs)
    refinement = ViewRefinement(member.graph)
    psi_s = selection_index(member.graph, refinement=refinement)
    psi_pe = port_election_index(member.graph, refinement=refinement)
    table_printer(
        f"E6 / Lemma 3.9: PE on {'template U' if use_template else 'member G_σ'} (Δ={delta}, k={k})",
        ["n", "ψ_S (paper: k)", "ψ_PE (paper: k)", "PE outputs valid", "leader is a cycle root"],
        [[
            member.graph.num_nodes, psi_s, psi_pe, result.ok,
            result.leader in set(member.cycle_root_nodes()),
        ]],
    )
    assert result.ok
    assert psi_s == k and psi_pe == k
