"""E6 -- Lemma 3.9: ψ_PE = ψ_S = k on U_{Δ,k}, certified by running the PE algorithm.

Runs the degree-case Port Election algorithm of Lemma 3.9 on the template and
on members, validates every output, and confirms both election indices.

The ψ_S / ψ_PE computation goes through the experiment runner (one
``udk-template`` / ``udk`` spec per point), so the refinement behind the
indices is the shared cached one rather than a per-bench rebuild.
"""

from __future__ import annotations

import pytest

from repro.algorithms import udk_port_election_outputs
from repro.core import Task, validate
from repro.families import build_udk_member, build_udk_template, udk_tree_count
from repro.runner import ExperimentRunner, GraphSpec, SweepSpec


@pytest.mark.parametrize("delta,k,use_template", [(4, 1, True), (4, 1, False)])
def bench_lemma_3_9_pe_algorithm(benchmark, table_printer, delta, k, use_template):
    if use_template:
        member = build_udk_template(delta, k)
        spec = GraphSpec.make("udk-template", delta=delta, k=k)
    else:
        y = udk_tree_count(delta, k)
        sigma = tuple((3 * j) % (delta - 1) + 1 for j in range(y))
        member = build_udk_member(delta, k, sigma)
        spec = GraphSpec.make("udk", delta=delta, k=k, sigma=list(sigma))

    outputs = benchmark(udk_port_election_outputs, member)
    result = validate(Task.PORT_ELECTION, member.graph, outputs)
    sweep = SweepSpec.make([spec], tasks=[Task.SELECTION, Task.PORT_ELECTION])
    record = ExperimentRunner().run(sweep).table.records()[0]
    table_printer(
        f"E6 / Lemma 3.9: PE on {'template U' if use_template else 'member G_σ'} (Δ={delta}, k={k})",
        ["n", "ψ_S (paper: k)", "ψ_PE (paper: k)", "PE outputs valid", "leader is a cycle root"],
        [[
            record["n"], record["psi_S"], record["psi_PE"], result.ok,
            result.leader in set(member.cycle_root_nodes()),
        ]],
    )
    assert result.ok
    assert record["psi_S"] == k and record["psi_PE"] == k
