"""E14 -- substrate performance: the LOCAL-model simulator and partition refinement.

Not a table of the paper, but the scalability record of the simulator and the
view machinery everything else runs on (the "measure before optimising"
discipline of the HPC guides): rounds/second of the message-passing engine
and refinement throughput on graphs up to the full 132k-node J_Y member.
"""

from __future__ import annotations

import pytest

from repro.families import build_component, build_gadget, build_jmuk_member, jmuk_border_count
from repro.portgraph import generators
from repro.sim import gather_views
from repro.views import ViewRefinement


@pytest.mark.parametrize("n", [50, 200, 800])
def bench_simulator_view_gathering(benchmark, table_printer, n):
    graph = generators.random_connected_graph(n, extra_edges=n, seed=1)
    rounds = 3
    views = benchmark(gather_views, graph, rounds)
    table_printer(
        "E14: LOCAL-model engine, view gathering",
        ["n", "m", "rounds", "messages per round"],
        [[graph.num_nodes, graph.num_edges, rounds, 2 * graph.num_edges]],
    )
    assert len(views) == n


@pytest.mark.parametrize(
    "name,builder",
    [
        ("component H (µ=3, k=5)", lambda: build_component(3, 5)[0]),
        ("gadget (µ=3, k=5)", lambda: build_gadget(3, 5)[0]),
        ("random n=20000", lambda: generators.random_connected_graph(20000, extra_edges=20000, seed=3)),
    ],
)
def bench_refinement_throughput(benchmark, table_printer, name, builder):
    graph = builder()

    def refine():
        refinement = ViewRefinement(graph)
        return refinement.num_classes(6)

    classes = benchmark(refine)
    table_printer(
        "E14: partition refinement throughput",
        ["graph", "n", "m", "classes at depth 6"],
        [[name, graph.num_nodes, graph.num_edges, classes]],
    )
    assert classes >= 1


def bench_full_member_refinement(benchmark, table_printer):
    z = jmuk_border_count(2, 4)
    member = build_jmuk_member(2, 4, tuple(i % 2 for i in range(2 ** (z - 1))))

    def refine():
        return ViewRefinement(member.graph).num_classes(4)

    classes = benchmark.pedantic(refine, iterations=1, rounds=2)
    table_printer(
        "E14: refinement on the full J_Y member (132k nodes)",
        ["n", "m", "depth", "classes"],
        [[member.graph.num_nodes, member.graph.num_edges, 4, classes]],
    )
    assert classes == member.graph.num_nodes
