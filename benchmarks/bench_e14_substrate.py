"""E14 -- substrate performance: the LOCAL-model simulator and partition refinement.

Not a table of the paper, but the scalability record of the simulator and the
view machinery everything else runs on (the "measure before optimising"
discipline of the HPC guides): rounds/second of the message-passing engine
and refinement throughput on graphs up to the full 132k-node J_Y member.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.families import build_component, build_gadget, build_jmuk_member, jmuk_border_count
from repro.kernel import BlockCutTree, CSRPartitionRefinement, build_csr
from repro.portgraph import generators
from repro.sim import gather_views
from repro.views import ViewRefinement


@pytest.mark.parametrize("n", [50, 200, 800])
def bench_simulator_view_gathering(benchmark, table_printer, n):
    graph = generators.random_connected_graph(n, extra_edges=n, seed=1)
    rounds = 3
    views = benchmark(gather_views, graph, rounds)
    table_printer(
        "E14: LOCAL-model engine, view gathering",
        ["n", "m", "rounds", "messages per round"],
        [[graph.num_nodes, graph.num_edges, rounds, 2 * graph.num_edges]],
    )
    assert len(views) == n


@pytest.mark.parametrize(
    "name,builder",
    [
        ("component H (µ=3, k=5)", lambda: build_component(3, 5)[0]),
        ("gadget (µ=3, k=5)", lambda: build_gadget(3, 5)[0]),
        ("random n=20000", lambda: generators.random_connected_graph(20000, extra_edges=20000, seed=3)),
    ],
)
def bench_refinement_throughput(benchmark, table_printer, name, builder):
    graph = builder()
    csr = graph.csr()

    def refine():
        # a fresh engine per call: ViewRefinement shares the graph-memoised
        # engine since the kernel refactor, which would measure warm state
        engine = CSRPartitionRefinement(csr)
        effective = engine.ensure_depth(6)
        return engine.num_classes_at(effective)

    classes = benchmark(refine)
    table_printer(
        "E14: partition refinement throughput (cold kernel engine)",
        ["graph", "n", "m", "classes at depth 6"],
        [[name, graph.num_nodes, graph.num_edges, classes]],
    )
    assert classes >= 1
    assert ViewRefinement(graph).num_classes(6) == classes


def bench_full_member_refinement(benchmark, table_printer):
    z = jmuk_border_count(2, 4)
    member = build_jmuk_member(2, 4, tuple(i % 2 for i in range(2 ** (z - 1))))
    csr = member.graph.csr()

    def refine():
        engine = CSRPartitionRefinement(csr)
        effective = engine.ensure_depth(4)
        return engine.num_classes_at(effective)

    classes = benchmark.pedantic(refine, iterations=1, rounds=2)
    table_printer(
        "E14: refinement on the full J_Y member (132k nodes)",
        ["n", "m", "depth", "classes"],
        [[member.graph.num_nodes, member.graph.num_edges, 4, classes]],
    )
    assert classes == member.graph.num_nodes


@pytest.mark.parametrize("n", [200, 800])
def bench_blockcut_vs_removed_node_bfs(benchmark, table_printer, n):
    """ψ_PE's cut queries: one block-cut DFS vs the legacy per-removed-node BFS."""
    graph = generators.random_connected_graph(n, extra_edges=n // 4, seed=7)
    leader = 0
    queries = [(v, p) for v in list(graph.nodes())[1:] for p in graph.ports(v)]

    def kernel_queries():
        tree = BlockCutTree(build_csr(graph))
        return sum(tree.starts_simple_path(v, p, leader) for v, p in queries)

    def legacy_queries():
        hits = 0
        comps = {}
        for v, p in queries:
            w = graph.neighbor(v, p)
            if w == leader:
                hits += 1
                continue
            comp = comps.get(v)
            if comp is None:
                comp = [-1] * graph.num_nodes
                comp[v] = -2
                next_id = 0
                for start in graph.nodes():
                    if comp[start] != -1:
                        continue
                    comp[start] = next_id
                    queue = deque([start])
                    while queue:
                        x = queue.popleft()
                        for y in graph.neighbors(x):
                            if comp[y] == -1:
                                comp[y] = next_id
                                queue.append(y)
                    next_id += 1
                comps[v] = comp
            hits += comp[w] == comp[leader]
        return hits

    kernel_hits = benchmark(kernel_queries)
    assert kernel_hits == legacy_queries()
    table_printer(
        "E14: simple-path query throughput (block-cut tree vs per-removed-node BFS)",
        ["n", "m", "queries", "ports starting a simple path to the leader"],
        [[graph.num_nodes, graph.num_edges, len(queries), kernel_hits]],
    )
