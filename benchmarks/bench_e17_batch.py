"""E17 — the batch/streaming subsystem: sweep throughput and stream latency.

Not a table of the paper: the performance record of PR 4's batch layer.
Three measurements over a seeded mixed-corpus sweep, written to
``BENCH_PR4.json``:

* **Batch vs sequential requests.**  The same N-graph corpus is answered
  once as a single ``POST /elections`` NDJSON stream and once as N
  sequential ``POST /election`` calls, each from a cold cache and a fresh
  store.  The computation itself is GIL-bound pure Python, so the bounded
  thread window buys concurrency rather than parallel compute -- the batch
  must stay within noise of the sequential drive (one connection and one
  parse instead of N, while items stream as they finish) rather than beat
  it; the throughput numbers record exactly that.
* **Stream inter-item latency.**  p50/p99 of the gaps between consecutive
  NDJSON lines of the cold batch -- the pacing a streaming consumer sees.
* **Store-warm batch replay.**  The same batch re-posted to a fresh service
  over the populated store: must perform zero refinement passes (the same
  contract ``ci_gate.py`` enforces) and shows the replay speedup.
* **Thread vs process backend (PR 5).**  The same cold corpus through a
  sharded process-backend service (fresh store): records cold-batch
  throughput, stream-gap p50/p99 and the process-vs-thread speedup.  On
  multi-core hardware with ≥4 shards the cold mixed-corpus batch should
  approach a shard-count speedup; on a single core the record simply shows
  the IPC overhead (the number is reported, not asserted).

Usage::

    PYTHONPATH=src python benchmarks/bench_e17_batch.py [BENCH_PR4.json]
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from service_harness import ThreadedElectionServer  # noqa: E402

from repro.runner import refinement_cache  # noqa: E402
from repro.service import ElectionService  # noqa: E402
from repro.service.batch import expand_sweep  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

#: The E17 sweep: a seeded slice of the mixed scenario corpus.
E17_SWEEP = {"corpus": "mixed", "count": 60, "seed": 17}

#: Shard count of the process-backend leg.
PROCESS_SHARDS = 4


def _percentile(ordered, fraction):
    return ordered[max(0, int(len(ordered) * fraction) - 1)]


def run_batch_vs_sequential(batch_store: str, sequential_store: str) -> dict:
    items = expand_sweep(E17_SWEEP)

    refinement_cache.clear()
    with ThreadedElectionServer(
        ElectionService(store=ArtifactStore(batch_store), workers=4)
    ) as running:
        lines, gaps, batch_wall = running.post_batch({"sweep": E17_SWEEP})
        assert lines[-1]["ok"] == E17_SWEEP["count"], lines[-1]

    refinement_cache.clear()
    with ThreadedElectionServer(
        ElectionService(store=ArtifactStore(sequential_store), workers=4)
    ) as running:
        begin = time.perf_counter()
        for payload in items:
            running.post("/election", payload)
        sequential_wall = time.perf_counter() - begin

    ordered = sorted(gaps)
    return {
        "items": len(items),
        "batch_wall_s": round(batch_wall, 6),
        "sequential_wall_s": round(sequential_wall, 6),
        "batch_items_per_s": round(len(items) / batch_wall, 1),
        "sequential_items_per_s": round(len(items) / sequential_wall, 1),
        "speedup": round(sequential_wall / max(batch_wall, 1e-9), 2),
        "stream_gap_p50_ms": round(1000 * statistics.median(ordered), 3),
        "stream_gap_p99_ms": round(1000 * _percentile(ordered, 0.99), 3),
        "stream_gap_max_ms": round(1000 * ordered[-1], 3),
    }


def run_process_backend_batch(process_store: str, thread_wall_s: float) -> dict:
    """Cold mixed-corpus batch through the sharded process backend (fresh store)."""
    refinement_cache.clear()
    with ThreadedElectionServer(
        ElectionService(
            store=ArtifactStore(process_store),
            workers=4,
            backend="process",
            shards=PROCESS_SHARDS,
        )
    ) as running:
        lines, gaps, process_wall = running.post_batch({"sweep": E17_SWEEP})
        stats = running.get("/stats")
    assert lines[-1]["ok"] == E17_SWEEP["count"], lines[-1]
    assert stats["service"]["backend"] == "process", "process backend fell back"
    ordered = sorted(gaps)
    return {
        "backend": "process",
        "shards": PROCESS_SHARDS,
        "items": E17_SWEEP["count"],
        "batch_wall_s": round(process_wall, 6),
        "batch_items_per_s": round(E17_SWEEP["count"] / process_wall, 1),
        # >1 means the sharded workers beat the GIL-bound thread pool on the
        # same cold corpus; expect ~shards× on multi-core hardware, <1 on a
        # single core where the record just prices the IPC overhead
        "speedup_vs_thread": round(thread_wall_s / max(process_wall, 1e-9), 2),
        "stream_gap_p50_ms": round(1000 * statistics.median(ordered), 3),
        "stream_gap_p99_ms": round(1000 * _percentile(ordered, 0.99), 3),
        "worker_crashes": stats["shards"]["crashes"],
        "worker_spawns": stats["shards"]["spawns"],
    }


def run_store_warm_replay(batch_store: str) -> dict:
    refinement_cache.clear()
    with ThreadedElectionServer(
        ElectionService(store=ArtifactStore(batch_store), workers=4)
    ) as running:
        _lines, _gaps, warm_wall = running.post_batch({"sweep": E17_SWEEP})
        stats = running.get("/stats")
    result = {
        "warm_wall_s": round(warm_wall, 6),
        "refinement_passes": stats["cache"]["refinement_passes"],
        "store_hits": stats["cache"]["store_hits"],
    }
    assert result["refinement_passes"] == 0, "store-warm batch replay must not refine"
    return result


def bench_batch_subsystem(table_printer, tmp_path):
    """E17 under the pytest harness: one pass of both measurements."""
    batch_store = str(tmp_path / "batch-store")
    sequential_store = str(tmp_path / "sequential-store")
    process_store = str(tmp_path / "process-store")
    try:
        throughput = run_batch_vs_sequential(batch_store, sequential_store)
        replay = run_store_warm_replay(batch_store)
        process = run_process_backend_batch(process_store, throughput["batch_wall_s"])
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
    table_printer(
        "E17: batch stream vs sequential requests (cold, same corpus)",
        ["items", "batch s", "sequential s", "speedup", "gap p50 ms", "gap p99 ms"],
        [[
            throughput["items"],
            throughput["batch_wall_s"],
            throughput["sequential_wall_s"],
            throughput["speedup"],
            throughput["stream_gap_p50_ms"],
            throughput["stream_gap_p99_ms"],
        ]],
    )
    table_printer(
        "E17: store-warm batch replay",
        ["warm s", "refinement passes (expected 0)", "store hits"],
        [[replay["warm_wall_s"], replay["refinement_passes"], replay["store_hits"]]],
    )
    table_printer(
        "E17: cold batch, thread vs process backend",
        ["backend", "shards", "batch s", "items/s", "speedup vs thread", "crashes"],
        [
            ["thread", "-", throughput["batch_wall_s"], throughput["batch_items_per_s"], 1.0, 0],
            [
                "process",
                process["shards"],
                process["batch_wall_s"],
                process["batch_items_per_s"],
                process["speedup_vs_thread"],
                process["worker_crashes"],
            ],
        ],
    )
    # GIL-bound compute: the stream cannot beat sequential on wall time, but
    # a real regression (per-item overhead in the coordinator) would show as
    # a clear loss rather than noise
    assert throughput["speedup"] >= 0.7, "batch streaming overhead regressed"
    assert replay["refinement_passes"] == 0
    assert process["worker_crashes"] == 0


def main(argv) -> int:
    output_path = argv[1] if len(argv) > 1 else "BENCH_PR4.json"
    batch_store = tempfile.mkdtemp(prefix="repro-e17-batch-")
    sequential_store = tempfile.mkdtemp(prefix="repro-e17-seq-")
    process_store = tempfile.mkdtemp(prefix="repro-e17-proc-")
    try:
        payload = {
            "sweep": E17_SWEEP,
            "throughput": run_batch_vs_sequential(batch_store, sequential_store),
        }
        payload["store_warm_replay"] = run_store_warm_replay(batch_store)
        payload["process_backend"] = run_process_backend_batch(
            process_store, payload["throughput"]["batch_wall_s"]
        )
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
        shutil.rmtree(batch_store, ignore_errors=True)
        shutil.rmtree(sequential_store, ignore_errors=True)
        shutil.rmtree(process_store, ignore_errors=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
