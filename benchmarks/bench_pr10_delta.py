"""PR 10 — delta-aware incremental recompute: speedup curve, byte identity.

Not a table of the paper: the performance record of the dynamic-graph
mutation path.  Four measurements, written to ``BENCH_PR10.json`` and
gated (a regression exits non-zero, failing the CI job):

* **Delta speedup curve (gated).**  The third ``dynamic-xl`` corpus
  member -- a 6000-node *beacon-tail* graph: a locally asymmetric
  random-regular beacon that discretises in O(log blob) rounds, plus a
  long path tail that keeps the global fixpoint Theta(tail) rounds away
  -- is refined to the fixpoint once; then, for every cumulative
  mutation-stream prefix of edit distance 1..4 (edits region-restricted
  to the beacon: the localised-edit workload), the mutated graph is
  brought to its fixpoint two ways on the pinned pure-python backend:
  *cold* (build the CSR view, refine from scratch) and *delta* (apply
  the edit script, patch the CSR, replay the dirty ball over the warm
  base partitions; once the replay re-conforms to the base partition it
  fast-forwards the remaining Theta(tail) depths by aliasing the base
  tables).  Gate: the delta path is at least 3x faster at every edit
  distance <= 4, and the canonical colour tables of the two paths are
  byte-identical (zero diffs).
* **Dense-influence grid curve (recorded, not gated).**  The same curve
  on the first ``dynamic-xl`` member (a 72x72 grid, 5184 nodes).  A
  negative result by design: on the grid a single edit perturbs the
  partition at *every* depth (the deviation region is the genuinely
  growing ball -- measured class counts differ from the base at each
  level), so no conformance certificate can fire and delta replay
  cannot beat cold recompute asymptotically.  Recorded to document the
  boundary of the technique; byte identity is still asserted.
* **Numpy backend comparison (recorded, not gated).**  The beacon-tail
  curve on the vectorised backend when numpy is installed -- the delta
  win must be visible there too, but the ratio is machine-dependent
  (the replay itself delegates to the sparse python path, reading the
  numpy engine's tables as the base).
* **Three-way equivalence matrix (gated).**  On a sample of the
  ``dynamic`` corpus, the stable partition and feasibility bit are
  computed by a faithful copy of the legacy full-sweep refinement, by
  the cold kernel, and by the delta replay; all three must agree on
  every (graph, edit script) cell.
* **Service-level byte identity (gated).**  Mutation-sweep items
  (``{"base": spec, "delta": ops}``) answered through
  ``compute_election`` are compared with plain submissions of the
  pre-mutated graphs: the deterministic response fields must match
  exactly, and the replayed lifecycle must be the verified
  ``base_hit -> memos_invalidated -> replayed`` order.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr10_delta.py [BENCH_PR10.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.core import Task
from repro.kernel import numpy_available, use_backend
from repro.kernel.refine import refinement_delta
from repro.portgraph.graph import PortLabeledGraph
from repro.runner import refinement_cache
from repro.scenarios import corpus_specs, mutation_stream, mutation_sweep_items
from repro.service.service import compute_election, deterministic_response

#: Seed of every mutation stream below (one knob, fully reproducible).
SEED = 10
#: Edit distances of the gated speedup curve (cumulative prefixes).
MAX_EDIT_DISTANCE = 4
#: The gated floor: delta replay must beat cold recompute by this factor.
SPEEDUP_FLOOR = 3.0
#: Timing repetitions (best-of, to shed scheduler noise).
COLD_REPS = 2
DELTA_REPS = 3
#: Corpus slice of the three-way matrix and the service check.
MATRIX_COUNT = 5
MAX_STATES = 50_000


def _fresh_copy(graph) -> PortLabeledGraph:
    """An independent instance of the same labeled graph (no warm state)."""
    return PortLabeledGraph(
        [graph.adjacency(v) for v in graph.nodes()], name=graph.name, validate=False
    )


def _cold_fixpoint(graph):
    """Refine a cold copy to the fixpoint; returns (elapsed_s, engine)."""
    fresh = _fresh_copy(graph)
    t0 = time.perf_counter()
    engine = fresh.refinement_engine()  # builds the CSR view too
    stable = engine.ensure_stable()
    engine.colors_at(stable)
    return time.perf_counter() - t0, engine


def _delta_fixpoint(base, delta):
    """Apply + patch + replay over the warm base; returns (elapsed_s, engine)."""
    base_engine = base.refinement_engine()
    t0 = time.perf_counter()
    result = delta.apply_to(base)
    patched = base.csr().patched(result)
    engine = refinement_delta(base_engine, patched, result.node_map, result.touched)
    stable = engine.ensure_stable()
    engine.colors_at(stable)
    return time.perf_counter() - t0, engine


def _speedup_curve(base, *, kinds=None, region=None) -> dict:
    """Cold vs delta fixpoint times per edit distance on the active backend."""
    base.csr()
    base.refinement_engine().ensure_stable()  # the warm state a delta replays over
    points = []
    diffs = 0
    stream = mutation_stream(
        base, seed=SEED, length=MAX_EDIT_DISTANCE, kinds=kinds, region=region
    )
    for delta in stream:
        cold_s, cold_engine = min(
            (_cold_fixpoint(delta.apply_to(base).graph) for _ in range(COLD_REPS)),
            key=lambda pair: pair[0],
        )
        delta_s, delta_engine = min(
            (_delta_fixpoint(base, delta) for _ in range(DELTA_REPS)),
            key=lambda pair: pair[0],
        )
        if (
            delta_engine.canonical_tables() != cold_engine.canonical_tables()
            or delta_engine.class_counts != cold_engine.class_counts
        ):
            diffs += 1
        points.append(
            {
                "edit_distance": delta.edit_distance,
                "digest": delta.digest(),
                "cold_ms": round(cold_s * 1000.0, 3),
                "delta_ms": round(delta_s * 1000.0, 3),
                "speedup": round(cold_s / delta_s, 2),
            }
        )
    return {
        "n": base.num_nodes,
        "m": base.num_edges,
        "graph": base.name,
        "points": points,
        "min_speedup": min(point["speedup"] for point in points),
        "byte_identity_diffs": diffs,
    }


#: The gated member: dynamic-xl[2], a beacon-tail graph (see module docstring).
_BEACON_INDEX = 2
#: Localised-edit workload: topology-stable-ish edits confined to the beacon.
_BEACON_KINDS = ("add-edge", "remove-edge", "relabel-ports")


def _beacon_spec_and_region():
    spec = corpus_specs(_BEACON_INDEX + 1, seed=SEED, corpus="dynamic-xl")[_BEACON_INDEX]
    blob = spec.to_dict()["params"]["blob"]
    return spec, range(blob)


def run_delta_speedup() -> dict:
    """The gated curve: python backend, 6000-node beacon-tail, edit distance 1..4."""
    spec, region = _beacon_spec_and_region()
    with use_backend("python"):
        base = spec.build()
        result = _speedup_curve(base, kinds=_BEACON_KINDS, region=region)
    assert result["n"] >= 5_000, "dynamic-xl beacon member shrank below the gate"
    assert result["byte_identity_diffs"] == 0, "delta replay diverged from cold"
    assert result["min_speedup"] >= SPEEDUP_FLOOR, (
        f"delta speedup {result['min_speedup']}x under the {SPEEDUP_FLOOR}x floor"
    )
    return result


def run_dense_influence_grid() -> dict:
    """The grid curve: recorded, not gated (the documented negative result).

    A single edit on the 72x72 grid changes the partition at every depth,
    so the replay's conformance certificate never fires and the dirty ball
    genuinely grows -- delta replay is not expected to win here.  Byte
    identity still holds (and is asserted); the speedups are recorded to
    keep the boundary of the technique honest.
    """
    spec = corpus_specs(1, seed=SEED, corpus="dynamic-xl")[0]
    with use_backend("python"):
        base = spec.build()
        result = _speedup_curve(base)
    assert result["byte_identity_diffs"] == 0, "grid delta replay diverged from cold"
    result["gated"] = False
    result["note"] = (
        "dense-influence negative result: every depth of the partition shifts "
        "under one edit, so no conformance fast-forward is possible"
    )
    return result


def run_numpy_comparison() -> dict:
    """The beacon-tail curve on the vectorised backend (recorded, not gated)."""
    if not numpy_available():
        return {"skipped": "numpy not installed"}
    spec, region = _beacon_spec_and_region()
    with use_backend("numpy"):
        base = spec.build()
        result = _speedup_curve(base, kinds=_BEACON_KINDS, region=region)
    assert result["byte_identity_diffs"] == 0, "numpy delta replay diverged"
    return result


def _legacy_stable_colors(graph):
    """Faithful copy of the pre-kernel full-sweep refinement fixpoint."""
    seen = {}
    colors = [seen.setdefault(graph.degree(v), len(seen)) for v in graph.nodes()]
    while True:
        signatures = {}
        new = []
        for v in graph.nodes():
            signature = (
                colors[v],
                tuple((q, colors[u]) for u, q in graph.adjacency(v)),
            )
            new.append(signatures.setdefault(signature, len(signatures)))
        if new == colors:
            return colors
        colors = new


def _partition(colors) -> frozenset:
    classes = {}
    for node, color in enumerate(colors):
        classes.setdefault(color, []).append(node)
    return frozenset(frozenset(members) for members in classes.values())


def run_three_way_matrix() -> dict:
    """legacy == cold kernel == delta replay, cell by cell (gated)."""
    cells = []
    disagreements = 0
    with use_backend("python"):
        for spec in corpus_specs(MATRIX_COUNT, seed=SEED, corpus="dynamic"):
            base = spec.build()
            delta = mutation_stream(base, seed=SEED, length=2)[-1]
            mutated = delta.apply_to(base).graph
            legacy = _partition(_legacy_stable_colors(mutated))
            _, cold_engine = _cold_fixpoint(mutated)
            _, delta_engine = _delta_fixpoint(base, delta)
            cold = _partition(cold_engine.colors_at(cold_engine.ensure_stable()))
            replay = _partition(delta_engine.colors_at(delta_engine.ensure_stable()))
            agree = legacy == cold == replay
            disagreements += 0 if agree else 1
            cells.append(
                {
                    "graph": spec.label,
                    "edit_distance": delta.edit_distance,
                    "classes": len(legacy),
                    "agree": agree,
                }
            )
    assert disagreements == 0, "three-way partition matrix disagreed"
    return {"cells": cells, "disagreements": disagreements}


def run_service_byte_identity() -> dict:
    """Delta items vs plain submissions through the worker path (gated)."""
    from repro.portgraph.delta import GraphDelta
    from repro.portgraph.io import graph_to_dict

    refinement_cache.clear()
    specs = corpus_specs(MATRIX_COUNT, seed=SEED, corpus="dynamic")
    items = mutation_sweep_items(specs, seed=SEED, per_graph=2)
    diffs = 0
    replayed = 0
    shared = {
        "tasks": list(Task.ordered()),
        "max_depth": None,
        "max_states": MAX_STATES,
        "advice": False,
    }
    for item in items:
        warm = compute_election(
            dict(shared, graph=None, spec=None, base=item["base"], delta=item["delta"])
        )
        if warm["delta_path"][1:4] == ["base_hit", "memos_invalidated", "replayed"]:
            replayed += 1
        spec = corpus_specs(MATRIX_COUNT, seed=SEED, corpus="dynamic")
        base = next(
            s.build() for s in spec if s.to_dict() == item["base"]
        )
        mutated = GraphDelta(item["delta"]).apply_to(base).graph
        refinement_cache.clear()
        cold = compute_election(
            dict(shared, graph=graph_to_dict(mutated), spec=None, base=None, delta=None)
        )
        warm_clean = deterministic_response(warm)
        cold_clean = deterministic_response(cold)
        keys = ("fingerprint", "feasible", "indices", "n", "m", "max_degree")
        if any(warm_clean[key] != cold_clean[key] for key in keys):
            diffs += 1
        refinement_cache.clear()
    result = {"items": len(items), "replayed": replayed, "byte_identity_diffs": diffs}
    assert diffs == 0, "delta responses diverged from plain submissions"
    assert replayed == len(items), "a delta item skipped the replay lifecycle"
    return result


def main(argv) -> int:
    output_path = argv[1] if len(argv) > 1 else "BENCH_PR10.json"
    payload = {
        "delta_speedup": run_delta_speedup(),
        "dense_influence_grid": run_dense_influence_grid(),
        "numpy_comparison": run_numpy_comparison(),
        "three_way_matrix": run_three_way_matrix(),
        "service_byte_identity": run_service_byte_identity(),
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
