"""E3 -- Theorem 2.2: Selection in minimum time with small advice.

Runs the full oracle + distributed-algorithm pipeline on a spread of graphs
(family members and generator graphs), records the measured advice size in
bits, and compares it with the explicit upper bound accompanying Theorem 2.2.
"""

from __future__ import annotations

import pytest

from repro.advice import selection_advice_upper_bound_bits, selection_with_advice_scheme
from repro.analysis import selection_advice_table
from repro.core import selection_index, validate_outcome
from repro.families import build_gdk_member, build_udk_template
from repro.portgraph import generators


def _study_graphs():
    return [
        generators.asymmetric_cycle(8),
        generators.star_graph(6),
        generators.random_connected_graph(24, extra_edges=12, seed=5),
        build_gdk_member(4, 1, 3).graph,
        build_gdk_member(5, 1, 2).graph,
        build_gdk_member(4, 2, 2).graph,
        build_udk_template(4, 1).graph,
    ]


def bench_theorem_2_2_pipeline(benchmark, table_printer):
    graphs = _study_graphs()
    scheme = selection_with_advice_scheme()

    def run_all():
        outcomes = []
        for graph in graphs:
            outcome = scheme.run(graph)
            validate_outcome(graph, outcome).raise_if_invalid()
            outcomes.append(outcome)
        return outcomes

    outcomes = benchmark.pedantic(run_all, iterations=1, rounds=3)
    rows = []
    for graph, outcome in zip(graphs, outcomes):
        k = selection_index(graph)
        bound = selection_advice_upper_bound_bits(graph.max_degree, k)
        rows.append(
            [graph.name, graph.num_nodes, graph.max_degree, k, outcome.rounds, outcome.advice_bits, bound,
             outcome.advice_bits <= bound]
        )
    table_printer(
        "E3 / Theorem 2.2: Selection with advice, minimum time",
        ["graph", "n", "Δ", "ψ_S", "rounds used", "advice bits (measured)", "bound bits", "within bound"],
        rows,
    )
    assert all(row[-1] for row in rows)
    assert all(row[4] == row[3] for row in rows)  # runs in exactly ψ_S rounds


def bench_selection_advice_growth_in_delta(benchmark, table_printer):
    """Advice grows polynomially in Δ for fixed k -- the 'cheap' side of the separations."""

    def measure():
        graphs = [build_gdk_member(delta, 1, 2).graph for delta in (4, 5, 6, 7)]
        return selection_advice_table(graphs)

    rows = benchmark(measure)
    table_printer(
        "E3: measured Selection advice vs Δ (k = 1, members G_{Δ,1}[2])",
        ["graph", "Δ", "ψ_S", "measured bits", "bound bits"],
        [[r.graph_name, r.max_degree, r.selection_index, r.measured_bits, r.bound_bits] for r in rows],
    )
    measured = [r.measured_bits for r in rows]
    assert measured == sorted(measured)
    # polynomial growth: going from Δ to Δ+1 should not explode exponentially
    assert measured[-1] < 50 * measured[0]
