"""E1 -- Figure 1: the trees T_{X,1} and T_{X,2}.

Regenerates the structural data of Figure 1 (Δ = 4, k = 2,
X = (1, 2, 3, 3, 2, 2)) and times the construction of the Building Block 3
trees over a parameter sweep.
"""

from __future__ import annotations

import pytest

from repro.families import build_tree_with_path, figure_1_example, leaf_count, num_augmented_trees
from repro.views import views_equal_across_graphs


def bench_figure_1_construction(benchmark, table_printer):
    graph1, handles1 = benchmark(figure_1_example, 1)
    graph2, handles2 = figure_1_example(2)
    rows = [
        ["T_{X,1}", graph1.num_nodes, graph1.num_edges, len(handles1.leaves), len(handles1.path_nodes)],
        ["T_{X,2}", graph2.num_nodes, graph2.num_edges, len(handles2.leaves), len(handles2.path_nodes)],
    ]
    table_printer(
        "E1 / Figure 1: T_{X,1} and T_{X,2} for Δ=4, k=2, X=(1,2,3,3,2,2)",
        ["tree", "nodes", "edges", "z leaves (paper: 6)", "path nodes (paper: k+1=3)"],
        rows,
    )
    assert len(handles1.leaves) == 6
    assert graph1.num_nodes == graph2.num_nodes == 25
    # the two variants differ, but not below depth k (Proposition 2.4 at the root)
    assert views_equal_across_graphs(graph1, handles1.root, graph2, handles2.root, 1)


@pytest.mark.parametrize("delta,k", [(4, 1), (4, 2), (5, 2), (6, 2), (4, 3)])
def bench_tree_construction_sweep(benchmark, table_printer, delta, k):
    sequence = tuple((i % (delta - 1)) + 1 for i in range(leaf_count(delta, k)))
    graph, handles = benchmark(build_tree_with_path, delta, k, sequence, 1)
    table_printer(
        f"E1: T_(X,1) sweep point Δ={delta}, k={k}",
        ["Δ", "k", "z=(Δ-2)(Δ-1)^(k-1)", "|T_{Δ,k}| (Fact 2.3 base)", "nodes", "edges"],
        [[delta, k, leaf_count(delta, k), num_augmented_trees(delta, k), graph.num_nodes, graph.num_edges]],
    )
    assert len(handles.leaves) == leaf_count(delta, k)
