"""E16 — the serving subsystem: store warm-start speedup and service latency.

Not a table of the paper: the performance record of PR 3's durable layer.
Two measurements, written to ``BENCH_PR3.json``:

* **Cold vs store-warm sweep.**  An E2/E6/E13-style mixed sweep is run once
  against an empty artifact store (cold: refines, searches, writes through)
  and once from a cleared in-memory cache against the now-populated store
  (store-warm: every record read from disk).  The warm run must perform
  zero refinement passes — the same contract ``ci_gate.py`` enforces with a
  genuinely cold child process.
* **Service latency under concurrent clients.**  An in-process
  :class:`~repro.service.ElectionServer` on an ephemeral port is hammered by
  concurrent threads cycling through a few distinct payloads; per-request
  wall times give p50/p99, and the /stats counters record coalescing.  The
  measurement runs twice -- once on the GIL-bound **thread** backend and
  once on the sharded **process** backend (PR 5) -- so the record shows the
  thread-vs-process p50/p99 and throughput side by side (the process
  backend only pulls ahead on multi-core hardware with cold, distinct
  payloads; warm or coalesced traffic is parent-bound either way).

Usage::

    PYTHONPATH=src python benchmarks/bench_e16_service.py [BENCH_PR3.json]
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from service_harness import ThreadedElectionServer  # noqa: E402

from repro.core import Task, reset_search_statistics  # noqa: E402
from repro.portgraph import generators  # noqa: E402
from repro.portgraph.io import graph_to_dict  # noqa: E402
from repro.runner import ExperimentRunner, GraphSpec, SweepSpec, refinement_cache  # noqa: E402
from repro.service import ElectionService  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

#: The E2/E6/E13-style mixed sweep (families + generators + joint searches).
E16_SWEEP = SweepSpec.make(
    [
        GraphSpec.make("gdk", delta=4, k=1, index=1),
        GraphSpec.make("gdk", delta=4, k=1, index=2),
        GraphSpec.make("gdk", delta=4, k=1, index=3),
        GraphSpec.make("asymmetric-cycle", n=7),
        GraphSpec.make("asymmetric-cycle", n=9),
        GraphSpec.make("star", leaves=4),
        GraphSpec.make("random", n=9, extra_edges=4, seed=2),
        GraphSpec.make("random", n=10, extra_edges=5, seed=3),
    ],
    tasks=Task.ordered(),
    profile_depths=(1,),
)

CLIENTS = 8
REQUESTS_PER_CLIENT = 25


def _run_sweep(store_dir: str) -> dict:
    before = refinement_cache.stats()
    report = ExperimentRunner(store_path=store_dir).run(E16_SWEEP)
    after = report.cache_stats
    return {
        "wall_time_s": round(report.elapsed, 6),
        "refinement_passes": after["refinement_passes"] - before["refinement_passes"],
        "store_hits": after["store_hits"] - before["store_hits"],
        "store_misses": after["store_misses"] - before["store_misses"],
        "table_json": report.table.to_json(),
    }


def run_store_warm_sweep(store_dir: str) -> dict:
    refinement_cache.clear()
    reset_search_statistics()
    cold = _run_sweep(store_dir)
    refinement_cache.clear()  # a new process, as far as the in-memory cache knows
    warm = _run_sweep(store_dir)
    result = {
        "sweep_graphs": [spec.label for spec in E16_SWEEP.graphs],
        "cold": {k: v for k, v in cold.items() if k != "table_json"},
        "store_warm": {k: v for k, v in warm.items() if k != "table_json"},
        "tables_identical": cold["table_json"] == warm["table_json"],
        "speedup": round(cold["wall_time_s"] / max(warm["wall_time_s"], 1e-9), 2),
    }
    assert warm["refinement_passes"] == 0, "store-warm sweep must not refine"
    assert result["tables_identical"], "store-warm table must be byte-identical"
    return result


def run_service_latency(store_dir: str, *, backend: str = "thread", shards: int = 4) -> dict:
    refinement_cache.clear()
    payloads = [
        json.dumps({"spec": spec.to_dict()}).encode("utf-8")
        for spec in E16_SWEEP.graphs[:4]
    ] + [
        json.dumps({"graph": graph_to_dict(generators.asymmetric_cycle(8))}).encode("utf-8")
    ]
    latencies: list = []
    latencies_lock = threading.Lock()
    errors: list = []

    with ThreadedElectionServer(
        ElectionService(
            store=ArtifactStore(store_dir), workers=4, backend=backend, shards=shards
        )
    ) as running:

        def client(worker: int) -> None:
            for i in range(REQUESTS_PER_CLIENT):
                body = payloads[(worker + i) % len(payloads)]
                request = urllib.request.Request(
                    f"{running.base}/election",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                begin = time.perf_counter()
                try:
                    with urllib.request.urlopen(request, timeout=30) as response:
                        response.read()
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return
                elapsed = time.perf_counter() - begin
                with latencies_lock:
                    latencies.append(elapsed)

        workers = [threading.Thread(target=client, args=(w,)) for w in range(CLIENTS)]
        begin = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        total = time.perf_counter() - begin
        stats = running.get("/stats")
    if errors:
        raise RuntimeError(f"{len(errors)} client requests failed: {errors[0]}")
    ordered = sorted(latencies)
    return {
        "backend": stats["service"]["backend"],
        "concurrency": stats["service"]["concurrency"],
        "clients": CLIENTS,
        "requests": len(latencies),
        "total_wall_s": round(total, 6),
        "requests_per_s": round(len(latencies) / total, 1),
        "p50_ms": round(1000 * statistics.median(ordered), 3),
        "p99_ms": round(1000 * ordered[max(0, int(len(ordered) * 0.99) - 1)], 3),
        "max_ms": round(1000 * ordered[-1], 3),
        "coalesced": stats["service"]["coalesced"],
        "computed": stats["service"]["computed"],
    }


def bench_serving_subsystem(table_printer, tmp_path):
    """E16 under the pytest harness: one pass of both measurements."""
    store_dir = str(tmp_path / "store")
    try:
        sweep = run_store_warm_sweep(store_dir)
        services = [
            run_service_latency(store_dir),
            run_service_latency(store_dir, backend="process"),
        ]
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
    table_printer(
        "E16: store warm-start (cold vs warm sweep)",
        ["graphs", "cold s", "warm s", "speedup", "warm refinement passes (expected 0)"],
        [[
            len(E16_SWEEP.graphs),
            sweep["cold"]["wall_time_s"],
            sweep["store_warm"]["wall_time_s"],
            sweep["speedup"],
            sweep["store_warm"]["refinement_passes"],
        ]],
    )
    table_printer(
        "E16: service latency under concurrent clients (thread vs process backend)",
        ["backend", "clients", "requests", "p50 ms", "p99 ms", "coalesced"],
        [
            [
                service["backend"],
                service["clients"],
                service["requests"],
                service["p50_ms"],
                service["p99_ms"],
                service["coalesced"],
            ]
            for service in services
        ],
    )
    assert sweep["store_warm"]["refinement_passes"] == 0
    assert sweep["tables_identical"]
    for service in services:
        assert service["requests"] == CLIENTS * REQUESTS_PER_CLIENT
    assert services[1]["backend"] == "process"


def main(argv) -> int:
    output_path = argv[1] if len(argv) > 1 else "BENCH_PR3.json"
    store_dir = tempfile.mkdtemp(prefix="repro-e16-store-")
    try:
        payload = {
            "sweep": run_store_warm_sweep(store_dir),
            "service": run_service_latency(store_dir),
            "service_process": run_service_latency(store_dir, backend="process"),
        }
    finally:
        refinement_cache.attach_store(None)
        refinement_cache.clear()
        shutil.rmtree(store_dir, ignore_errors=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
