"""E5 -- Figure 3, Fact 3.1, Propositions 3.2/3.3/3.5, Lemmas 3.6/3.8: the class U_{Δ,k}.

Builds the template U and a member G_σ, verifies that no node has a unique
view at depth k-1 (Lemma 3.6) while exactly the cycle roots do at depth k
(Lemma 3.8), and tabulates Fact 3.1's class sizes.

The uniqueness profile of Lemmas 3.6/3.8 is produced by the experiment
runner (a ``udk`` spec profiled at depths k-1 and k); the identification of
the unique nodes with the cycle roots reuses the runner's cached refinement.
"""

from __future__ import annotations

import pytest

from repro.families import build_udk_member, build_udk_template, udk_class_size, udk_tree_count
from repro.runner import ExperimentRunner, GraphSpec, SweepSpec, shared_refinement


def bench_template_construction(benchmark, table_printer):
    member = benchmark(build_udk_template, 4, 1)
    graph = member.graph
    y = udk_tree_count(4, 1)
    table_printer(
        "E5 / Figure 3: the template U for Δ=4, k=1",
        ["Δ", "k", "y=|T_{Δ,k}|", "nodes", "edges", "max degree (paper: 2Δ-1)", "cycle roots (paper: 2y)"],
        [[4, 1, y, graph.num_nodes, graph.num_edges, graph.max_degree, len(member.cycle_roots)]],
    )
    assert graph.max_degree == 2 * 4 - 1
    assert len(member.cycle_roots) == 2 * y


@pytest.mark.parametrize("delta,k", [(4, 1)])
def bench_lemma_3_6_and_3_8(benchmark, table_printer, delta, k):
    sigma = tuple((j % (delta - 1)) + 1 for j in range(udk_tree_count(delta, k)))
    member = build_udk_member(delta, k, sigma)
    sweep = SweepSpec.make(
        [GraphSpec.make("udk", delta=delta, k=k, sigma=list(sigma))],
        tasks=[],
        profile_depths=[k - 1, k],
    )
    runner = ExperimentRunner()

    record = benchmark(lambda: runner.run(sweep).table.records()[0])
    # same graph as the runner's spec build -> served by the shared cache
    unique_at = shared_refinement(member.graph).unique_nodes(k)
    cycle_roots = set(member.cycle_root_nodes())
    table_printer(
        f"E5 / Lemmas 3.6 and 3.8 on G_σ (Δ={delta}, k={k})",
        ["#unique@k-1 (paper: 0)", "#unique@k (paper: 2y)", "unique@k are exactly the cycle roots"],
        [[record[f"unique_at_{k - 1}"], record[f"unique_at_{k}"], set(unique_at) == cycle_roots]],
    )
    assert record[f"unique_at_{k - 1}"] == 0
    assert record[f"unique_at_{k}"] == len(cycle_roots)
    assert set(unique_at) == cycle_roots


def bench_fact_3_1_class_sizes(benchmark, table_printer):
    parameters = [(4, 1), (5, 1), (6, 1), (4, 2)]

    def compute():
        return [(delta, k, udk_class_size(delta, k)) for delta, k in parameters]

    rows = benchmark(compute)
    table_printer(
        "E5 / Fact 3.1: |U_{Δ,k}| = (Δ-1)^(|T_{Δ,k}|)",
        ["Δ", "k", "|U_{Δ,k}|"],
        [[delta, k, size if size < 10**40 else f"~2^{size.bit_length() - 1}"] for delta, k, size in rows],
    )
    assert rows[0][2] == 3**9
