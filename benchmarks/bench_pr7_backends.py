"""PR 7 — dual-backend kernel performance record (python vs numpy).

Times the cold compute-bound workloads that motivated the vectorized
backend, once per kernel backend, and writes the committed perf baseline
``BENCH_PR7.json``:

* **E14 cold refinement** — a random 20k-node substrate refined to depth 6
  with a fresh engine (the refinement-throughput workload of
  ``bench_e14_substrate.py``).
* **E10 J_Y member** — the full 132k-node J_{2,4} member refined to depth
  k = 4 (the heaviest single graph of the harness).
* **E16-style sweep** — the mixed family/generator sweep with all ψ_Z
  tasks, evaluated cold through :class:`~repro.runner.ExperimentRunner`
  (no store), showing what the layers above the kernel inherit.

Each workload also cross-checks that both backends produced identical
canonical tables / result tables, so the record can't silently report a
speedup for diverging outputs.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr7_backends.py [BENCH_PR7.json]
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, Tuple

from repro.core import Task
from repro.families import build_jmuk_member, jmuk_border_count
from repro.kernel import make_refinement, numpy_available, use_backend
from repro.portgraph import generators
from repro.runner import ExperimentRunner, GraphSpec, SweepSpec, refinement_cache

BACKENDS = ("python", "numpy")

#: E16-style mixed sweep (families + generators, every ψ_Z task).
SWEEP = SweepSpec.make(
    [
        GraphSpec.make("gdk", delta=4, k=1, index=1),
        GraphSpec.make("gdk", delta=4, k=1, index=2),
        GraphSpec.make("gdk", delta=4, k=1, index=3),
        GraphSpec.make("asymmetric-cycle", n=7),
        GraphSpec.make("asymmetric-cycle", n=9),
        GraphSpec.make("star", leaves=4),
        GraphSpec.make("random", n=9, extra_edges=4, seed=2),
        GraphSpec.make("random", n=10, extra_edges=5, seed=3),
    ],
    tasks=Task.ordered(),
    profile_depths=(1,),
)


def _best_of(repeats: int, run: Callable[[], object]) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` cold runs, plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def _refinement_workload(csr, depth: int, repeats: int) -> Dict[str, Dict]:
    observed = {}
    for backend in BACKENDS:
        with use_backend(backend):
            def cold():
                engine = make_refinement(csr)
                engine.ensure_depth(depth)
                return engine.canonical_tables()

            seconds, tables = _best_of(repeats, cold)
        observed[backend] = {"seconds": round(seconds, 6), "tables": tables}
    identical = observed["python"]["tables"] == observed["numpy"]["tables"]
    return {
        "python_s": observed["python"]["seconds"],
        "numpy_s": observed["numpy"]["seconds"],
        "speedup": round(observed["python"]["seconds"] / observed["numpy"]["seconds"], 2),
        "tables_identical": identical,
    }


def bench_e14_cold_refinement() -> Dict:
    graph = generators.random_connected_graph(20000, extra_edges=20000, seed=3)
    record = {"workload": "random_connected_graph(n=20000, extra_edges=20000, seed=3), depth 6"}
    record.update(_refinement_workload(graph.csr(), depth=6, repeats=3))
    return record


def bench_e10_member_refinement() -> Dict:
    z = jmuk_border_count(2, 4)
    member = build_jmuk_member(2, 4, tuple(i % 2 for i in range(2 ** (z - 1))))
    record = {
        "workload": f"J_(2,4) member, n={member.graph.num_nodes}, depth 4",
    }
    record.update(_refinement_workload(member.graph.csr(), depth=4, repeats=2))
    return record


def bench_e16_cold_sweep() -> Dict:
    observed = {}
    for backend in BACKENDS:
        with use_backend(backend):
            def cold():
                refinement_cache.clear()
                return ExperimentRunner(workers=1).run(SWEEP).table
            seconds, table = _best_of(2, cold)
        observed[backend] = {"seconds": round(seconds, 6), "rows": table.records()}
    refinement_cache.clear()
    return {
        "workload": f"E16-style mixed sweep, {len(SWEEP.graphs)} graphs, all psi tasks",
        "python_s": observed["python"]["seconds"],
        "numpy_s": observed["numpy"]["seconds"],
        "speedup": round(observed["python"]["seconds"] / observed["numpy"]["seconds"], 2),
        "tables_identical": observed["python"]["rows"] == observed["numpy"]["rows"],
    }


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_PR7.json"
    if not numpy_available():
        print("numpy not installed; dual-backend record requires it", file=sys.stderr)
        return 1
    payload = {
        "bench": "PR7 kernel backends",
        "e14_cold_refinement": bench_e14_cold_refinement(),
        "e10_jmuk_member": bench_e10_member_refinement(),
        "e16_cold_sweep": bench_e16_cold_sweep(),
    }
    ok = all(
        payload[key]["tables_identical"]
        for key in ("e14_cold_refinement", "e10_jmuk_member", "e16_cold_sweep")
    )
    payload["tables_identical"] = ok
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
