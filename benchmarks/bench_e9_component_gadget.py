"""E9 -- Figures 5-8, Lemma 4.3, Proposition 4.4, Fact 4.5: the component H and gadget Ĥ.

Builds the component graph and the four-component gadget, checks the reach
properties the later lemmas rely on (every node sees ρ within k; no node sees
all layer-k nodes within k-1), and times the constructions.
"""

from __future__ import annotations

import pytest

from repro.analysis import lemma_4_3_holds
from repro.families import build_component, build_gadget, component_size, gadget_size
from repro.portgraph.paths import eccentricity
from repro.views import views_equal_across_graphs


@pytest.mark.parametrize("mu,k", [(2, 4), (3, 4), (2, 5), (3, 5)])
def bench_component_construction(benchmark, table_printer, mu, k):
    graph, handles = benchmark(build_component, mu, k)
    lemma43 = lemma_4_3_holds(graph, handles)
    table_printer(
        f"E9 / Figures 5-7: component H for µ={mu}, k={k}",
        ["µ", "k", "nodes (formula)", "nodes (built)", "edges", "ecc(ρ) (paper: k)",
         "Lemma 4.3 holds", "z = |L_k|"],
        [[mu, k, component_size(mu, k), graph.num_nodes, graph.num_edges,
          eccentricity(graph, handles.root), lemma43, handles.z]],
    )
    assert graph.num_nodes == component_size(mu, k)
    assert eccentricity(graph, handles.root) == k
    assert lemma43


@pytest.mark.parametrize("mu,k", [(2, 4), (3, 4)])
def bench_gadget_construction(benchmark, table_printer, mu, k):
    graph, handles = benchmark(build_gadget, mu, k)
    other_graph, other_handles = build_gadget(mu, k)
    prop_4_4 = views_equal_across_graphs(graph, handles.rho, other_graph, other_handles.rho, k - 1)
    table_printer(
        f"E9 / Figure 8: gadget Ĥ for µ={mu}, k={k}",
        ["µ", "k", "nodes (formula)", "nodes (built)", "deg(ρ) (paper: 4µ)",
         "Prop 4.4: ρ views equal at depth k-1 across copies"],
        [[mu, k, gadget_size(mu, k), graph.num_nodes, graph.degree(handles.rho), prop_4_4]],
    )
    assert graph.degree(handles.rho) == 4 * mu
    assert prop_4_4
