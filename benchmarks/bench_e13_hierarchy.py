"""E13 -- Fact 1.1: the hierarchy ψ_CPPE >= ψ_PPE >= ψ_PE >= ψ_S.

Computes all four election indices exactly on a spread of small graphs
(including the paper's own 3-node example with ψ_CPPE = 1 > 0 = ψ_S) and
checks the ordering, plus the downward output derivations.

The sweep goes through the batched experiment runner: the study graphs are
declared as :class:`~repro.runner.GraphSpec` objects, one shared refinement
per graph serves all four ψ_Z queries, and a second bench certifies that
re-running the same spec is served entirely from the refinement cache.
"""

from __future__ import annotations

import pytest

from repro.core import Task, indices_respect_hierarchy
from repro.runner import ExperimentRunner, GraphSpec, SweepSpec, refinement_cache

_STUDY_SPECS = (
    GraphSpec.make("three-node-line"),
    GraphSpec.make("star", leaves=3),
    GraphSpec.make("star", leaves=5),
    GraphSpec.make("path", n=6),
    GraphSpec.make("asymmetric-cycle", n=5),
    GraphSpec.make("asymmetric-cycle", n=7),
    GraphSpec.make("random", n=8, extra_edges=3, seed=2),
    GraphSpec.make("random", n=9, extra_edges=5, seed=4),
    GraphSpec.make("random", n=10, extra_edges=2, seed=8),
)


def _indices_of(record):
    return {task: record[f"psi_{task.value}"] for task in Task.ordered()}


def bench_fact_1_1_indices(benchmark, table_printer):
    sweep = SweepSpec.make(_STUDY_SPECS)
    runner = ExperimentRunner()

    report = benchmark(runner.run, sweep)
    rows = []
    for record in report.table.records():
        rows.append([
            record["graph"],
            record["n"],
            record["psi_S"],
            record["psi_PE"],
            record["psi_PPE"],
            record["psi_CPPE"],
            indices_respect_hierarchy(_indices_of(record)),
        ])
    table_printer(
        "E13 / Fact 1.1: election indices of assorted feasible graphs",
        ["graph", "n", "ψ_S", "ψ_PE", "ψ_PPE", "ψ_CPPE", "hierarchy holds"],
        rows,
    )
    assert all(row[-1] for row in rows)
    # the paper's example: 3-node line with ports 0,0,1,0 has ψ_S = 0, ψ_CPPE = 1
    line_row = rows[0]
    assert line_row[2] == 0 and line_row[5] == 1


def bench_fact_1_1_cached_resweep(benchmark, table_printer):
    """Re-running the same sweep spec performs no new refinement passes."""
    sweep = SweepSpec.make(_STUDY_SPECS)
    runner = ExperimentRunner()
    warm = runner.run(sweep)
    before = refinement_cache.stats()

    report = benchmark(runner.run, sweep)
    after = refinement_cache.stats()
    table_printer(
        "E13: cached re-sweep of the Fact 1.1 study",
        ["graphs", "run 1 elapsed (s)", "run 2 elapsed (s)", "new refinement passes in run 2 (expected: 0)"],
        [[
            len(sweep.graphs),
            round(warm.elapsed, 4),
            round(report.elapsed, 4),
            after["refinement_passes"] - before["refinement_passes"],
        ]],
    )
    assert report.table.to_json() == warm.table.to_json()
    assert after["refinement_passes"] == before["refinement_passes"]
