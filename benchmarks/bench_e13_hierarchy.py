"""E13 -- Fact 1.1: the hierarchy ψ_CPPE >= ψ_PPE >= ψ_PE >= ψ_S.

Computes all four election indices exactly on a spread of small graphs
(including the paper's own 3-node example with ψ_CPPE = 1 > 0 = ψ_S) and
checks the ordering, plus the downward output derivations.
"""

from __future__ import annotations

import pytest

from repro.core import Task, all_election_indices, indices_respect_hierarchy
from repro.portgraph import generators


def _study_graphs():
    return [
        generators.three_node_line(),
        generators.star_graph(3),
        generators.star_graph(5),
        generators.path_graph(6),
        generators.asymmetric_cycle(5),
        generators.asymmetric_cycle(7),
        generators.random_connected_graph(8, extra_edges=3, seed=2),
        generators.random_connected_graph(9, extra_edges=5, seed=4),
        generators.random_connected_graph(10, extra_edges=2, seed=8),
    ]


def bench_fact_1_1_indices(benchmark, table_printer):
    graphs = _study_graphs()

    def compute():
        return [(graph, all_election_indices(graph)) for graph in graphs]

    results = benchmark(compute)
    rows = []
    for graph, indices in results:
        rows.append([
            graph.name,
            graph.num_nodes,
            indices[Task.SELECTION],
            indices[Task.PORT_ELECTION],
            indices[Task.PORT_PATH_ELECTION],
            indices[Task.COMPLETE_PORT_PATH_ELECTION],
            indices_respect_hierarchy(indices),
        ])
    table_printer(
        "E13 / Fact 1.1: election indices of assorted feasible graphs",
        ["graph", "n", "ψ_S", "ψ_PE", "ψ_PPE", "ψ_CPPE", "hierarchy holds"],
        rows,
    )
    assert all(row[-1] for row in rows)
    # the paper's example: 3-node line with ports 0,0,1,0 has ψ_S = 0, ψ_CPPE = 1
    line_row = rows[0]
    assert line_row[2] == 0 and line_row[5] == 1
