"""The template U and the class U_{Δ,k} of Section 3.1 (Port Election lower bound).

For Δ >= 4 and k >= 1, let y = |T_{Δ,k}|.  The template U consists of:

1. all trees T_{j,b} (j = 1..y, b = 1, 2), their roots joined in a cycle
   r_{1,1}, r_{1,2}, r_{2,1}, ..., r_{y,2} with port Δ+1 towards the next root
   and Δ-1 towards the previous one;
2. two extra copies T_{j,1,1} and T_{j,1,2} of T_{j,1} per j;
3. a path of length k+1 from r_{j,1} to r_{j,1,1} (port Δ at r_{j,1}, port
   Δ-1 at r_{j,1,1}, interior ports 1 towards r_{j,1} and 0 towards
   r_{j,1,1}), and likewise from r_{j,2} to r_{j,1,2};
4. Δ-1 pendant paths of length k+1 at each of r_{j,1,1} and r_{j,1,2}, using
   ports Δ..2Δ-2 at the root and 0 (towards the root) / 1 (away) at the path
   nodes.

A class member G_σ, for σ = (s_1, ..., s_y) with s_j in 1..Δ-1, is obtained
from U by exchanging ports Δ-1 and Δ-1+s_j at *both* r_{j,1,1} and r_{j,1,2}
(Fact 3.1: |U_{Δ,k}| = (Δ-1)^y).

The construction makes ψ_S(G_σ) = ψ_PE(G_σ) = k (Lemma 3.9) while forcing any
minimum-time Port Election algorithm to output, at r_{j,1,1}, the port
σ-dependent first step towards the cycle -- which cannot be deduced from the
view and therefore must be paid for in advice (Theorem 3.11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph
from .trees import TreeHandles, add_tree_with_path, num_augmented_trees, sequence_from_index

__all__ = [
    "UdkMember",
    "udk_class_size",
    "udk_tree_count",
    "build_udk_template",
    "build_udk_member",
    "iter_udk_members",
]


@dataclass
class UdkMember:
    """The template U (sigma=None) or a class member G_σ of U_{Δ,k}."""

    delta: int
    k: int
    sigma: Optional[Tuple[int, ...]]
    graph: PortLabeledGraph
    #: cycle roots r_{j,b}, keyed by (j, b)
    cycle_roots: Dict[Tuple[int, int], int]
    #: hub roots r_{j,1,1} and r_{j,1,2}, keyed by (j, 1) and (j, 2)
    hub_roots: Dict[Tuple[int, int], int]
    #: tree handles: cycle trees keyed ("cycle", j, b); hub trees keyed ("hub", j, c)
    trees: Dict[Tuple[str, int, int], TreeHandles] = field(default_factory=dict)
    #: interior nodes of the connecting path r_{j,b} -- r_{j,1,b}, keyed by (j, b)
    connector_paths: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    #: pendant path nodes at each hub root, keyed by (j, c), one list per pendant path
    pendant_paths: Dict[Tuple[int, int], List[List[int]]] = field(default_factory=dict)

    @property
    def num_tree_indices(self) -> int:
        return max(j for j, _b in self.cycle_roots) if self.cycle_roots else 0

    def cycle_root_nodes(self) -> List[int]:
        """All cycle roots r_{j,b} (the degree Δ+2 nodes of Lemma 3.8)."""
        return [self.cycle_roots[key] for key in sorted(self.cycle_roots)]

    def hub_root_nodes(self) -> List[int]:
        """All hub roots r_{j,1,1}, r_{j,1,2} (the degree 2Δ-1 nodes)."""
        return [self.hub_roots[key] for key in sorted(self.hub_roots)]


def udk_tree_count(delta: int, k: int) -> int:
    """y = |T_{Δ,k}|, the number of tree indices used by the template."""
    if delta < 4 or k < 1:
        raise ValueError("U_{Δ,k} requires Δ >= 4 and k >= 1")
    return num_augmented_trees(delta, k)


def udk_class_size(delta: int, k: int) -> int:
    """|U_{Δ,k}| = (Δ-1)^{|T_{Δ,k}|} (Fact 3.1)."""
    return (delta - 1) ** udk_tree_count(delta, k)


def _build(delta: int, k: int, sigma: Optional[Sequence[int]]) -> UdkMember:
    y = udk_tree_count(delta, k)
    if sigma is not None:
        sigma = tuple(sigma)
        if len(sigma) != y:
            raise ValueError(f"σ must have length y={y}, got {len(sigma)}")
        if any(not (1 <= s <= delta - 1) for s in sigma):
            raise ValueError(f"σ entries must lie in 1..{delta - 1}")

    label = "U-template" if sigma is None else "G_σ"
    builder = GraphBuilder(name=f"{label}(Δ={delta},k={k})")

    trees: Dict[Tuple[str, int, int], TreeHandles] = {}
    cycle_roots: Dict[Tuple[int, int], int] = {}
    hub_roots: Dict[Tuple[int, int], int] = {}
    connector_paths: Dict[Tuple[int, int], List[int]] = {}
    pendant_paths: Dict[Tuple[int, int], List[List[int]]] = {}

    # Step 1: the trees T_{j,b} and the cycle of their roots.
    for j in range(1, y + 1):
        sequence = sequence_from_index(delta, k, j)
        for b in (1, 2):
            handles = add_tree_with_path(builder, delta, k, sequence, b)
            trees[("cycle", j, b)] = handles
            cycle_roots[(j, b)] = handles.root
    cycle_order = [cycle_roots[(j, b)] for j in range(1, y + 1) for b in (1, 2)]
    for position, root in enumerate(cycle_order):
        nxt = cycle_order[(position + 1) % len(cycle_order)]
        # port Δ+1 at the current root towards the next, Δ-1 at the next towards the current
        builder.add_edge(root, delta + 1, nxt, delta - 1)

    # Step 2: the extra copies T_{j,1,1} and T_{j,1,2}.
    for j in range(1, y + 1):
        sequence = sequence_from_index(delta, k, j)
        for c in (1, 2):
            handles = add_tree_with_path(builder, delta, k, sequence, 1)
            trees[("hub", j, c)] = handles
            hub_roots[(j, c)] = handles.root

    # Step 3: connecting paths of length k+1 between r_{j,b} and r_{j,1,b}.
    for j in range(1, y + 1):
        for b in (1, 2):
            cycle_root = cycle_roots[(j, b)]
            hub_root = hub_roots[(j, b)]
            interior = builder.add_nodes(k)
            chain = [cycle_root] + interior + [hub_root]
            for position in range(len(chain) - 1):
                left, right = chain[position], chain[position + 1]
                if position == 0:
                    left_port = delta  # new port Δ at r_{j,b}
                else:
                    left_port = 0  # interior: 0 towards r_{j,1,b}
                if position == len(chain) - 2:
                    right_port = delta - 1  # new port Δ-1 at r_{j,1,b}
                else:
                    right_port = 1  # interior: 1 towards r_{j,b}
                builder.add_edge(left, left_port, right, right_port)
            connector_paths[(j, b)] = interior

    # Step 4: Δ-1 pendant paths of length k+1 at each hub root.
    for j in range(1, y + 1):
        for c in (1, 2):
            hub_root = hub_roots[(j, c)]
            paths: List[List[int]] = []
            for offset in range(delta - 1):
                nodes = builder.add_nodes(k + 1)
                chain = [hub_root] + nodes
                for position in range(len(chain) - 1):
                    left, right = chain[position], chain[position + 1]
                    left_port = delta + offset if position == 0 else 1
                    builder.add_edge(left, left_port, right, 0)
                paths.append(nodes)
            pendant_paths[(j, c)] = paths

    # Step 5 (class members only): exchange ports Δ-1 and Δ-1+s_j at both hub roots.
    if sigma is not None:
        for j in range(1, y + 1):
            s = sigma[j - 1]
            for c in (1, 2):
                builder.swap_ports(hub_roots[(j, c)], delta - 1, delta - 1 + s)

    graph = builder.build()
    return UdkMember(
        delta=delta,
        k=k,
        sigma=None if sigma is None else tuple(sigma),
        graph=graph,
        cycle_roots=cycle_roots,
        hub_roots=hub_roots,
        trees=trees,
        connector_paths=connector_paths,
        pendant_paths=pendant_paths,
    )


def build_udk_template(delta: int, k: int) -> UdkMember:
    """The template graph U (Figure 3)."""
    return _build(delta, k, None)


def build_udk_member(delta: int, k: int, sigma: Sequence[int]) -> UdkMember:
    """The class member G_σ of U_{Δ,k}."""
    return _build(delta, k, sigma)


def iter_udk_members(
    delta: int, k: int, sigmas: Iterator[Sequence[int]]
) -> Iterator[UdkMember]:
    """Build the members G_σ for the given sequences σ."""
    for sigma in sigmas:
        yield build_udk_member(delta, k, sigma)
