"""Part 2 of Section 4.1: the component graph H.

``H`` is the disjoint union of the layer graphs L_0, ..., L_{k-1} plus two
copies L_{k,1}, L_{k,2} of L_k, joined by inter-layer edges exactly as the
paper prescribes (Figures 5-7).  The construction is deliberately such that
every node of H sees all of H within distance k, but no node sees *all* the
layer-k nodes within distance k-1 (Lemma 4.3) -- which is where the class
J_{µ,k} hides the identity of the gadget a node belongs to.

The builder optionally reuses an externally supplied node as the component's
root r^0_0 (with a port offset); this is how the gadget of Part 3 merges the
four components at the common node ρ without rebuilding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph
from .layered import LayerHandles, add_layer, layer_size

__all__ = ["ComponentHandles", "add_component", "build_component", "component_size"]


@dataclass
class ComponentHandles:
    """Handles of one component H embedded in a builder."""

    mu: int
    k: int
    #: the root r^0_0 (the node that becomes ρ in a gadget)
    root: int
    #: layer handles for L_0 .. L_{k-1}
    layers: List[LayerHandles]
    #: the two copies of the top layer, L_{k,1} and L_{k,2}
    top_layers: Tuple[LayerHandles, LayerHandles]
    #: border nodes (w_{q,1}, w_{q,2}) for q = 1..z, in the paper's lexicographic order
    border: List[Tuple[int, int]] = field(default_factory=list)
    #: every node of the component except the (possibly shared) root
    nodes_without_root: List[int] = field(default_factory=list)

    @property
    def z(self) -> int:
        """Number of layer-k nodes (the length of the border list)."""
        return len(self.border)

    def border_node(self, q: int, copy: int) -> int:
        """w_{q,copy} with q in 1..z and copy in {1, 2}."""
        return self.border[q - 1][copy - 1]

    def all_nodes(self) -> List[int]:
        return [self.root] + self.nodes_without_root


def component_size(mu: int, k: int) -> int:
    """Number of nodes of the component H (including its root)."""
    return sum(layer_size(mu, m) for m in range(k)) + 2 * layer_size(mu, k)


def _connect_generic(
    builder: GraphBuilder,
    mu: int,
    m: int,
    src: LayerHandles,
    dst: LayerHandles,
    *,
    second_copy: bool = False,
) -> None:
    """The 'Edges between L_m and L_{m+1} when 2 <= m' rule.

    With ``second_copy=True`` the port labels used at the L_m side are shifted
    past the ones used for the first copy of L_{m+1} (the m = k-1 case of the
    construction), so the two applications never clash.
    """
    # roots
    root_port = mu + 1 + (1 if second_copy else 0)
    for b in (0, 1):
        builder.add_edge(src.root(b), root_port, dst.root(b), mu)

    # non-middle, non-root nodes: 1 <= |σ| <= height - 1
    plain_port = mu + 2 + (1 if second_copy else 0)
    for depth in range(1, src.height):
        for sigma in src.sequences_at_depth(depth):
            for b in (0, 1):
                builder.add_edge(src.node(b, sigma), plain_port, dst.node(b, sigma), mu + 1)

    middle_depth = src.height
    if m % 2 == 0:
        # Case 1: m even.  Each identified middle connects to the two
        # corresponding middle nodes of the odd layer above.
        base = (3 if m == 2 else 4) + (2 if second_copy else 0)
        for sigma in src.sequences_at_depth(middle_depth):
            middle = src.node(0, sigma)
            builder.add_edge(middle, base, dst.node(0, sigma), 2)
            builder.add_edge(middle, base + 1, dst.node(1, sigma), 2)
    else:
        # Case 2: m odd.  Each middle connects to its copy in the even layer
        # above and to the µ identified middles adjacent to that copy.
        offset = (mu + 1) if second_copy else 0
        for sigma in src.sequences_at_depth(middle_depth):
            for b in (0, 1):
                middle = src.node(b, sigma)
                builder.add_edge(middle, 3 + offset, dst.node(b, sigma), mu + 1)
                for i in range(mu):
                    target = dst.node(b, sigma + (i,))
                    target_port = 2 if b == 0 else 3
                    builder.add_edge(middle, 4 + i + offset, target, target_port)


def add_component(
    builder: GraphBuilder,
    mu: int,
    k: int,
    *,
    root: Optional[int] = None,
    root_port_offset: int = 0,
) -> ComponentHandles:
    """Add one component H to ``builder``.

    Parameters
    ----------
    root:
        Existing node handle to use as r^0_0 (the gadget's ρ); a fresh node is
        created when omitted.
    root_port_offset:
        Added to the µ port labels the root uses towards L_1 (the gadget uses
        offsets 0, µ, 2µ, 3µ for its four components).
    """
    if mu < 2 or k < 4:
        raise ValueError("the component graph H requires µ >= 2 and k >= 4")

    before = builder.num_nodes
    if root is None:
        root = builder.add_node()
        own_root = True
    else:
        own_root = False

    layers: List[LayerHandles] = []
    # L_0 is just the root; register it as a layer for uniform bookkeeping.
    layer0 = LayerHandles(mu=mu, index=0, height=0, by_address={(0, ()): root}, nodes=[root])
    layers.append(layer0)
    for m in range(1, k):
        layers.append(add_layer(builder, mu, m))
    top1 = add_layer(builder, mu, k)
    top2 = add_layer(builder, mu, k)

    # --- edges between L_0 and L_1 -------------------------------------- #
    layer1 = layers[1]
    for i in range(mu):
        builder.add_edge(root, root_port_offset + i, layer1.clique_node(i), mu - 1)

    # --- edges between L_1 and L_2 -------------------------------------- #
    layer2 = layers[2]
    for i in range(mu):
        builder.add_edge(layer1.clique_node(i), mu, layer2.node(0, (i,)), 2)
    builder.add_edge(layer1.clique_node(0), mu + 1, layer2.root(0), mu)
    builder.add_edge(layer1.clique_node(mu - 1), mu + 1, layer2.root(1), mu)

    # --- generic rule for 2 <= m < k - 1 --------------------------------- #
    for m in range(2, k - 1):
        _connect_generic(builder, mu, m, layers[m], layers[m + 1])

    # --- m = k - 1: connect to both copies of L_k ------------------------ #
    _connect_generic(builder, mu, k - 1, layers[k - 1], top1)
    _connect_generic(builder, mu, k - 1, layers[k - 1], top2, second_copy=True)

    # --- border bookkeeping ---------------------------------------------- #
    ordered1 = top1.ordered_nodes()
    ordered2 = top2.ordered_nodes()
    border = list(zip(ordered1, ordered2))

    new_nodes = list(range(before, builder.num_nodes))
    nodes_without_root = [v for v in new_nodes if v != root]
    if own_root:
        # the root was the first node created inside this call
        assert root in new_nodes

    return ComponentHandles(
        mu=mu,
        k=k,
        root=root,
        layers=layers,
        top_layers=(top1, top2),
        border=border,
        nodes_without_root=nodes_without_root,
    )


def build_component(mu: int, k: int, *, name: str = "") -> Tuple[PortLabeledGraph, ComponentHandles]:
    """Build the component graph H standalone (used by the E9 bench and tests)."""
    builder = GraphBuilder(name=name or f"H(µ={mu},k={k})")
    handles = add_component(builder, mu, k)
    graph = builder.build()
    return graph, handles
