"""The paper's lower-bound graph families: G_{Δ,k}, U_{Δ,k} and J_{µ,k}."""

from .component import ComponentHandles, add_component, build_component, component_size
from .counting import (
    fact_2_3_class_size,
    fact_3_1_class_size,
    fact_4_1_layer_sizes,
    fact_4_2_class_size,
    fact_4_2_z_bounds,
    family_summary,
    format_count,
)
from .gadget import (
    COMPONENT_KEYS,
    GadgetHandles,
    add_gadget,
    build_gadget,
    component_port_block,
    gadget_size,
)
from .gdk import GdkMember, build_gdk_member, gdk_class_size, iter_gdk_members
from .jmuk import (
    JmukMember,
    build_jmuk_member,
    build_jmuk_template,
    gadget_index_bit,
    jmuk_border_count,
    jmuk_class_size,
    jmuk_num_gadgets,
)
from .layered import LayerHandles, add_layer, build_layer_graph, layer_size
from .trees import (
    TreeHandles,
    add_augmented_tree,
    add_base_tree,
    add_tree_with_path,
    build_tree_with_path,
    figure_1_example,
    index_of_sequence,
    iter_leaf_sequences,
    leaf_count,
    num_augmented_trees,
    sequence_from_index,
)
from .udk import (
    UdkMember,
    build_udk_member,
    build_udk_template,
    iter_udk_members,
    udk_class_size,
    udk_tree_count,
)

__all__ = [
    # trees
    "TreeHandles",
    "leaf_count",
    "num_augmented_trees",
    "iter_leaf_sequences",
    "sequence_from_index",
    "index_of_sequence",
    "add_base_tree",
    "add_augmented_tree",
    "add_tree_with_path",
    "build_tree_with_path",
    "figure_1_example",
    # G_{Δ,k}
    "GdkMember",
    "gdk_class_size",
    "build_gdk_member",
    "iter_gdk_members",
    # U_{Δ,k}
    "UdkMember",
    "udk_class_size",
    "udk_tree_count",
    "build_udk_template",
    "build_udk_member",
    "iter_udk_members",
    # layers / component / gadget / J_{µ,k}
    "LayerHandles",
    "layer_size",
    "add_layer",
    "build_layer_graph",
    "ComponentHandles",
    "component_size",
    "add_component",
    "build_component",
    "COMPONENT_KEYS",
    "GadgetHandles",
    "gadget_size",
    "add_gadget",
    "build_gadget",
    "component_port_block",
    "JmukMember",
    "jmuk_border_count",
    "jmuk_num_gadgets",
    "jmuk_class_size",
    "gadget_index_bit",
    "build_jmuk_template",
    "build_jmuk_member",
    # counting facts
    "fact_2_3_class_size",
    "fact_3_1_class_size",
    "fact_4_1_layer_sizes",
    "fact_4_2_class_size",
    "fact_4_2_z_bounds",
    "family_summary",
    "format_count",
]
