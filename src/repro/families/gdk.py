"""The class G_{Δ,k} of Section 2.2.1 (Selection lower bound, Theorem 2.9).

For Δ >= 3 and k >= 1, the class contains |T_{Δ,k}| = (Δ-1)^{(Δ-2)(Δ-1)^{k-1}}
graphs G_1, ..., G_{|T_{Δ,k}|} (Fact 2.3).  Graph G_i is the disjoint union of

* the tree T_{i,2} (one copy),
* two copies of T_{j',2} for every j' < i,
* two copies of T_{j,1} for every j <= i,
* a cycle C_i on 4i-1 nodes c_1, ..., c_{4i-1},

glued together by one edge per cycle node: c_{4j-3} and c_{4j-2} to the roots
of the two copies of T_{j,1}, c_{4j-1} to the root of the first copy of
T_{j,2}, and c_{4j'} to the root of the second copy of T_{j',2}.  The port at
the cycle node is 2 and the port at the tree root is Δ-1.

The point of the construction (Lemmas 2.5-2.7): every node except the root of
the single copy of T_{i,2} has a "twin" with the same view at depth k, so
ψ_S(G_i) = k, yet distinguishing which G_i one is in requires seeing the leaf
attachment counts -- which is why advice polylogarithmic in the class size
cannot exist (Theorem 2.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph
from .trees import TreeHandles, add_tree_with_path, num_augmented_trees, sequence_from_index

__all__ = ["GdkMember", "gdk_class_size", "build_gdk_member", "iter_gdk_members"]


@dataclass
class GdkMember:
    """One graph G_i of the class G_{Δ,k}, with the handles the proofs talk about."""

    delta: int
    k: int
    index: int
    graph: PortLabeledGraph
    #: cycle nodes c_1, ..., c_{4i-1} in order
    cycle_nodes: List[int]
    #: tree handles keyed by (j, variant, copy) with copy in {1, 2}
    trees: Dict[Tuple[int, int, int], TreeHandles] = field(default_factory=dict)

    @property
    def distinguished_root(self) -> int:
        """The root r_{i,2} of the unique copy of T_{i,2} (the node Lemma 2.6 singles out)."""
        return self.trees[(self.index, 2, 1)].root

    def tree_root(self, j: int, variant: int, copy: int) -> int:
        return self.trees[(j, variant, copy)].root


def gdk_class_size(delta: int, k: int) -> int:
    """|G_{Δ,k}| = (Δ-1)^{(Δ-2)(Δ-1)^{k-1}} (Fact 2.3)."""
    return num_augmented_trees(delta, k)


def build_gdk_member(delta: int, k: int, index: int) -> GdkMember:
    """Construct the graph G_index of the class G_{Δ,k} (index is 1-based as in the paper)."""
    if delta < 3 or k < 1:
        raise ValueError("G_{Δ,k} requires Δ >= 3 and k >= 1")
    total = gdk_class_size(delta, k)
    if not (1 <= index <= total):
        raise ValueError(f"index {index} out of range 1..{total}")

    builder = GraphBuilder(name=f"G_{{Δ={delta},k={k}}}[{index}]")

    # The cycle C_index on 4·index - 1 nodes with "oriented" 0/1 ports.
    cycle_length = 4 * index - 1
    cycle_nodes = builder.add_nodes(cycle_length)
    for position in range(cycle_length):
        nxt = (position + 1) % cycle_length
        builder.add_edge(cycle_nodes[position], 0, cycle_nodes[nxt], 1)

    trees: Dict[Tuple[int, int, int], TreeHandles] = {}

    def attach_tree(j: int, variant: int, copy: int, cycle_node: int) -> None:
        sequence = sequence_from_index(delta, k, j)
        handles = add_tree_with_path(builder, delta, k, sequence, variant)
        trees[(j, variant, copy)] = handles
        # port 2 at the cycle node, port Δ-1 at the tree root
        builder.add_edge(cycle_node, 2, handles.root, delta - 1)

    for j in range(1, index + 1):
        attach_tree(j, 1, 1, cycle_nodes[4 * j - 3 - 1])
        attach_tree(j, 1, 2, cycle_nodes[4 * j - 2 - 1])
        attach_tree(j, 2, 1, cycle_nodes[4 * j - 1 - 1])
    for j in range(1, index):
        attach_tree(j, 2, 2, cycle_nodes[4 * j - 1])

    graph = builder.build()
    return GdkMember(
        delta=delta,
        k=k,
        index=index,
        graph=graph,
        cycle_nodes=cycle_nodes,
        trees=trees,
    )


def iter_gdk_members(delta: int, k: int, indices: Iterator[int] | None = None) -> Iterator[GdkMember]:
    """Iterate over members G_i; by default over the whole class (use with care -- it is huge)."""
    if indices is None:
        indices = iter(range(1, gdk_class_size(delta, k) + 1))
    for index in indices:
        yield build_gdk_member(delta, k, index)
