"""Part 3 of Section 4.1: the gadget graph Ĥ.

A gadget consists of four copies of the component graph H -- called left,
top, right and bottom (H_L, H_T, H_R, H_B) -- whose four r^0_0 nodes are
merged into a single node ρ of degree 4µ.  The ports at ρ are 0..µ-1 into
H_L, µ..2µ-1 into H_T, 2µ..3µ-1 into H_R and 3µ..4µ-1 into H_B (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph
from .component import ComponentHandles, add_component, component_size

__all__ = [
    "COMPONENT_KEYS",
    "GadgetHandles",
    "add_gadget",
    "build_gadget",
    "gadget_size",
    "component_port_block",
]

#: The four component positions in the order of their port blocks at ρ.
COMPONENT_KEYS: Tuple[str, ...] = ("L", "T", "R", "B")


@dataclass
class GadgetHandles:
    """Handles of one gadget Ĥ embedded in a builder."""

    mu: int
    k: int
    #: the merged centre node ρ
    rho: int
    #: the four components keyed by "L", "T", "R", "B"
    components: Dict[str, ComponentHandles]

    @property
    def z(self) -> int:
        return self.components["L"].z

    def component(self, key: str) -> ComponentHandles:
        return self.components[key]

    def border_node(self, key: str, q: int, copy: int) -> int:
        """w_{q,copy} of component ``key``."""
        return self.components[key].border_node(q, copy)


def component_port_block(mu: int, key: str) -> range:
    """The ports of ρ that lead into the given component (before any Part 5 swap)."""
    index = COMPONENT_KEYS.index(key)
    return range(index * mu, (index + 1) * mu)


def gadget_size(mu: int, k: int) -> int:
    """Number of nodes of the gadget Ĥ (four components sharing one root)."""
    return 4 * (component_size(mu, k) - 1) + 1


def add_gadget(builder: GraphBuilder, mu: int, k: int) -> GadgetHandles:
    """Add one gadget Ĥ to ``builder`` and return its handles."""
    rho = builder.add_node()
    components: Dict[str, ComponentHandles] = {}
    for index, key in enumerate(COMPONENT_KEYS):
        components[key] = add_component(
            builder, mu, k, root=rho, root_port_offset=index * mu
        )
    return GadgetHandles(mu=mu, k=k, rho=rho, components=components)


def build_gadget(mu: int, k: int, *, name: str = "") -> Tuple[PortLabeledGraph, GadgetHandles]:
    """Build the gadget Ĥ standalone (used by the E9 bench and tests)."""
    builder = GraphBuilder(name=name or f"gadget(µ={mu},k={k})")
    handles = add_gadget(builder, mu, k)
    graph = builder.build()
    return graph, handles
