"""Parts 4 and 5 of Section 4.1: the template J and the class J_{µ,k}.

The template ``J`` chains 2^z copies of the gadget Ĥ (z = |L_k|): for every
gadget index i >= 1 and every position q whose bit is set in the z-bit
representation of i, four edges among layer-k ("border") nodes are added --
inside H_B of gadget i-1, inside H_T of gadget i, and crosswise between H_R
of gadget i-1 and H_L of gadget i (Figure 9).  These edges *encode the gadget
index* in the degrees of the border nodes: reading them off a component tells
a node which gadget it sits in (the W values of Lemma 4.8) -- but only if it
sees the whole layer k, which takes k rounds (Lemma 4.3).

A class member ``J_Y`` for a binary sequence Y of length 2^{z-1} applies, for
every i with y_i = 1, a port swap at ρ_i exchanging the H_R and H_B blocks,
and at ρ_{2^z-1-i} exchanging the H_L and H_T blocks (Figure 10).  There are
2^{2^{z-1}} members (Fact 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph
from .gadget import COMPONENT_KEYS, GadgetHandles, add_gadget, gadget_size
from .layered import layer_size

__all__ = [
    "JmukMember",
    "jmuk_border_count",
    "jmuk_num_gadgets",
    "jmuk_class_size",
    "gadget_index_bit",
    "build_jmuk_template",
    "build_jmuk_member",
]


def jmuk_border_count(mu: int, k: int) -> int:
    """z: the number of nodes of the layer graph L_k (Fact 4.2 bounds it by µ^{k/2}..4µ^{k/2})."""
    if mu < 2 or k < 4:
        raise ValueError("J_{µ,k} requires µ >= 2 and k >= 4")
    return layer_size(mu, k)


def jmuk_num_gadgets(mu: int, k: int) -> int:
    """Number of gadgets chained in the template J: 2^z."""
    return 2 ** jmuk_border_count(mu, k)


def jmuk_class_size(mu: int, k: int) -> int:
    """|J_{µ,k}| = 2^{2^{z-1}} (Fact 4.2)."""
    return 2 ** (2 ** (jmuk_border_count(mu, k) - 1))


def gadget_index_bit(value: int, q: int, z: int) -> int:
    """The q-th bit (1-based, most significant first) of the z-bit representation of ``value``."""
    if not (1 <= q <= z):
        raise ValueError(f"bit position {q} out of range 1..{z}")
    return (value >> (z - q)) & 1


@dataclass
class JmukMember:
    """The template J (``y=None``) or a member J_Y of the class J_{µ,k}."""

    mu: int
    k: int
    z: int
    y: Optional[Tuple[int, ...]]
    graph: PortLabeledGraph
    #: node-handle offset of each gadget copy
    gadget_offsets: List[int]
    #: handles of the single gadget the copies were cloned from (offset-relative)
    template_handles: GadgetHandles

    @property
    def num_gadgets(self) -> int:
        return len(self.gadget_offsets)

    def rho(self, i: int) -> int:
        """The centre node ρ_i of gadget Ĥ_i."""
        return self.gadget_offsets[i] + self.template_handles.rho

    def rho_nodes(self) -> List[int]:
        return [self.rho(i) for i in range(self.num_gadgets)]

    def border_node(self, i: int, component: str, q: int, copy: int) -> int:
        """w_{q,copy} of component ``component`` of gadget Ĥ_i."""
        return self.gadget_offsets[i] + self.template_handles.border_node(component, q, copy)

    def component_nodes(self, i: int, component: str) -> List[int]:
        """All nodes of the given component of gadget Ĥ_i (excluding ρ_i)."""
        offset = self.gadget_offsets[i]
        return [offset + v for v in self.template_handles.component(component).nodes_without_root]

    def gadget_nodes(self, i: int) -> List[int]:
        """All nodes of gadget Ĥ_i (including ρ_i)."""
        nodes = [self.rho(i)]
        for key in COMPONENT_KEYS:
            nodes.extend(self.component_nodes(i, key))
        return nodes

    def gadget_of_node(self, node: int) -> int:
        """The index of the gadget containing ``node``."""
        size = gadget_size(self.mu, self.k)
        return node // size


def _build(mu: int, k: int, y: Optional[Sequence[int]]) -> JmukMember:
    z = jmuk_border_count(mu, k)
    num_gadgets = 2**z
    if y is not None:
        y = tuple(y)
        if len(y) != 2 ** (z - 1):
            raise ValueError(f"Y must have length 2^(z-1) = {2 ** (z - 1)}, got {len(y)}")
        if any(bit not in (0, 1) for bit in y):
            raise ValueError("Y must be a binary sequence")

    # Build one gadget standalone and clone it.
    gadget_builder = GraphBuilder()
    template_handles = add_gadget(gadget_builder, mu, k)
    label = "J-template" if y is None else "J_Y"
    builder = GraphBuilder(name=f"{label}(µ={mu},k={k})")
    gadget_offsets = [builder.add_graph(gadget_builder) for _ in range(num_gadgets)]

    def border(i: int, component: str, q: int, copy: int) -> int:
        return gadget_offsets[i] + template_handles.border_node(component, q, copy)

    # Part 4: chain the gadgets, encoding each index i in border-node degrees.
    for i in range(1, num_gadgets):
        for q in range(1, z + 1):
            if gadget_index_bit(i, q, z) != 1:
                continue
            pairs = (
                (border(i - 1, "B", q, 1), border(i - 1, "B", q, 2)),
                (border(i, "T", q, 1), border(i, "T", q, 2)),
                (border(i - 1, "R", q, 1), border(i, "L", q, 2)),
                (border(i - 1, "R", q, 2), border(i, "L", q, 1)),
            )
            for u, v in pairs:
                builder.add_edge(u, builder.degree(u), v, builder.degree(v))

    # Part 5: port swaps at the ρ nodes (class members only).
    if y is not None:
        for i, bit in enumerate(y):
            if bit != 1:
                continue
            rho_low = gadget_offsets[i] + template_handles.rho
            rho_high = gadget_offsets[num_gadgets - 1 - i] + template_handles.rho
            for x in range(2 * mu, 3 * mu):
                builder.swap_ports(rho_low, x, x + mu)
            for x in range(0, mu):
                builder.swap_ports(rho_high, x, x + mu)

    graph = builder.build()
    return JmukMember(
        mu=mu,
        k=k,
        z=z,
        y=None if y is None else tuple(y),
        graph=graph,
        gadget_offsets=gadget_offsets,
        template_handles=template_handles,
    )


def build_jmuk_template(mu: int, k: int) -> JmukMember:
    """The template graph J (Part 4, before any port swapping)."""
    return _build(mu, k, None)


def build_jmuk_member(mu: int, k: int, y: Sequence[int]) -> JmukMember:
    """The class member J_Y of J_{µ,k} for the binary sequence Y of length 2^{z-1}."""
    return _build(mu, k, y)
