"""The counting facts of the paper (Facts 2.3, 3.1, 4.1, 4.2) as exact integers.

These closed forms are what the lower-bound theorems feed into the Pigeonhole
Principle; the benchmark harness checks them against the actually-constructed
graphs at buildable parameters and evaluates them symbolically at the paper's
asymptotic parameters.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .gdk import gdk_class_size
from .jmuk import jmuk_border_count, jmuk_class_size, jmuk_num_gadgets
from .layered import layer_size
from .trees import leaf_count, num_augmented_trees
from .udk import udk_class_size, udk_tree_count

__all__ = [
    "fact_2_3_class_size",
    "fact_3_1_class_size",
    "fact_4_1_layer_sizes",
    "fact_4_2_class_size",
    "fact_4_2_z_bounds",
    "family_summary",
    "format_count",
]


def format_count(value: int, *, exact_digit_limit: int = 60) -> str:
    """Human-readable rendering of a possibly astronomical exact count.

    Small values are printed exactly; larger ones as a power-of-two estimate
    derived from the bit length (the class sizes of the paper easily exceed
    what decimal expansion can sensibly show).
    """
    if value < 10**exact_digit_limit:
        return str(value)
    return f"~2^{value.bit_length() - 1} ({value.bit_length()} bits)"


def fact_2_3_class_size(delta: int, k: int) -> int:
    """Fact 2.3: |G_{Δ,k}| = |T_{Δ,k}| = (Δ-1)^{(Δ-2)(Δ-1)^{k-1}}."""
    return gdk_class_size(delta, k)


def fact_3_1_class_size(delta: int, k: int) -> int:
    """Fact 3.1: |U_{Δ,k}| = (Δ-1)^{|T_{Δ,k}|} = (Δ-1)^{(Δ-1)^{(Δ-2)(Δ-1)^{k-1}}}."""
    return udk_class_size(delta, k)


def fact_4_1_layer_sizes(mu: int, k: int) -> Dict[int, int]:
    """Fact 4.1: the number of nodes of every layer graph L_0, ..., L_k."""
    return {m: layer_size(mu, m) for m in range(k + 1)}


def fact_4_2_class_size(mu: int, k: int) -> int:
    """Fact 4.2: |J_{µ,k}| = 2^{2^{z-1}} where z = |L_k|."""
    return jmuk_class_size(mu, k)


def fact_4_2_z_bounds(mu: int, k: int) -> Tuple[int, int, int]:
    """Fact 4.2's bounds on z: µ^{⌊k/2⌋} <= z <= 4µ^{⌊k/2⌋}.  Returns (lower, z, upper)."""
    z = jmuk_border_count(mu, k)
    lower = mu ** (k // 2)
    upper = 4 * mu ** (k // 2)
    return lower, z, upper


def family_summary(delta: int, k: int, mu: int) -> Dict[str, int]:
    """A small table of all the counting facts for one parameter triple."""
    return {
        "z_trees": leaf_count(delta, k),
        "num_augmented_trees": num_augmented_trees(delta, k),
        "gdk_class_size": gdk_class_size(delta, k),
        "udk_tree_count": udk_tree_count(delta, k),
        "udk_class_size": udk_class_size(delta, k),
        "jmuk_border_count": jmuk_border_count(mu, k) if k >= 4 else 0,
        "jmuk_num_gadgets": jmuk_num_gadgets(mu, k) if k >= 4 else 0,
        "jmuk_class_size": jmuk_class_size(mu, k) if k >= 4 else 0,
    }
