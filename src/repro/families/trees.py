"""Building Blocks 1-3 of Section 2.2.1: the trees T, T_X, T_{X,1}, T_{X,2}.

* **Building Block 1** -- the rooted tree ``T`` of height ``k``: the root has
  degree Δ-2 (ports 1..Δ-2 towards its children); every other internal node
  has degree Δ (port 0 towards its parent, ports 1..Δ-1 towards its
  children); leaves sit at depth ``k`` and use port 0 towards their parent.
  ``T`` has z = (Δ-2)·(Δ-1)^{k-1} leaves.

* **Building Block 2** -- the augmented tree ``T_X`` for a sequence
  X = (x_1, ..., x_z) with 1 <= x_i <= Δ-1: attach ``x_i`` degree-one nodes
  to the i-th leaf (leaves ordered by the lexicographic order of the port
  sequence from the root), with ports 1..x_i at the leaf and port 0 at each
  attached node.  There are (Δ-1)^z such trees; this set is T_{Δ,k}.

* **Building Block 3** -- ``T_{X,1}`` and ``T_{X,2}``: ``T_X`` plus an
  appended path r, p_1, ..., p_{k+1}.  The ports at r and p_{k+1} on the path
  are 0; each interior p_i uses port 1 towards p_{i-1} and port 0 towards
  p_{i+1}.  ``T_{X,2}`` differs only at p_k, where the two port labels are
  swapped -- the one-bit difference that Lemma 2.6 exploits.

All constructions write into a caller-supplied :class:`GraphBuilder` (so the
classes G_{Δ,k} and U_{Δ,k} can embed many copies) and return a
:class:`TreeHandles` record of the node handles that later construction steps
need to reference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph

__all__ = [
    "TreeHandles",
    "leaf_count",
    "num_augmented_trees",
    "iter_leaf_sequences",
    "sequence_from_index",
    "index_of_sequence",
    "add_base_tree",
    "add_augmented_tree",
    "add_tree_with_path",
    "build_tree_with_path",
    "figure_1_example",
]


@dataclass
class TreeHandles:
    """Node handles of one embedded tree copy."""

    #: the root r of the tree (also the endpoint of the appended path, if any)
    root: int
    #: leaves ℓ_1..ℓ_z of the base tree T, in lexicographic order of root port sequence
    leaves: List[int]
    #: degree-one nodes attached to each leaf (Building Block 2), indexed per leaf
    attached: List[List[int]] = field(default_factory=list)
    #: appended path nodes p_1..p_{k+1} (Building Block 3), empty if no path appended
    path_nodes: List[int] = field(default_factory=list)
    #: which Building Block 3 variant was built (1, 2, or None)
    variant: Optional[int] = None
    #: the sequence X used to augment the tree (None for the base tree)
    sequence: Optional[Tuple[int, ...]] = None


# --------------------------------------------------------------------------- #
# sequence bookkeeping
# --------------------------------------------------------------------------- #
def leaf_count(delta: int, k: int) -> int:
    """z = (Δ-2)·(Δ-1)^{k-1}, the number of leaves of the base tree T."""
    if delta < 3 or k < 1:
        raise ValueError("Building Block 1 requires Δ >= 3 and k >= 1")
    return (delta - 2) * (delta - 1) ** (k - 1)


def num_augmented_trees(delta: int, k: int) -> int:
    """|T_{Δ,k}| = (Δ-1)^z (the count that becomes Fact 2.3)."""
    return (delta - 1) ** leaf_count(delta, k)


def iter_leaf_sequences(delta: int, k: int) -> Iterator[Tuple[int, ...]]:
    """All sequences X in {1..Δ-1}^z in increasing lexicographic order."""
    z = leaf_count(delta, k)
    yield from itertools.product(range(1, delta), repeat=z)


def sequence_from_index(delta: int, k: int, j: int) -> Tuple[int, ...]:
    """The j-th sequence X (1-based, matching the paper's T_1, ..., T_{|T_{Δ,k}|})."""
    total = num_augmented_trees(delta, k)
    if not (1 <= j <= total):
        raise ValueError(f"index {j} out of range 1..{total}")
    z = leaf_count(delta, k)
    base = delta - 1
    remainder = j - 1
    digits: List[int] = []
    for position in range(z - 1, -1, -1):
        power = base**position
        digit = remainder // power
        remainder -= digit * power
        digits.append(digit + 1)
    return tuple(digits)


def index_of_sequence(delta: int, k: int, sequence: Sequence[int]) -> int:
    """Inverse of :func:`sequence_from_index` (returns a 1-based index)."""
    z = leaf_count(delta, k)
    if len(sequence) != z:
        raise ValueError(f"sequence must have length z={z}")
    base = delta - 1
    index = 0
    for value in sequence:
        if not (1 <= value <= delta - 1):
            raise ValueError(f"sequence entries must lie in 1..{delta - 1}")
        index = index * base + (value - 1)
    return index + 1


# --------------------------------------------------------------------------- #
# Building Block 1: the rooted tree T
# --------------------------------------------------------------------------- #
def add_base_tree(builder: GraphBuilder, delta: int, k: int) -> TreeHandles:
    """Add a copy of the Building Block 1 tree T; return its handles."""
    z = leaf_count(delta, k)  # validates delta, k
    root = builder.add_node()
    # (node handle, port sequence from the root) for the current frontier,
    # kept in lexicographic order of the port sequence.
    frontier: List[Tuple[int, Tuple[int, ...]]] = [(root, ())]
    for depth in range(k):
        next_frontier: List[Tuple[int, Tuple[int, ...]]] = []
        for parent, sequence in frontier:
            child_ports = range(1, delta - 1) if parent == root else range(1, delta)
            for port in child_ports:
                child = builder.add_node()
                builder.add_edge(parent, port, child, 0)
                next_frontier.append((child, sequence + (port,)))
        frontier = next_frontier
    leaves = [node for node, _sequence in frontier]
    assert len(leaves) == z
    return TreeHandles(root=root, leaves=leaves, attached=[[] for _ in leaves])


# --------------------------------------------------------------------------- #
# Building Block 2: augmented trees T_X
# --------------------------------------------------------------------------- #
def add_augmented_tree(
    builder: GraphBuilder, delta: int, k: int, sequence: Sequence[int]
) -> TreeHandles:
    """Add a copy of T_X for the given sequence X; return its handles."""
    handles = add_base_tree(builder, delta, k)
    z = len(handles.leaves)
    if len(sequence) != z:
        raise ValueError(f"sequence must have length z={z}, got {len(sequence)}")
    for i, (leaf, count) in enumerate(zip(handles.leaves, sequence)):
        if not (1 <= count <= delta - 1):
            raise ValueError(f"x_{i + 1}={count} outside 1..{delta - 1}")
        for port in range(1, count + 1):
            pendant = builder.add_node()
            builder.add_edge(leaf, port, pendant, 0)
            handles.attached[i].append(pendant)
    handles.sequence = tuple(sequence)
    return handles


# --------------------------------------------------------------------------- #
# Building Block 3: T_{X,1} and T_{X,2}
# --------------------------------------------------------------------------- #
def add_tree_with_path(
    builder: GraphBuilder, delta: int, k: int, sequence: Sequence[int], variant: int
) -> TreeHandles:
    """Add a copy of T_{X,variant} (variant 1 or 2); return its handles."""
    if variant not in (1, 2):
        raise ValueError("variant must be 1 or 2")
    handles = add_augmented_tree(builder, delta, k, sequence)
    root = handles.root
    path_nodes = builder.add_nodes(k + 1)
    # Edge r -- p_1: port 0 at r, port 1 at p_1 (p_1's port towards p_0 = r).
    builder.add_edge(root, 0, path_nodes[0], 1)
    # Edges p_i -- p_{i+1} for i = 1..k: port 0 at p_i (towards p_{i+1}),
    # port 1 at p_{i+1} (towards p_i) ... except p_{k+1}, whose port is 0.
    for i in range(k):
        forward_port_at_next = 0 if i == k - 1 else 1
        builder.add_edge(path_nodes[i], 0, path_nodes[i + 1], forward_port_at_next)
    if variant == 2:
        # Swap the two port labels at p_k so that the port towards p_{k-1}
        # (or r if k = 1) becomes 0 and the port towards p_{k+1} becomes 1.
        builder.swap_ports(path_nodes[k - 1], 0, 1)
    handles.path_nodes = path_nodes
    handles.variant = variant
    return handles


def build_tree_with_path(
    delta: int, k: int, sequence: Sequence[int], variant: int, *, name: str = ""
) -> Tuple[PortLabeledGraph, TreeHandles]:
    """Standalone graph of T_{X,variant} (used for Figure 1 style inspection and tests)."""
    builder = GraphBuilder(name=name or f"T_{{X,{variant}}} (Δ={delta}, k={k})")
    handles = add_tree_with_path(builder, delta, k, sequence, variant)
    return builder.build(), handles


def figure_1_example(variant: int = 1) -> Tuple[PortLabeledGraph, TreeHandles]:
    """The exact trees of Figure 1: Δ = 4, k = 2, X = (1, 2, 3, 3, 2, 2)."""
    return build_tree_with_path(4, 2, (1, 2, 3, 3, 2, 2), variant, name=f"figure-1-T_{{X,{variant}}}")
