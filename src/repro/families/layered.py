"""Part 1 of Section 4.1: the layer graphs L_0, ..., L_k.

``L_0`` is a single node; ``L_1`` is a clique on µ nodes; for j >= 1,
``L_{2j}`` consists of two port-labeled full µ-ary trees of height j whose
leaves are identified pairwise (the *middle* nodes), and ``L_{2j+1}`` of two
such trees whose corresponding leaves are joined by an edge.  Figure 4 of the
paper shows the first six layer graphs for µ = 3; Fact 4.1 gives their sizes.

Nodes of a layer graph are addressed exactly as in the paper: ``v^m_b(σ)`` is
the node reached from root ``r^m_b`` by following the child-port sequence σ.
For even layers the two addresses of an identified middle node resolve to the
same handle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..portgraph.builder import GraphBuilder
from ..portgraph.graph import PortLabeledGraph

__all__ = ["LayerHandles", "layer_size", "add_layer", "build_layer_graph"]

Address = Tuple[int, Tuple[int, ...]]


def layer_size(mu: int, m: int) -> int:
    """Number of nodes of L_m (Fact 4.1)."""
    if mu < 2 or m < 0:
        raise ValueError("layer graphs require µ >= 2 and m >= 0")
    if m == 0:
        return 1
    if m == 1:
        return mu
    j = m // 2
    if m % 2 == 0:
        return (mu ** (j + 1) + mu**j - 2) // (mu - 1)
    return (2 * mu ** (j + 1) - 2) // (mu - 1)


@dataclass
class LayerHandles:
    """Handles and addressing of one layer graph embedded in a builder."""

    mu: int
    index: int
    #: tree height j (0 for L_0 and L_1)
    height: int
    #: node handles by address (b, σ); for identified middles both addresses are present
    by_address: Dict[Address, int]
    #: all node handles of the layer, without duplicates
    nodes: List[int] = field(default_factory=list)

    def root(self, b: int) -> int:
        """The root r^m_b (for m >= 2); L_0's single node for b = 0."""
        return self.by_address[(b, ())]

    def node(self, b: int, sigma: Sequence[int]) -> int:
        """The node v^m_b(σ)."""
        return self.by_address[(b, tuple(sigma))]

    def clique_node(self, i: int) -> int:
        """The i-th node of L_1 (the node the paper calls v^0_0(i))."""
        if self.index != 1:
            raise ValueError("clique_node is only defined for L_1")
        return self.nodes[i]

    def sequences_at_depth(self, depth: int) -> Iterator[Tuple[int, ...]]:
        """All child-port sequences of the given length (in lexicographic order)."""
        yield from itertools.product(range(self.mu), repeat=depth)

    def middle_depth(self) -> int:
        """Depth of the middle nodes (the tree height)."""
        return self.height

    def middle_nodes(self) -> List[int]:
        """The middle nodes (identified for even layers, both sides for odd layers)."""
        depth = self.height
        out: List[int] = []
        seen = set()
        for b in (0, 1):
            for sigma in self.sequences_at_depth(depth):
                handle = self.by_address.get((b, sigma))
                if handle is not None and handle not in seen:
                    seen.add(handle)
                    out.append(handle)
        return out

    def ordered_nodes(self) -> List[int]:
        """Nodes ordered by the lexicographic order of (b,) + σ, without duplicates.

        This is the w_1, ..., w_z ordering Part 4 of the construction uses for
        the layer-k nodes.
        """
        out: List[int] = []
        seen = set()
        for address in sorted(self.by_address):
            handle = self.by_address[address]
            if handle not in seen:
                seen.add(handle)
                out.append(handle)
        return out


def _add_tree_half(
    builder: GraphBuilder,
    mu: int,
    height: int,
    b: int,
    by_address: Dict[Address, int],
    nodes: List[int],
    *,
    shared_leaves: Optional[Dict[Tuple[int, ...], int]] = None,
) -> None:
    """Add one copy of T^height for side ``b``.

    If ``shared_leaves`` is given (even layers, b = 1), the deepest level is
    not created: the existing nodes are reused and connected with port 1 on
    their side, realising the leaf identification of L_{2j}.
    """
    root = builder.add_node()
    by_address[(b, ())] = root
    nodes.append(root)
    frontier: List[Tuple[int, Tuple[int, ...]]] = [(root, ())]
    for depth in range(height):
        is_last_level = depth == height - 1
        next_frontier: List[Tuple[int, Tuple[int, ...]]] = []
        for parent, sigma in frontier:
            for port in range(mu):
                address = sigma + (port,)
                if is_last_level and shared_leaves is not None:
                    child = shared_leaves[address]
                    # Identified middle: port 1 towards the T_1 parent.
                    builder.add_edge(parent, port, child, 1)
                else:
                    child = builder.add_node()
                    nodes.append(child)
                    child_port = 0 if is_last_level else mu
                    builder.add_edge(parent, port, child, child_port)
                by_address[(b, address)] = child
                next_frontier.append((child, address))
        frontier = next_frontier


def add_layer(builder: GraphBuilder, mu: int, m: int) -> LayerHandles:
    """Add the layer graph L_m to ``builder`` and return its handles."""
    if mu < 2 or m < 0:
        raise ValueError("layer graphs require µ >= 2 and m >= 0")
    by_address: Dict[Address, int] = {}
    nodes: List[int] = []

    if m == 0:
        node = builder.add_node()
        by_address[(0, ())] = node
        nodes.append(node)
        return LayerHandles(mu=mu, index=0, height=0, by_address=by_address, nodes=nodes)

    if m == 1:
        clique = builder.add_nodes(mu)
        nodes.extend(clique)
        # canonical clique labeling: node i gives port t to its t-th other node
        # in increasing handle order
        for a_index, a in enumerate(clique):
            for b_index in range(a_index + 1, mu):
                b = clique[b_index]
                port_at_a = b_index - 1
                port_at_b = a_index
                builder.add_edge(a, port_at_a, b, port_at_b)
        for i, node in enumerate(clique):
            by_address[(0, (i,))] = node
        return LayerHandles(mu=mu, index=1, height=0, by_address=by_address, nodes=nodes)

    height = m // 2
    if m % 2 == 0:
        # two trees with identified leaves
        _add_tree_half(builder, mu, height, 0, by_address, nodes)
        shared = {
            sigma: by_address[(0, sigma)]
            for sigma in itertools.product(range(mu), repeat=height)
        }
        _add_tree_half(builder, mu, height, 1, by_address, nodes, shared_leaves=shared)
    else:
        _add_tree_half(builder, mu, height, 0, by_address, nodes)
        _add_tree_half(builder, mu, height, 1, by_address, nodes)
        # join corresponding leaves with an edge labeled 1 at both ends
        for sigma in itertools.product(range(mu), repeat=height):
            builder.add_edge(by_address[(0, sigma)], 1, by_address[(1, sigma)], 1)
    return LayerHandles(mu=mu, index=m, height=height, by_address=by_address, nodes=nodes)


def build_layer_graph(mu: int, m: int, *, name: str = "") -> Tuple[PortLabeledGraph, LayerHandles]:
    """Build L_m as a standalone graph (used to verify Figure 4 / Fact 4.1)."""
    builder = GraphBuilder(name=name or f"L_{m}(µ={mu})")
    handles = add_layer(builder, mu, m)
    graph = builder.build()
    return graph, handles
