"""Canonical encodings of views.

Views need to be turned into data in two places of the paper:

* Theorem 2.2's oracle encodes the augmented truncated view of the chosen
  node as a *binary string* given to every node as advice, and the nodes
  decode it again;
* the constructions repeatedly pick the node whose view is
  *lexicographically smallest*, which requires a total order on views.

A view is first flattened into a sequence of non-negative integer *symbols*
(height, then a preorder traversal emitting ``degree`` and, per child,
``out_port, in_port``).  The flattening is uniquely decodable because every
internal node of an augmented truncated view of height ``h`` has exactly
``degree`` children and every frontier node sits at depth exactly ``h``.
Symbol sequences compare lexicographically (giving the total order), and
:mod:`repro.advice.bitstrings` turns them into actual bit strings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..portgraph.graph import PortLabeledGraph
from .view_tree import ViewNode, augmented_view

__all__ = [
    "view_to_symbols",
    "view_from_symbols",
    "view_key",
    "compare_views",
    "lexicographically_smallest_view",
    "augmented_view_key",
]


def view_to_symbols(view: ViewNode) -> Tuple[int, ...]:
    """Flatten an augmented truncated view into a decodable symbol sequence.

    The first symbol is the height ``h``; the rest is a preorder traversal.
    Raises ``ValueError`` for plain (non-augmented) views, whose frontier
    nodes carry no degree and therefore cannot be re-expanded on decode.
    """
    height = view.height
    symbols: List[int] = [height]

    def emit(node: ViewNode, level: int) -> None:
        if node.degree is None:
            raise ValueError("only augmented views (with frontier degrees) can be encoded")
        symbols.append(node.degree)
        if level == height:
            if node.children:
                raise ValueError("malformed view: frontier node has children")
            return
        if len(node.children) != node.degree:
            raise ValueError(
                "malformed view: internal node has "
                f"{len(node.children)} children but degree {node.degree}"
            )
        for p, q, child in node.children:
            symbols.append(p)
            symbols.append(q)
            emit(child, level + 1)

    emit(view, 0)
    return tuple(symbols)


def view_from_symbols(symbols: Sequence[int]) -> ViewNode:
    """Rebuild an augmented truncated view from :func:`view_to_symbols` output."""
    if not symbols:
        raise ValueError("empty symbol sequence")
    height = symbols[0]
    position = 1

    def parse(level: int) -> ViewNode:
        nonlocal position
        degree = symbols[position]
        position += 1
        if level == height:
            return ViewNode(degree)
        children = []
        for _ in range(degree):
            out_port = symbols[position]
            in_port = symbols[position + 1]
            position += 2
            children.append((out_port, in_port, parse(level + 1)))
        return ViewNode(degree, tuple(children))

    view = parse(0)
    if position != len(symbols):
        raise ValueError("trailing symbols after decoding a view")
    return view


def view_key(view: ViewNode) -> Tuple[int, ...]:
    """Canonical comparable key of a view (its flat canonical form)."""
    return view.canonical_key()


def augmented_view_key(graph: PortLabeledGraph, node: int, depth: int) -> Tuple[int, ...]:
    """Canonical key of ``B^depth(node)`` without keeping the tree around."""
    return augmented_view(graph, node, depth).canonical_key()


def compare_views(first: ViewNode, second: ViewNode) -> int:
    """Three-way lexicographic comparison of two views (-1, 0, +1)."""
    a, b = first.canonical_key(), second.canonical_key()
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def lexicographically_smallest_view(views: Iterable[ViewNode]) -> Optional[ViewNode]:
    """The lexicographically smallest of the given views (``None`` if empty)."""
    best: Optional[ViewNode] = None
    best_key: Optional[Tuple[int, ...]] = None
    for view in views:
        key = view.canonical_key()
        if best_key is None or key < best_key:
            best, best_key = view, key
    return best
