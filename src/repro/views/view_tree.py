"""Explicit (truncated) views of nodes in port-labeled graphs.

The *view* from a node ``v`` (Yamashita--Kameda) is the infinite rooted tree
of all finite paths of ``G`` starting at ``v``, where each tree edge carries
the pair of port numbers of the traversed graph edge.  The *truncated view*
``V^h(v)`` is its truncation to depth ``h``; the *augmented truncated view*
``B^h(v)`` additionally labels every tree node with the degree of the
underlying graph node.  The paper's key modelling fact is that the
information a node acquires after ``r`` rounds of the LOCAL model is exactly
``B^r(v)``, so every deterministic decision is a function of ``B^r(v)`` (plus
any advice).

This module materialises views as :class:`ViewNode` trees.  Materialised
views are used where the paper manipulates views as objects: encoding a view
into an advice string (Theorem 2.2), comparing views across *different*
graphs (Lemmas 2.8, 4.10), and choosing the lexicographically smallest view.
For bulk "are the views of u and v equal inside one graph?" queries, use the
much faster partition refinement in :mod:`repro.views.refinement`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..portgraph.graph import PortLabeledGraph

__all__ = ["ViewNode", "truncated_view", "augmented_view", "view_of_leaf_degrees"]


class ViewNode:
    """A node of a (truncated) view tree.

    Attributes
    ----------
    degree:
        Degree of the underlying graph node, or ``None`` for an unlabeled
        frontier node of a plain (non-augmented) truncated view.
    children:
        Tuple, in increasing order of outgoing port, of
        ``(out_port, in_port, child)`` triples.  A frontier node has no
        children.
    """

    __slots__ = ("degree", "children")

    def __init__(
        self,
        degree: Optional[int],
        children: Tuple[Tuple[int, int, "ViewNode"], ...] = (),
    ) -> None:
        self.degree = degree
        self.children = children

    # -- structure ------------------------------------------------------- #
    @property
    def height(self) -> int:
        """Depth of the tree below this node."""
        if not self.children:
            return 0
        return 1 + max(child.height for _p, _q, child in self.children)

    @property
    def num_tree_nodes(self) -> int:
        """Total number of nodes in this view tree."""
        return 1 + sum(child.num_tree_nodes for _p, _q, child in self.children)

    @property
    def num_tree_edges(self) -> int:
        """Total number of edges in this view tree."""
        return self.num_tree_nodes - 1

    def child_by_port(self, port: int) -> Tuple[int, "ViewNode"]:
        """Return ``(in_port, child)`` for the child reached via outgoing ``port``."""
        for p, q, child in self.children:
            if p == port:
                return q, child
        raise KeyError(f"no child on port {port}")

    def paths(self) -> Iterator[Tuple[Tuple[int, int], ...]]:
        """Iterate over all root-to-leaf port-pair sequences of the view tree."""
        if not self.children:
            yield ()
            return
        for p, q, child in self.children:
            for suffix in child.paths():
                yield ((p, q),) + suffix

    # -- canonical form --------------------------------------------------- #
    def canonical_key(self) -> Tuple[int, ...]:
        """A flat integer tuple uniquely encoding this view (see :mod:`repro.views.encoding`).

        Equal views produce equal keys; the lexicographic order of keys is the
        total order used when the paper asks for the "lexicographically
        smallest" view.
        """
        out: List[int] = []
        self._emit(out)
        return tuple(out)

    def _emit(self, out: List[int]) -> None:
        out.append(-1 if self.degree is None else self.degree)
        for p, q, child in self.children:
            out.append(p)
            out.append(q)
            child._emit(out)

    # -- dunder ------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewNode):
            return NotImplemented
        if self.degree != other.degree or len(self.children) != len(other.children):
            return False
        for (p1, q1, c1), (p2, q2, c2) in zip(self.children, other.children):
            if p1 != p2 or q1 != q2 or c1 != c2:
                return False
        return True

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ViewNode degree={self.degree} height={self.height} nodes={self.num_tree_nodes}>"


def augmented_view(graph: PortLabeledGraph, node: int, depth: int) -> ViewNode:
    """The augmented truncated view ``B^depth(node)``.

    Every tree node is labeled with the degree of its underlying graph node
    (in particular the frontier nodes, which is what "augmented" adds).
    Shared subproblems ``(graph node, remaining depth)`` are memoised, so the
    cost is O(#distinct subproblems x Δ) rather than the size of the tree.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    memo: Dict[Tuple[int, int], ViewNode] = {}

    def build(v: int, h: int) -> ViewNode:
        key = (v, h)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if h == 0:
            result = ViewNode(graph.degree(v))
        else:
            children = tuple(
                (p, graph.endpoint(v, p)[1], build(graph.endpoint(v, p)[0], h - 1))
                for p in graph.ports(v)
            )
            result = ViewNode(graph.degree(v), children)
        memo[key] = result
        return result

    return build(node, depth)


def truncated_view(graph: PortLabeledGraph, node: int, depth: int) -> ViewNode:
    """The plain truncated view ``V^depth(node)`` (frontier nodes unlabeled)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    memo: Dict[Tuple[int, int], ViewNode] = {}

    def build(v: int, h: int) -> ViewNode:
        key = (v, h)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if h == 0:
            result = ViewNode(None)
        else:
            children = tuple(
                (p, graph.endpoint(v, p)[1], build(graph.endpoint(v, p)[0], h - 1))
                for p in graph.ports(v)
            )
            result = ViewNode(graph.degree(v), children)
        memo[key] = result
        return result

    return build(node, depth)


def view_of_leaf_degrees(view: ViewNode) -> List[int]:
    """Degrees carried by the frontier (deepest) nodes of an augmented view, in path order."""
    height = view.height
    out: List[int] = []

    def walk(node: ViewNode, level: int) -> None:
        if level == height:
            if node.degree is not None:
                out.append(node.degree)
            return
        for _p, _q, child in node.children:
            walk(child, level + 1)

    walk(view, 0)
    return out
