"""Convenience view-comparison queries.

Thin wrappers over :mod:`repro.views.refinement` (for queries inside a single
graph) and :mod:`repro.views.view_tree` (for queries *across* graphs, where
partition refinement does not apply because colours are only canonical within
one graph).  The cross-graph comparisons are exactly what the paper's
indistinguishability lemmas assert (e.g. Lemma 2.8: the view of ``r_{j,b}``
is the same in ``G_α`` and ``G_β``).
"""

from __future__ import annotations

from typing import List, Optional

from ..portgraph.graph import PortLabeledGraph
from .refinement import ViewRefinement
from .view_tree import augmented_view

__all__ = [
    "views_equal",
    "views_equal_across_graphs",
    "find_twin",
    "unique_view_nodes",
    "all_nodes_have_twins",
    "distinguishing_depth",
]


def views_equal(graph: PortLabeledGraph, u: int, v: int, depth: int) -> bool:
    """Whether ``B^depth(u) = B^depth(v)`` within one graph."""
    return ViewRefinement(graph).views_equal(u, v, depth)


def views_equal_across_graphs(
    first: PortLabeledGraph,
    node_in_first: int,
    second: PortLabeledGraph,
    node_in_second: int,
    depth: int,
) -> bool:
    """Whether ``B^depth`` of a node of one graph equals that of a node of another graph."""
    view_a = augmented_view(first, node_in_first, depth)
    view_b = augmented_view(second, node_in_second, depth)
    return view_a.canonical_key() == view_b.canonical_key()


def find_twin(
    graph: PortLabeledGraph,
    node: int,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> Optional[int]:
    """Another node with the same ``B^depth`` as ``node`` (or ``None`` if the view is unique)."""
    refinement = refinement or ViewRefinement(graph)
    return refinement.twin_of(node, depth)


def unique_view_nodes(
    graph: PortLabeledGraph,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> List[int]:
    """All nodes whose ``B^depth`` is unique in the graph."""
    refinement = refinement or ViewRefinement(graph)
    return refinement.unique_nodes(depth)


def all_nodes_have_twins(
    graph: PortLabeledGraph,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> bool:
    """Whether *no* node has a unique ``B^depth`` (the lower-bound lemmas' conclusion)."""
    refinement = refinement or ViewRefinement(graph)
    return not refinement.unique_nodes(depth)


def distinguishing_depth(graph: PortLabeledGraph, u: int, v: int) -> Optional[int]:
    """Smallest depth at which the views of ``u`` and ``v`` differ (``None`` if identical forever)."""
    return ViewRefinement(graph).distinguishing_depth(u, v)
