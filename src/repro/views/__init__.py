"""Views of anonymous port-labeled networks.

Implements the central notion of the paper: the (augmented, truncated) view
``B^h(v)`` a node acquires after ``h`` rounds of the LOCAL model, both as an
explicit tree (:mod:`repro.views.view_tree`) and through fast partition
refinement of view-equivalence classes (:mod:`repro.views.refinement`).
"""

from .comparison import (
    all_nodes_have_twins,
    distinguishing_depth,
    find_twin,
    unique_view_nodes,
    views_equal,
    views_equal_across_graphs,
)
from .encoding import (
    augmented_view_key,
    compare_views,
    lexicographically_smallest_view,
    view_from_symbols,
    view_key,
    view_to_symbols,
)
from .refinement import ViewRefinement, refine_views
from .view_tree import ViewNode, augmented_view, truncated_view, view_of_leaf_degrees

__all__ = [
    "ViewNode",
    "augmented_view",
    "truncated_view",
    "view_of_leaf_degrees",
    "ViewRefinement",
    "refine_views",
    "view_to_symbols",
    "view_from_symbols",
    "view_key",
    "augmented_view_key",
    "compare_views",
    "lexicographically_smallest_view",
    "views_equal",
    "views_equal_across_graphs",
    "find_twin",
    "unique_view_nodes",
    "all_nodes_have_twins",
    "distinguishing_depth",
]
