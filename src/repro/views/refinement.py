"""Partition refinement: fast computation of view-equivalence classes.

For a port-labeled graph, two nodes satisfy ``B^h(u) = B^h(v)`` exactly when
they end up in the same class of the following refinement process:

* depth 0: nodes are classed by their degree;
* depth h: nodes are classed by the pair (their depth-``h-1`` class, the
  port-ordered tuple of ``(incoming port, neighbour's depth-(h-1) class)``).

This is the port-labeled analogue of colour refinement / the degree
refinement used by Yamashita and Kameda, and it decides truncated-view
equality in O((n + m) · h) time instead of materialising view trees of size
Δ^h.  Because refinement only ever splits classes, the process reaches a
fixpoint after at most ``n - 1`` refinements; classes of the fixpoint are
exactly the classes of equality of *infinite* views, which is what
feasibility of leader election depends on.

The :class:`ViewRefinement` object computes depths lazily and caches them, so
a single instance can serve feasibility checks, ψ_S / ψ_PE computation and
all the "does this node have a twin?" queries of the lower-bound lemmas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..portgraph.graph import PortLabeledGraph

__all__ = ["ViewRefinement", "refine_views"]


class ViewRefinement:
    """Lazy, cached view-equivalence classes of one graph at every depth."""

    def __init__(self, graph: PortLabeledGraph) -> None:
        self._graph = graph
        initial = [graph.degree(v) for v in graph.nodes()]
        self._colors: List[List[int]] = [self._canonicalise(initial)]
        self._num_classes: List[int] = [len(set(self._colors[0]))]
        self._stable_depth: Optional[int] = None
        self._passes = 0
        if graph.num_nodes == 1 or self._num_classes[0] == graph.num_nodes:
            self._stable_depth = 0

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> PortLabeledGraph:
        return self._graph

    @property
    def stable_depth(self) -> Optional[int]:
        """Smallest depth whose partition equals the infinite-view partition (if computed)."""
        return self._stable_depth

    @property
    def passes(self) -> int:
        """Number of refinement passes performed so far.

        Each pass is one O(n + m) sweep deepening the partition by one level.
        The counter only ever grows while new depths are being computed, so
        the runner's :class:`~repro.runner.cache.RefinementCache` uses it to
        certify that a repeated sweep re-used cached partitions instead of
        refining again.
        """
        return self._passes

    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonicalise(colors: Sequence[int]) -> List[int]:
        """Renumber colours to 0..c-1 in order of first appearance."""
        mapping: Dict[int, int] = {}
        out: List[int] = []
        for c in colors:
            if c not in mapping:
                mapping[c] = len(mapping)
            out.append(mapping[c])
        return out

    def _refine_once(self) -> None:
        graph = self._graph
        self._passes += 1
        previous = self._colors[-1]
        signatures: Dict[Tuple, int] = {}
        new_colors: List[int] = []
        for v in graph.nodes():
            signature = (
                previous[v],
                tuple((q, previous[u]) for u, q in graph.adjacency(v)),
            )
            color = signatures.get(signature)
            if color is None:
                color = len(signatures)
                signatures[signature] = color
            new_colors.append(color)
        self._colors.append(new_colors)
        self._num_classes.append(len(signatures))
        depth = len(self._colors) - 1
        if self._stable_depth is None and self._num_classes[depth] == self._num_classes[depth - 1]:
            # Refinement only splits classes, so equal class counts mean the
            # partition is unchanged and has reached its fixpoint.
            self._stable_depth = depth - 1

    def _ensure_depth(self, depth: int) -> int:
        """Compute colours up to ``depth`` (or to the fixpoint, whichever is first).

        Returns the effective depth at which to read colours: ``depth`` itself
        or the stable depth if that is smaller.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        while len(self._colors) <= depth and self._stable_depth is None:
            self._refine_once()
        if self._stable_depth is not None and depth > self._stable_depth:
            return self._stable_depth
        return depth

    def ensure_stable(self) -> int:
        """Refine to the fixpoint and return the stable depth."""
        while self._stable_depth is None:
            self._refine_once()
        return self._stable_depth

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def colors(self, depth: int) -> List[int]:
        """Colour of every node at ``depth`` (same colour <=> equal ``B^depth``)."""
        effective = self._ensure_depth(depth)
        return list(self._colors[effective])

    def color(self, node: int, depth: int) -> int:
        effective = self._ensure_depth(depth)
        return self._colors[effective][node]

    def num_classes(self, depth: int) -> int:
        """Number of distinct ``B^depth`` values among the nodes."""
        effective = self._ensure_depth(depth)
        return self._num_classes[effective]

    def classes(self, depth: int) -> Dict[int, List[int]]:
        """Mapping colour -> list of nodes with that colour at ``depth``."""
        effective = self._ensure_depth(depth)
        out: Dict[int, List[int]] = {}
        for v, c in enumerate(self._colors[effective]):
            out.setdefault(c, []).append(v)
        return out

    def class_of(self, node: int, depth: int) -> List[int]:
        """All nodes whose ``B^depth`` equals that of ``node`` (including ``node``)."""
        effective = self._ensure_depth(depth)
        target = self._colors[effective][node]
        return [v for v, c in enumerate(self._colors[effective]) if c == target]

    def views_equal(self, u: int, v: int, depth: int) -> bool:
        """Whether ``B^depth(u) = B^depth(v)``."""
        effective = self._ensure_depth(depth)
        return self._colors[effective][u] == self._colors[effective][v]

    def has_unique_view(self, node: int, depth: int) -> bool:
        """Whether no other node shares ``node``'s ``B^depth``."""
        return len(self.class_of(node, depth)) == 1

    def unique_nodes(self, depth: int) -> List[int]:
        """Nodes whose ``B^depth`` is unique in the graph."""
        effective = self._ensure_depth(depth)
        counts: Dict[int, int] = {}
        for c in self._colors[effective]:
            counts[c] = counts.get(c, 0) + 1
        return [v for v, c in enumerate(self._colors[effective]) if counts[c] == 1]

    def twin_of(self, node: int, depth: int) -> Optional[int]:
        """Some other node with the same ``B^depth`` as ``node``, or ``None``."""
        for v in self.class_of(node, depth):
            if v != node:
                return v
        return None

    def is_discrete(self) -> bool:
        """Whether the fixpoint partition is discrete (all infinite views distinct)."""
        return self.num_classes(self.ensure_stable()) == self._graph.num_nodes

    def first_depth_with_unique_node(self, max_depth: Optional[int] = None) -> Optional[int]:
        """Smallest depth at which some node has a unique view (``None`` if never).

        This is exactly ψ_S(G) when the graph is feasible (Proposition 2.1
        plus the map-based algorithm of Theorem 2.2's proof).
        """
        depth = 0
        while True:
            effective = self._ensure_depth(depth)
            if self.unique_nodes(effective):
                return depth
            if self._stable_depth is not None and depth >= self._stable_depth:
                return None
            if max_depth is not None and depth >= max_depth:
                return None
            depth += 1

    def distinguishing_depth(self, u: int, v: int) -> Optional[int]:
        """Smallest depth at which the views of ``u`` and ``v`` differ (``None`` if never)."""
        depth = 0
        while True:
            if not self.views_equal(u, v, depth):
                return depth
            if self._stable_depth is not None and depth >= self._stable_depth:
                return None
            depth += 1


def refine_views(graph: PortLabeledGraph) -> ViewRefinement:
    """Create a :class:`ViewRefinement` for ``graph`` (computation happens lazily)."""
    return ViewRefinement(graph)
