"""Partition refinement: fast computation of view-equivalence classes.

For a port-labeled graph, two nodes satisfy ``B^h(u) = B^h(v)`` exactly when
they end up in the same class of the following refinement process:

* depth 0: nodes are classed by their degree;
* depth h: nodes are classed by the pair (their depth-``h-1`` class, the
  port-ordered tuple of ``(incoming port, neighbour's depth-(h-1) class)``).

This is the port-labeled analogue of colour refinement / the degree
refinement used by Yamashita and Kameda, and it decides truncated-view
equality in O((n + m) · h) time instead of materialising view trees of size
Δ^h.  Because refinement only ever splits classes, the process reaches a
fixpoint after at most ``n - 1`` refinements; classes of the fixpoint are
exactly the classes of equality of *infinite* views, which is what
feasibility of leader election depends on.

Since the kernel refactor the refinement itself runs on the graph's CSR view
(:mod:`repro.kernel.refine`): passes are *incremental* — after the first
sweep only nodes adjacent to classes that split are re-signatured — and the
engine maintains inverse indexes (class → members, per-depth unique-node
lists), so :meth:`ViewRefinement.class_of`, :meth:`ViewRefinement.unique_nodes`,
:meth:`ViewRefinement.twin_of` and
:meth:`ViewRefinement.first_depth_with_unique_node` are O(1)/O(output)
lookups instead of O(n) scans per call.  The partitions (and even the
canonical colour numbers) are identical to the classic full-sweep
refinement's.

The :class:`ViewRefinement` object computes depths lazily and caches them, so
a single instance can serve feasibility checks, ψ_S / ψ_PE computation and
all the "does this node have a twin?" queries of the lower-bound lemmas.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.refine import CSRPartitionRefinement
from ..portgraph.graph import PortLabeledGraph

__all__ = ["ViewRefinement", "refine_views"]


class ViewRefinement:
    """Lazy, cached view-equivalence classes of one graph at every depth."""

    def __init__(self, graph: PortLabeledGraph) -> None:
        self._graph = graph
        # the engine is memoised on the graph instance, so the fingerprint
        # (which refines to the fixpoint) and every ViewRefinement of the
        # same instance share one set of partitions
        self._engine: CSRPartitionRefinement = graph.refinement_engine()

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> PortLabeledGraph:
        return self._graph

    @property
    def stable_depth(self) -> Optional[int]:
        """Smallest depth whose partition equals the infinite-view partition (if computed)."""
        return self._engine.stable_depth

    @property
    def passes(self) -> int:
        """Number of refinement passes performed so far.

        Each pass deepens the partition by one level (incrementally: only the
        neighbourhood of the previous pass's splits is re-signatured).  The
        counter only ever grows while new depths are being computed, so the
        runner's :class:`~repro.runner.cache.RefinementCache` uses it to
        certify that a repeated sweep re-used cached partitions instead of
        refining again.
        """
        return self._engine.passes

    # ------------------------------------------------------------------ #
    def _ensure_depth(self, depth: int) -> int:
        """Compute colours up to ``depth`` (or to the fixpoint, whichever is first).

        Returns the effective depth at which to read colours: ``depth`` itself
        or the stable depth if that is smaller.
        """
        return self._engine.ensure_depth(depth)

    def ensure_stable(self) -> int:
        """Refine to the fixpoint and return the stable depth."""
        return self._engine.ensure_stable()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def colors(self, depth: int) -> List[int]:
        """Colour of every node at ``depth`` (same colour <=> equal ``B^depth``)."""
        effective = self._ensure_depth(depth)
        return list(self._engine.colors_at(effective))

    def color(self, node: int, depth: int) -> int:
        effective = self._ensure_depth(depth)
        return self._engine.colors_at(effective)[node]

    def num_classes(self, depth: int) -> int:
        """Number of distinct ``B^depth`` values among the nodes."""
        effective = self._ensure_depth(depth)
        return self._engine.num_classes_at(effective)

    def classes(self, depth: int) -> Dict[int, List[int]]:
        """Mapping colour -> list of nodes with that colour at ``depth``."""
        effective = self._ensure_depth(depth)
        members = self._engine.members_at(effective)
        return {c: list(group) for c, group in enumerate(members)}

    def class_of(self, node: int, depth: int) -> List[int]:
        """All nodes whose ``B^depth`` equals that of ``node`` (including ``node``)."""
        effective = self._ensure_depth(depth)
        return list(self._engine.class_members(node, effective))

    def views_equal(self, u: int, v: int, depth: int) -> bool:
        """Whether ``B^depth(u) = B^depth(v)``."""
        effective = self._ensure_depth(depth)
        colors = self._engine.colors_at(effective)
        return colors[u] == colors[v]

    def has_unique_view(self, node: int, depth: int) -> bool:
        """Whether no other node shares ``node``'s ``B^depth``."""
        effective = self._ensure_depth(depth)
        return len(self._engine.class_members(node, effective)) == 1

    def unique_nodes(self, depth: int) -> List[int]:
        """Nodes whose ``B^depth`` is unique in the graph."""
        effective = self._ensure_depth(depth)
        return list(self._engine.unique_at(effective))

    def twin_of(self, node: int, depth: int) -> Optional[int]:
        """Some other node with the same ``B^depth`` as ``node``, or ``None``."""
        effective = self._ensure_depth(depth)
        group = self._engine.class_members(node, effective)
        if len(group) == 1:
            return None
        first = group[0]
        return group[1] if first == node else first

    def is_discrete(self) -> bool:
        """Whether the fixpoint partition is discrete (all infinite views distinct)."""
        return self.num_classes(self.ensure_stable()) == self._graph.num_nodes

    def first_depth_with_unique_node(self, max_depth: Optional[int] = None) -> Optional[int]:
        """Smallest depth at which some node has a unique view (``None`` if never).

        This is exactly ψ_S(G) when the graph is feasible (Proposition 2.1
        plus the map-based algorithm of Theorem 2.2's proof).
        """
        depth = 0
        while True:
            effective = self._ensure_depth(depth)
            if self._engine.unique_at(effective):
                return depth
            stable = self._engine.stable_depth
            if stable is not None and depth >= stable:
                return None
            if max_depth is not None and depth >= max_depth:
                return None
            depth += 1

    def distinguishing_depth(self, u: int, v: int) -> Optional[int]:
        """Smallest depth at which the views of ``u`` and ``v`` differ (``None`` if never)."""
        depth = 0
        while True:
            if not self.views_equal(u, v, depth):
                return depth
            stable = self._engine.stable_depth
            if stable is not None and depth >= stable:
                return None
            depth += 1


def refine_views(graph: PortLabeledGraph) -> ViewRefinement:
    """Create a :class:`ViewRefinement` for ``graph`` (computation happens lazily)."""
    return ViewRefinement(graph)
