"""Minimal asyncio HTTP/1.1 front end for :class:`~repro.service.service.ElectionService`.

Standard library only (``asyncio`` streams; no web framework), because the
container the reproduction targets has no HTTP dependencies.  The protocol
surface is deliberately small and JSON-only:

* ``POST /election`` -- submit a graph (adjacency dict or generator spec)
  and get feasibility / ψ_Z indices / advice back;
* ``POST /elections`` -- submit a *batch* (item list, NDJSON lines or a
  declarative sweep spec) and stream per-item results back as NDJSON with a
  bounded in-flight window (see :mod:`repro.service.batch`);
* ``GET /sweeps`` / ``GET /sweeps/<id>`` -- progress/resume records of
  batches, persisted alongside the artifact store;
* ``GET /stats`` -- counters of every layer (service, batch coordinator,
  refinement cache, artifact store, joint searches), plus the recent-trace
  ring and a ``slowest`` request table;
* ``GET /trace/<id>`` -- the span tree of one recent request (parse,
  coalesce/queue waits, compute, emit -- shard-side stages included on the
  process backend);
* ``GET /metrics`` -- Prometheus text exposition (request/batch/shard
  counters, per-shard heat, window occupancy, queue depths, latency
  histograms, recorder drop counters);
* ``GET /healthz`` -- liveness.

Every request is assigned a **trace id** (a server nonce plus a serial):
it rides on every JSON response (as ``trace_id``) and every NDJSON line of
a batch stream, it keys the span tree served by ``GET /trace/<id>``, and
the last 64 traces are echoed by ``GET /stats``, so one bad stream in
a stress run or a production incident is correlatable with the server's
own record of serving it.  Requests slower than a configurable threshold
are additionally logged to stderr with their trace id.

Connections are handled one request at a time and closed after the response
(``Connection: close``); request bodies are capped; single-query responses
are ``application/json`` with sorted keys and batch responses are
``application/x-ndjson`` terminated by connection close, so both are
byte-deterministic given deterministic payloads (batches modulo the
documented volatile fields, which the stream omits -- the trace id being
volatile by design).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import re
import sys
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..kernel.backend import active_backend as _active_kernel_backend
from ..obs import default_recorder
from ..obs import span as obs_span
from .batch import BatchCoordinator
from .metrics import MetricsRegistry
from .service import ElectionService, ServiceError

__all__ = ["ElectionServer", "run_server"]

#: Maximum accepted request body (bytes); adjacency submissions are compact.
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Seconds a client may take to deliver one full request.
REQUEST_TIMEOUT = 60.0
#: Trace ids remembered for the ``/stats`` echo.
TRACE_RING_SIZE = 64
#: Rows kept in the ``/stats`` ``slowest`` table.
SLOWEST_TABLE_SIZE = 10
#: Default slow-request log threshold (seconds); env override below.
DEFAULT_SLOW_REQUEST_S = 1.0
#: Environment override for the slow-request threshold.
SLOW_REQUEST_ENV_VAR = "REPRO_SLOW_REQUEST_S"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Sweep ids are lowercase-hex content digests; anything else is unknown by
#: construction (and must not reach the filesystem as a path fragment).
_SWEEP_ID_RE = re.compile(r"[0-9a-f]{1,64}")

#: Trace ids are dash-joined lowercase alphanumeric words (server nonces
#: ``abcdef-000001``, CLI roots ``bench-1a2b3c4d``); reject anything else
#: before it is used as a recorder key.
_TRACE_ID_RE = re.compile(r"[0-9a-z]{1,32}(-[0-9a-z]{1,32}){0,4}")

#: The fixed endpoint set, for metric-label normalisation.
_KNOWN_PATHS = frozenset(
    {"/election", "/elections", "/sweeps", "/stats", "/metrics", "/healthz"}
)


def _normalize_path(path: Optional[str]) -> str:
    """A bounded-cardinality metric label for ``path``."""
    if path is None:
        return "<unparsed>"
    if path in _KNOWN_PATHS:
        return path
    if path.startswith("/sweeps/"):
        return "/sweeps/{id}"
    if path.startswith("/trace/"):
        return "/trace/{id}"
    return "<other>"


def _encode_response(status: int, payload: Dict[str, Any]) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _encode_raw(status, body, "application/json")


def _encode_raw(status: int, body: bytes, content_type: str) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request; returns ``(method, path, body)`` or ``None`` on EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ServiceError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            # a header line without a colon used to be stored silently as an
            # empty-valued header under the whole line; reject it instead
            raise ServiceError(400, "malformed header line (expected 'Name: value')")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "").strip() or "0"
    # strict digits only: int() would also accept '-5', '+5' and '1_0',
    # letting a negative or garbage length reach readexactly() as a 500
    if not (raw_length.isascii() and raw_length.isdigit()):
        raise ServiceError(400, "malformed Content-Length")
    content_length = int(raw_length)
    if content_length > MAX_BODY_BYTES:
        raise ServiceError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(content_length) if content_length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, body


class ElectionServer:
    """Owns the listening socket and routes requests into the service."""

    def __init__(
        self,
        service: ElectionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        slow_request_s: Optional[float] = None,
        slow_log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._batch = BatchCoordinator(service)
        # --- tracing -------------------------------------------------- #
        self._trace_nonce = os.urandom(3).hex()
        self._trace_serial = itertools.count(1)
        self._recent_traces: "deque[Dict[str, Any]]" = deque(maxlen=TRACE_RING_SIZE)
        self._slowest: List[Dict[str, Any]] = []
        if slow_request_s is None:
            raw = os.environ.get(SLOW_REQUEST_ENV_VAR, "")
            try:
                slow_request_s = float(raw) if raw else DEFAULT_SLOW_REQUEST_S
            except ValueError:
                slow_request_s = DEFAULT_SLOW_REQUEST_S
        self._slow_request_s = slow_request_s
        self._slow_log = slow_log if slow_log is not None else (
            lambda message: print(message, file=sys.stderr)
        )
        # --- metrics --------------------------------------------------- #
        metrics = MetricsRegistry()
        self._metrics = metrics
        self._requests_total = metrics.counter(
            "repro_requests_total",
            "HTTP requests served, by method, normalised path and status.",
            ("method", "path", "status"),
        )
        self._request_seconds = metrics.histogram(
            "repro_request_seconds",
            "Wall time per request (streams: until the stream finished).",
            ("path",),
        )
        metrics.gauge(
            "repro_service_events",
            "Service-layer counters (queries, coalesced, computed, errors).",
            ("event",),
            callback=lambda: {
                (event,): service.counter(event)
                for event in ("requests", "queries", "coalesced", "computed", "errors")
            },
        )
        metrics.gauge(
            "repro_service_in_flight",
            "Coalescing futures currently unresolved.",
            callback=lambda: service.in_flight,
        )
        metrics.gauge(
            "repro_backend_queue_depth",
            "Computations accepted by the backend but not yet running.",
            callback=service.queue_depth,
        )
        metrics.gauge(
            "repro_backend_concurrency",
            "Computations the backend can genuinely overlap.",
            callback=lambda: service.concurrency,
        )
        metrics.gauge(
            "repro_batch_events",
            "Batch-coordinator counters (batches, items, errors, cancellations).",
            ("event",),
            callback=lambda: {(k,): v for k, v in self._batch.stats().items()},
        )
        metrics.gauge(
            "repro_window_in_flight",
            "Window slots currently held across all running sweeps.",
            callback=self._batch.window_occupancy,
        )
        metrics.gauge(
            "repro_shard_events",
            "Parent-side shard counters (process backend; zero elsewhere).",
            ("event",),
            callback=lambda: {
                (k,): v for k, v in service.backend_telemetry().items()
            },
        )
        metrics.gauge(
            "repro_traces_issued",
            "Trace ids issued since the server started.",
            callback=lambda: self._trace_count,
        )
        metrics.counter(
            "repro_trace_dropped_total",
            "Spans dropped by the bounded trace recorder (ring eviction or per-trace cap).",
            callback=lambda: default_recorder.stats()["dropped"],
        )
        metrics.gauge(
            "repro_trace_spans",
            "Spans currently retained across the recorder's trace ring.",
            callback=lambda: default_recorder.stats()["spans"],
        )
        metrics.counter(
            "repro_shard_busy_seconds_total",
            "Seconds each process shard spent executing jobs (process backend only).",
            ("shard",),
            callback=lambda: {
                (str(row["shard"]),): row["busy_seconds"]
                for row in service.backend_heat()
            },
        )
        metrics.counter(
            "repro_shard_tasks_total",
            "Jobs dispatched to each process shard (process backend only).",
            ("shard",),
            callback=lambda: {
                (str(row["shard"]),): row["dispatched"]
                for row in service.backend_heat()
            },
        )
        metrics.gauge(
            "repro_shard_queue_depth",
            "Jobs waiting on each shard's dispatcher queue (process backend only).",
            ("shard",),
            callback=lambda: {
                (str(row["shard"]),): row["queue_depth"]
                for row in service.backend_heat()
            },
        )
        metrics.gauge(
            "repro_search_events",
            "Kernel joint-search counters, aggregated across process shards.",
            ("event",),
            callback=lambda: {
                (event,): value
                for event, value in service.observed_counters()["search"].items()
            },
        )
        metrics.gauge(
            "repro_store_events",
            "Artifact-store counters (hits, spills, rebuilds), aggregated across shards.",
            ("event",),
            callback=lambda: {
                (event,): value
                for event, value in service.observed_counters()["store"].items()
            },
        )
        metrics.gauge(
            "repro_kernel_backend_info",
            "Active kernel compute backend (1 on the active label).",
            ("backend",),
            callback=lambda: {
                (name,): 1 if name == _active_kernel_backend() else 0
                for name in ("python", "numpy")
            },
        )
        if service.store is not None:
            store = service.store
            metrics.gauge(
                "repro_store_records",
                "Records indexed by the artifact-store manifest.",
                callback=lambda: store.stats()["records"],
            )

    def _last_trace_serial(self) -> int:
        return self._trace_count

    _trace_count = 0

    @property
    def service(self) -> ElectionService:
        return self._service

    @property
    def batch(self) -> BatchCoordinator:
        return self._batch

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self._host, self._port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._service.close()

    # ------------------------------------------------------------------ #
    def _new_trace(self) -> str:
        self._trace_count = next(self._trace_serial)
        return f"{self._trace_nonce}-{self._trace_count:06x}"

    def _record_trace(
        self,
        trace: str,
        method: Optional[str],
        path: Optional[str],
        status: Optional[int],
        duration_s: float,
    ) -> None:
        entry = {
            "trace_id": trace,
            "path": _normalize_path(path),
            "status": status or 0,
            "duration_ms": round(duration_s * 1000.0, 3),
        }
        self._recent_traces.append(entry)
        self._slowest.append(dict(entry))
        self._slowest.sort(key=lambda row: -row["duration_ms"])
        del self._slowest[SLOWEST_TABLE_SIZE:]
        if duration_s >= self._slow_request_s:
            self._slow_log(
                f"slow request: {method or '?'} {_normalize_path(path)} "
                f"status={status or 0} duration_ms={entry['duration_ms']} "
                f"trace_id={trace}"
            )

    def trace_ring(self) -> Dict[str, Any]:
        """The ``traces`` section of ``/stats``."""
        recorder = default_recorder.stats()
        return {
            "issued": self._trace_count,
            "recent": list(self._recent_traces),
            "spans": recorder["spans"],
            "dropped": recorder["dropped"],
            "slowest": [dict(row) for row in self._slowest],
        }

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        trace = self._new_trace()
        method: Optional[str] = None
        path: Optional[str] = None
        status_code: Optional[int] = None
        try:
            with obs_span("http_request", trace_id=trace) as root:
                method, path, status_code = await self._serve_request(
                    reader, writer, trace
                )
                if root.recording:
                    root.add_tags(
                        {
                            "method": method or "?",
                            "path": _normalize_path(path),
                            "status": status_code or 0,
                        }
                    )
        except ConnectionResetError:
            pass
        finally:
            duration_s = time.perf_counter() - started
            if method is not None or status_code is not None:
                self._requests_total.inc(
                    method=method or "?",
                    path=_normalize_path(path),
                    status=str(status_code or 0),
                )
                self._request_seconds.observe(duration_s, path=_normalize_path(path))
                self._record_trace(trace, method, path, status_code, duration_s)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, trace: str
    ) -> Tuple[Optional[str], Optional[str], Optional[int]]:
        """Route one request; returns ``(method, path, status)`` for telemetry.

        Runs inside the request's root span, so every stage span recorded
        below (parse, batch stages, dispatch handlers) parents correctly.
        """
        try:
            with obs_span("parse"):
                request = await asyncio.wait_for(_read_request(reader), REQUEST_TIMEOUT)
        except ServiceError as error:
            writer.write(
                _encode_response(
                    error.status, {"error": error.message, "trace_id": trace}
                )
            )
            return None, None, error.status
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            return None, None, None
        if request is None:
            return None, None, None
        method, path, body = request
        self._service.count_request()
        if path == "/elections" and method == "POST":
            return method, path, await self._handle_batch(writer, body, trace)
        if path == "/metrics":
            if method != "GET":
                writer.write(
                    _encode_response(405, {"error": "use GET", "trace_id": trace})
                )
                return method, path, 405
            # off the loop: gauge callbacks may take coordinator locks
            # or read the store manifest
            loop = asyncio.get_running_loop()
            rendered = await loop.run_in_executor(None, self._metrics.render)
            writer.write(
                _encode_raw(200, rendered.encode("utf-8"), MetricsRegistry.CONTENT_TYPE)
            )
            return method, path, 200
        status, payload = await self._dispatch(method, path, body)
        payload["trace_id"] = trace
        writer.write(_encode_response(status, payload))
        return method, path, status

    async def _handle_batch(
        self, writer: asyncio.StreamWriter, body: bytes, trace: str
    ) -> int:
        """Stream one batch as NDJSON (body length unknown; ends at close).

        Parsing happens before the status line goes out, so request-level
        problems (oversized sweep, unknown corpus, malformed envelope) are
        ordinary JSON 400 responses; only a valid batch switches the
        connection into streaming mode.  A client that stops reading stalls
        the emit (bounded window); one that disconnects cancels the sweep.
        Returns the response status for the request metrics.
        """
        try:
            with obs_span("batch_prepare"):
                request = self._batch.prepare(body)
        except ServiceError as error:
            writer.write(
                _encode_response(
                    error.status, {"error": error.message, "trace_id": trace}
                )
            )
            return error.status
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )

        async def emit(line: Dict[str, Any]) -> None:
            writer.write((json.dumps(line, sort_keys=True) + "\n").encode("utf-8"))
            await writer.drain()

        try:
            await self._batch.stream(request, emit, trace=trace)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the coordinator already marked the sweep cancelled
        return 200

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"status": "ok"}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            # off the loop: stats() takes the refinement-cache lock, which a
            # worker thread may hold while decoding a large store record
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(None, self._service.stats)
            payload["batch"] = self._batch.stats()
            payload["traces"] = self.trace_ring()
            return 200, payload
        if path == "/sweeps":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {"sweeps": self._batch.sweep_ids()}
        if path.startswith("/sweeps/"):
            if method != "GET":
                return 405, {"error": "use GET"}
            sweep_id = path[len("/sweeps/"):]
            # ids are hex content digests; reject everything else *before*
            # it can reach the filesystem as a path fragment (a malformed id
            # such as 'x/../y' or 'abc.json/z' used to surface as a 500)
            if not _SWEEP_ID_RE.fullmatch(sweep_id):
                return 404, {"error": f"malformed sweep id {sweep_id!r}"}
            status = self._batch.sweep_status(sweep_id)
            if status is None:
                return 404, {"error": f"unknown sweep {sweep_id!r}"}
            return 200, status
        if path.startswith("/trace/"):
            if method != "GET":
                return 405, {"error": "use GET"}
            trace_id = path[len("/trace/"):]
            # recorder keys are bounded dash-joined words; reject the rest
            # up front so arbitrary client bytes never become lookup keys
            if not _TRACE_ID_RE.fullmatch(trace_id):
                return 404, {"error": f"malformed trace id {trace_id!r}"}
            spans = default_recorder.trace(trace_id)
            if spans is None:
                return 404, {"error": f"unknown trace {trace_id!r}"}
            return 200, {
                "queried": trace_id,
                "span_count": len(spans),
                "spans": default_recorder.tree(trace_id) or [],
            }
        if path == "/elections":
            return 405, {"error": "use POST"}
        if path == "/election":
            if method != "POST":
                return 405, {"error": "use POST"}
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except (json.JSONDecodeError, UnicodeDecodeError):
                return 400, {"error": "request body is not valid JSON"}
            try:
                return 200, await self._service.query(payload)
            except ServiceError as error:
                return error.status, {"error": error.message}
            except Exception as error:  # pragma: no cover - defensive
                return 500, {"error": f"internal error: {type(error).__name__}: {error}"}
        return 404, {"error": f"unknown path {path!r}"}


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    store_path: Optional[str] = None,
    workers: int = 4,
    max_states: int = 200_000,
    backend: str = "thread",
    shards: Optional[int] = None,
    recycle_after: Optional[int] = None,
    port_file: Optional[str] = None,
    slow_request_s: Optional[float] = None,
    hot_tier_bytes: int = 0,
    compact_interval_s: Optional[float] = None,
) -> None:
    """Blocking entry point behind ``repro-leader-election serve``.

    ``port_file``, when given, receives the *bound* port as a decimal line
    once the listener is up -- the scripting hook that lets harnesses run
    with ``--port 0`` (kernel-assigned, collision-free) and still find the
    server, instead of hard-coding ports that collide across CI legs.

    ``hot_tier_bytes`` (with a store) enables traffic-shaped serving: the
    store's in-process hot tier plus second-touch cache admission -- see
    :class:`~repro.service.service.ElectionService`.

    ``compact_interval_s`` (with a store) schedules
    :meth:`~repro.store.ArtifactStore.compact` every that many seconds, off
    the event loop.  Compaction runs under the store's manifest flock, so it
    is safe against concurrent writers (shard workers, a parallel ``repro
    warm``); each run bumps the store's ``compactions`` counter, which the
    existing stats plumbing surfaces as
    ``repro_store_events{event="compactions"}`` on ``GET /metrics``.
    """
    from ..store import ArtifactStore

    store = ArtifactStore(store_path) if store_path is not None else None
    if compact_interval_s is not None and compact_interval_s <= 0:
        raise ValueError("compact_interval_s must be positive")
    if compact_interval_s is not None and store is None:
        raise ValueError("compact_interval_s requires a store")
    service = ElectionService(
        store=store,
        workers=workers,
        default_max_states=max_states,
        backend=backend,
        shards=shards,
        recycle_after=recycle_after,
        hot_tier_bytes=hot_tier_bytes,
    )
    server = ElectionServer(service, host=host, port=port, slow_request_s=slow_request_s)

    async def _compact_periodically(interval_s: float) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval_s)
            try:
                report = await loop.run_in_executor(None, store.compact)
            except OSError as error:
                print(f"repro serve: store compaction failed: {error}", file=sys.stderr)
            else:
                removed = sum(v for k, v in report.items() if k.startswith("removed_"))
                if removed:
                    print(
                        f"repro serve: compacted store "
                        f"(generation {report['generation']}): "
                        f"{removed} objects reclaimed, {report['live_records']} live",
                        file=sys.stderr,
                    )

    async def _main() -> None:
        await server.start()
        if compact_interval_s is not None:
            # dies with the loop; asyncio.run cancels it on shutdown
            asyncio.ensure_future(_compact_periodically(compact_interval_s))
        location = f"http://{host}:{server.port}"
        if store is not None:
            hot_note = (
                f", hot_tier={service.hot_tier_bytes // (1024 * 1024)}MB"
                if service.hot_tier_bytes
                else ""
            )
            store_note = f", store={store.root}{hot_note}"
        else:
            store_note = ", no store"
        if service.backend == "process":
            backend_note = f"backend=process, shards={service.concurrency}"
        else:
            backend_note = f"backend=thread, workers={workers}"
        print(
            f"repro-leader-election serve: listening on {location} "
            f"({backend_note}{store_note})",
            file=sys.stderr,
        )
        if port_file is not None:
            tmp_path = f"{port_file}.tmp.{os.getpid()}"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
            os.replace(tmp_path, port_file)
        await server.serve_forever()

    try:
        asyncio.run(_main())
    finally:
        service.close()
