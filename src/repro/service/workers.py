"""Compute backends for the election service: thread pool or sharded processes.

The service's heavy work -- graph construction, partition refinement, the
ψ_PPE/ψ_CPPE joint searches -- is pure Python, so the original bounded
``ThreadPoolExecutor`` backend (:class:`ThreadBackend`) can never use more
than one core per request wave.  :class:`ProcessShardBackend` is the
partition-for-load-balance alternative: **N persistent worker processes**,
each owning its own process-wide refinement cache (store-attached through
the same :mod:`repro.runner.bootstrap` initializer the experiment runner's
``multiprocessing`` fan-out uses), with queries routed by a stable hash of
their graph identity:

* **Shard routing is deterministic.**  :func:`shard_index` maps a route key
  (a digest of the query's ``graph``/``spec`` body) to a shard, so repeat
  submissions of one graph -- whatever their task/budget parameters --
  always land on the shard that already refined it.  Warm state is
  per-shard by construction; no cross-process cache coherence is needed.
* **Workers are recycled.**  After ``recycle_after`` tasks a worker exits
  on its own (the parent joins it and lazily spawns a successor), bounding
  any slow accumulation of per-process state -- the classic
  ``maxtasksperchild`` discipline, kept deterministic by counting on both
  sides of the pipe.
* **Crashes are detected and retried once.**  A worker that dies mid-task
  (OOM kill, hard crash) surfaces as a broken pipe; the shard respawns the
  worker and resubmits that one task a single time before giving up with a
  503.  Because every computation is a pure function of the request, a
  resubmit can never produce a different answer.
* **Responses are byte-identical to the thread backend.**  Both backends
  run :func:`repro.service.service.compute_election`; a shard ships the
  response dict back over a pipe, and ``ServiceError`` crosses the
  boundary as plain data, so client-visible behaviour is backend-invariant
  (the CI gate certifies this over a 200-graph mixed-corpus batch).

Workers are spawned **lazily** (first task routed to a shard starts its
process) with the ``spawn`` start method: a service respawns workers while
other threads hold arbitrary locks, which rules out ``fork``.  Shard
worker processes are daemonic, so even an unclean parent exit cannot leak
them; a clean :meth:`ProcessShardBackend.close` asks each worker to exit,
joins it, and terminates it if it will not.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..core import search_statistics
from ..kernel.backend import BACKEND_ENV_VAR
from ..obs import activate as activate_trace
from ..obs import current_context, default_recorder, record_span
from ..runner.bootstrap import bootstrap_worker
from ..runner.cache import refinement_cache
from .protocol import WORKER_DOWN, worker_transition
from .service import ServiceError, compute_election

__all__ = [
    "ComputeBackend",
    "DEFAULT_RECYCLE_AFTER",
    "ProcessShardBackend",
    "ThreadBackend",
    "shard_index",
]

#: Default number of tasks a shard worker serves before it is recycled.
DEFAULT_RECYCLE_AFTER = 500

#: Seconds to wait for a worker process (or a busy shard lock) at shutdown
#: before escalating to ``terminate``.
_SHUTDOWN_TIMEOUT = 5.0

#: Total budget (seconds) a stats probe may spend waiting on busy shards.
_STATS_TIMEOUT = 1.0


def shard_index(key: str, shards: int) -> int:
    """The shard owning ``key``: stable across processes, restarts and runs.

    ``key`` is normally already a hex digest (the service's route key), in
    which case its integer value is used directly; any other string is
    hashed first.  Python's built-in ``hash`` is deliberately avoided -- it
    is salted per process, and routing must be deterministic so warm caches
    stay sticky across reconnects and service restarts.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    try:
        value = int(key, 16)
    except ValueError:
        value = int.from_bytes(
            hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
        )
    return value % shards


class ComputeBackend:
    """Interface both backends implement (duck-typed; this is documentation).

    ``submit(route_key, parsed)`` computes one parsed query off the event
    loop and returns the response dict (raising :class:`ServiceError` for
    client errors); ``stats()`` returns ``{"cache": ..., "search": ...}``
    sections measured where the computing happens; ``close()`` shuts the
    backend down idempotently and deterministically.
    """

    name: str
    concurrency: int

    async def submit(self, route_key: str, parsed: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# thread backend (the original)
# --------------------------------------------------------------------------- #
class ThreadBackend(ComputeBackend):
    """The bounded in-process pool: simple, GIL-bound, zero start-up cost."""

    name = "thread"

    def __init__(self, *, workers: int, compute_delay: float = 0.0) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.concurrency = workers
        self._compute_delay = compute_delay
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._closed = False

    async def submit(self, route_key: str, parsed: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError(503, "service is shutting down")
        loop = asyncio.get_running_loop()
        # run_in_executor does not propagate contextvars: capture the trace
        # context here and re-enter it in the pool thread
        context = current_context()
        submitted = (time.time(), time.perf_counter()) if context is not None else None
        return await loop.run_in_executor(self._executor, self._call, parsed, context, submitted)

    def _call(self, parsed: Dict[str, Any], context=None, submitted=None) -> Dict[str, Any]:
        if submitted is not None:
            record_span(
                "queue_wait",
                start_s=submitted[0],
                duration_ms=(time.perf_counter() - submitted[1]) * 1000.0,
                context=context,
            )
        with activate_trace(context):
            return compute_election(parsed, compute_delay=self._compute_delay)

    def stats(self) -> Dict[str, Any]:
        return {"cache": refinement_cache.stats(), "search": search_statistics()}

    def observed_counters(self) -> Dict[str, Dict[str, int]]:
        """Search counters for /metrics (computation happens in-process)."""
        return {"search": dict(search_statistics()), "store": {}}

    def heat(self) -> List[Dict[str, Any]]:
        """No shards, no heat rows (uniform interface with the process backend)."""
        return []

    def queue_depth(self) -> int:
        """Computations accepted but not yet started (for /metrics)."""
        return self._executor._work_queue.qsize()

    def telemetry(self) -> Dict[str, int]:
        """Parent-side counters for /metrics (threads have no lifecycle)."""
        return {}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # wait=True joins the worker threads deterministically (they are not
        # daemons); cancel_futures drops queued-but-unstarted computations
        self._executor.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------------- #
# process backend
# --------------------------------------------------------------------------- #
def _worker_stats(jobs_done: int) -> Dict[str, Any]:
    """This worker process's observability payload (also its retirement will)."""
    store = refinement_cache.store
    return {
        "pid": os.getpid(),
        "jobs": jobs_done,
        "cache": refinement_cache.stats(),
        "search": search_statistics(),
        "store": store.stats() if store is not None else {},
    }


def _job_extras(context, jobs_done: int) -> Dict[str, Any]:
    """The observability payload piggybacked on every job reply.

    ``stats`` is this worker's cumulative counter snapshot -- the parent
    keeps the latest per shard so ``/metrics`` aggregates search/store
    counters without a pipe round trip.  With a trace context the worker's
    spans for that trace ride along too (and leave this process's
    recorder), so one ``/trace/<id>`` tree shows parent and shard stages.
    """
    extras: Dict[str, Any] = {"stats": _worker_stats(jobs_done)}
    if context is not None:
        extras["spans"] = default_recorder.pop_trace(context[0])
    return extras


def _send_or_exit(conn, message) -> bool:
    """Send on the parent pipe; ``False`` (worker should exit quietly) if gone."""
    try:
        conn.send(message)
        return True
    except (BrokenPipeError, ConnectionResetError, OSError):
        # the parent closed our pipe (e.g. a timed-out shutdown escalated to
        # terminate while we were computing): exit cleanly, not a traceback
        return False


def _shard_main(
    conn,
    store_path: Optional[str],
    compute_delay: float,
    recycle_after: int,
    kernel_backend: Optional[str] = None,
    hot_tier_bytes: int = 0,
    cache_admission: Optional[str] = None,
) -> None:
    """One shard worker: serve jobs off a pipe until recycled or told to exit."""
    bootstrap_worker(
        store_path,
        kernel_backend,
        hot_tier_bytes=hot_tier_bytes,
        cache_admission=cache_admission,
    )
    jobs_done = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        op = message[0]
        if op == "exit":
            _send_or_exit(conn, ("bye", _worker_stats(jobs_done)))
            break
        if op == "ping":
            if not _send_or_exit(conn, ("ok", os.getpid())):
                break
            continue
        if op == "stats":
            if not _send_or_exit(conn, ("ok", _worker_stats(jobs_done))):
                break
            continue
        parsed = message[1]
        context = message[2] if len(message) > 2 else None
        try:
            with activate_trace(context):
                result = compute_election(parsed, compute_delay=compute_delay)
            reply = ("ok", result, _job_extras(context, jobs_done + 1))
        except ServiceError as error:
            # ship as plain data: the exception's two-argument constructor
            # does not round-trip through pickle
            reply = ("service_error", error.status, error.message, _job_extras(context, jobs_done + 1))
        except Exception as error:  # pragma: no cover - defensive
            reply = ("error", f"{type(error).__name__}: {error}")
        if not _send_or_exit(conn, reply):
            break
        jobs_done += 1
        if recycle_after and jobs_done >= recycle_after:
            # the parent counts too: it collects this final snapshot (so the
            # shard's cumulative counters survive recycling), joins us, and
            # spawns a successor on the next task
            _send_or_exit(conn, ("retired", _worker_stats(jobs_done)))
            break


class _Shard:
    """Parent-side handle of one shard: worker process + pipe + dispatcher.

    All pipe traffic is serialised by ``_lock`` (one outstanding message per
    worker); ``dispatcher`` is a dedicated single-thread executor so the
    event loop submits jobs without blocking and per-shard ordering is FIFO.

    The worker's lifecycle state (``down``/``idle``/``busy``/``closed``)
    advances only through the shared transition table in
    :mod:`repro.service.protocol` -- the same table ``repro verify``
    explores exhaustively -- so a lifecycle step the protocol forbids
    raises :class:`~repro.service.protocol.ProtocolViolation` here instead
    of hanging a dispatched job.
    """

    def __init__(
        self,
        index: int,
        *,
        context,
        store_path: Optional[str],
        compute_delay: float,
        recycle_after: int,
        hot_tier_bytes: int = 0,
        cache_admission: Optional[str] = None,
    ) -> None:
        self.index = index
        self._context = context
        self._store_path = store_path
        self._compute_delay = compute_delay
        self._recycle_after = recycle_after
        self._hot_tier_bytes = hot_tier_bytes
        self._cache_admission = cache_admission
        self._lock = threading.Lock()
        self.dispatcher = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )
        self._process = None
        self._conn = None
        self._jobs_since_spawn = 0
        self._closed = False
        #: Protocol lifecycle state (all transitions under ``_lock``, except
        #: the final ``close`` which is serialised by ``_closed``).
        self.state = WORKER_DOWN
        self.dispatched = 0
        self.spawns = 0
        self.recycles = 0
        self.crashes = 0
        #: Seconds this shard's pipe was occupied by jobs (the heat signal).
        self.busy_seconds = 0.0
        #: The live worker's latest cumulative counter snapshot, refreshed
        #: from the extras piggybacked on every job reply (no pipe traffic).
        self.last_snapshot: Dict[str, Any] = {}
        # cumulative counters inherited from cleanly retired workers (a
        # crashed worker's counters die with it)
        self.retired_jobs = 0
        self.retired_cache: Dict[str, int] = {}
        self.retired_search: Dict[str, int] = {}
        self.retired_store: Dict[str, int] = {}

    # -- lifecycle (all called with ``_lock`` held) --------------------- #
    def _spawn(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_main,
            args=(
                child_conn,
                self._store_path,
                self._compute_delay,
                self._recycle_after,
                # the parent's backend *request* (not its resolution), so a
                # shard without numpy falls back instead of failing
                os.environ.get(BACKEND_ENV_VAR, "auto"),
                self._hot_tier_bytes,
                self._cache_admission,
            ),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn
        self._jobs_since_spawn = 0
        self.spawns += 1
        self.state = worker_transition(self.state, "spawn")

    def _discard(self, reason: str) -> None:
        """Drop the worker process; ``reason`` is the protocol event
        (``crash``/``retire``/``close``) that removes it."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._process is not None:
            if self._process.is_alive():
                self._process.terminate()
            self._process.join(timeout=_SHUTDOWN_TIMEOUT)
            self._process = None
        self.last_snapshot = {}
        self.state = worker_transition(self.state, reason)

    def _ensure_worker(self) -> None:
        if self._closed:
            raise ServiceError(503, "service is shutting down")
        if self._process is not None and not self._process.is_alive():
            # died between requests (a recycle exit is reaped eagerly in
            # call(), so an exited process found here crashed while idle)
            self.crashes += 1
            self._discard("crash")
        if self._process is None:
            self._spawn()

    # -- operations ----------------------------------------------------- #
    def call(self, parsed: Dict[str, Any], context=None, submitted=None):
        """Dispatch one job to this shard's worker; detect crashes, retry once.

        ``context`` is the request's trace context ``(trace_id, span_id)``:
        it crosses the pipe with the job so the worker's spans join the
        trace, and this (dispatcher-thread) side records the ``queue_wait``
        and per-attempt ``dispatch`` spans around the round trip.
        """
        if submitted is not None:
            record_span(
                "queue_wait",
                start_s=submitted[0],
                duration_ms=(time.perf_counter() - submitted[1]) * 1000.0,
                context=context,
                tags={"shard": self.index},
            )
        with self._lock:
            self.dispatched += 1
            for attempt in (1, 2):
                self._ensure_worker()
                self.state = worker_transition(self.state, "dispatch")
                dispatch_wall = time.time()
                dispatch_t0 = time.perf_counter()
                try:
                    self._conn.send(("job", parsed, context))
                    reply = self._conn.recv()
                except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                    self.busy_seconds += time.perf_counter() - dispatch_t0
                    self.crashes += 1
                    self._discard("crash")
                    if attempt == 2:
                        raise ServiceError(
                            503,
                            f"shard {self.index} worker crashed twice on one query",
                        ) from None
                    continue
                busy = time.perf_counter() - dispatch_t0
                self.busy_seconds += busy
                record_span(
                    "dispatch",
                    start_s=dispatch_wall,
                    duration_ms=busy * 1000.0,
                    context=context,
                    tags={"shard": self.index, "attempt": attempt},
                )
                reply = self._absorb_extras(reply)
                self.state = worker_transition(self.state, "reply")
                self._jobs_since_spawn += 1
                if self._recycle_after and self._jobs_since_spawn >= self._recycle_after:
                    # the worker sends a final stats snapshot and exits after
                    # its last job; absorb the snapshot and reap it now so
                    # its successor spawns on the next call
                    try:
                        if self._conn.poll(_SHUTDOWN_TIMEOUT):
                            farewell = self._conn.recv()
                            if farewell[0] == "retired":
                                self._absorb(farewell[1])
                    except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                        pass
                    self._process.join(timeout=_SHUTDOWN_TIMEOUT)
                    self._discard("retire")
                    self.recycles += 1
                return reply
        raise AssertionError("unreachable")  # pragma: no cover

    def _control(self, op: str, *, spawn: bool = False, timeout: float = _SHUTDOWN_TIMEOUT):
        """A non-job round trip (``ping``/``stats``); ``None`` if unanswerable.

        The shard lock is held for a job's whole round trip, so a busy
        shard would block a ``/stats`` probe for the rest of its
        computation -- acquire with a timeout instead and report nothing
        for shards that are mid-job (their retired counters still count).
        With ``spawn`` the worker is started on demand; spawn failures
        propagate (they mean process creation is broken, not that the
        worker crashed).
        """
        if not self._lock.acquire(timeout=timeout):
            return None
        try:
            if spawn:
                self._ensure_worker()
            elif self._closed or self._process is None or not self._process.is_alive():
                return None
            try:
                self._conn.send((op,))
                # holding the lock means the worker is idle (no job on the
                # pipe), so a healthy worker answers immediately; a poll
                # timeout means it is wedged (e.g. hung in bootstrap), and
                # the pipe now holds a pending reply nothing should read --
                # discard the worker rather than poison the next exchange
                if not self._conn.poll(_SHUTDOWN_TIMEOUT):
                    raise EOFError("control round trip timed out")
                return self._conn.recv()[1]
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                self.crashes += 1
                self._discard("crash")
                return None
        finally:
            self._lock.release()

    def ping(self) -> Optional[int]:
        """The live worker's PID, spawning it first if need be."""
        return self._control("ping", spawn=True)

    def snapshot(self, *, timeout: float = _STATS_TIMEOUT) -> Optional[Dict[str, Any]]:
        """The live worker's cache/search stats; ``None`` if dead or busy."""
        return self._control("stats", timeout=timeout)

    def _absorb_extras(self, reply):
        """Strip the observability extras off a job reply and apply them.

        Extras carry the worker's cumulative counter snapshot (kept as this
        shard's ``last_snapshot``) and, for traced jobs, the worker-side
        spans of the request's trace, absorbed into the parent's recorder.
        Returns the reply without the extras (the wire shape the backend's
        ``submit`` consumes).
        """
        if reply[0] == "ok" and len(reply) > 2:
            extras = reply[2]
            reply = reply[:2]
        elif reply[0] == "service_error" and len(reply) > 3:
            extras = reply[3]
            reply = reply[:3]
        else:
            return reply
        if isinstance(extras, dict):
            snapshot = extras.get("stats")
            if isinstance(snapshot, dict):
                self.last_snapshot = snapshot
            default_recorder.absorb(extras.get("spans"))
        return reply

    def _absorb(self, final_stats: Dict[str, Any]) -> None:
        """Fold a retiring worker's counters into this shard's cumulative totals."""
        self.retired_jobs += final_stats.get("jobs", 0)
        store_section = {
            # "records" is a gauge of the shared manifest, not a counter
            key: value
            for key, value in final_stats.get("store", {}).items()
            if key != "records"
        }
        for totals, section in (
            (self.retired_cache, final_stats.get("cache", {})),
            (self.retired_search, final_stats.get("search", {})),
            (self.retired_store, store_section),
        ):
            for key, value in section.items():
                if isinstance(value, int):
                    totals[key] = totals.get(key, 0) + value

    def close(self) -> None:
        """Shut this shard down: graceful exit handshake, or terminate.

        The graceful path (send ``exit``, absorb the farewell, join) runs
        only when the shard lock could be acquired -- ``Connection`` is not
        safe for concurrent use, so if a dispatched job is still mid-pipe
        after the timeout the worker is terminated instead, which surfaces
        in the blocked ``call()`` as ``EOFError`` and (the shard now being
        closed) a clean 503.
        """
        self._closed = True
        acquired = self._lock.acquire(timeout=_SHUTDOWN_TIMEOUT)
        try:
            process, conn = self._process, self._conn
            if acquired:
                self._process = self._conn = None
                if process is not None and process.is_alive() and conn is not None:
                    try:
                        conn.send(("exit",))
                        if conn.poll(_SHUTDOWN_TIMEOUT):
                            farewell = conn.recv()
                            if farewell[0] == "bye":
                                self._absorb(farewell[1])
                    except (BrokenPipeError, ConnectionResetError, OSError, EOFError):
                        pass
                    process.join(timeout=_SHUTDOWN_TIMEOUT)
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=_SHUTDOWN_TIMEOUT)
            if acquired and conn is not None:
                conn.close()
        finally:
            # close is legal from every state (a busy worker is terminated;
            # its blocked caller surfaces a crash against the closed state)
            self.state = worker_transition(self.state, "close")
            if acquired:
                self._lock.release()
        self.dispatcher.shutdown(wait=True, cancel_futures=True)


class ProcessShardBackend(ComputeBackend):
    """Hash-sharded persistent worker processes (see the module docstring)."""

    name = "process"

    def __init__(
        self,
        *,
        shards: int,
        store_path: Optional[str] = None,
        compute_delay: float = 0.0,
        recycle_after: Optional[int] = None,
        start_method: Optional[str] = None,
        hot_tier_bytes: int = 0,
        cache_admission: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if recycle_after is None:
            recycle_after = DEFAULT_RECYCLE_AFTER
        if recycle_after < 1:
            raise ValueError("recycle_after must be at least 1")
        if start_method is None:
            # spawn: the parent respawns workers mid-serving while other
            # threads hold locks, which forking would copy in a locked state
            start_method = "spawn" if "spawn" in multiprocessing.get_all_start_methods() else None
        context = multiprocessing.get_context(start_method)
        self.concurrency = shards
        self.recycle_after = recycle_after
        self._shards = [
            _Shard(
                index,
                context=context,
                store_path=store_path,
                compute_delay=compute_delay,
                recycle_after=recycle_after,
                hot_tier_bytes=hot_tier_bytes,
                cache_admission=cache_admission,
            )
            for index in range(shards)
        ]
        self._closed = False
        # eagerly spawn and round-trip one worker: shards are otherwise
        # lazy, and a platform where process creation fails (blocked clone,
        # exhausted RLIMIT_NPROC, broken spawn) must fail *here*, where the
        # service's thread-backend fallback can catch it, not as a 500 on
        # the first query
        if self._shards[0].ping() is None:
            self.close()
            raise OSError("shard worker failed to start")

    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_for(self, route_key: str) -> int:
        """Which shard serves ``route_key`` (deterministic; see :func:`shard_index`)."""
        return shard_index(route_key, len(self._shards))

    def shard_pids(self) -> List[Optional[int]]:
        """Live worker PIDs per shard (spawning workers on demand); for tests/ops."""
        return [shard.ping() for shard in self._shards]

    async def submit(self, route_key: str, parsed: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError(503, "service is shutting down")
        shard = self._shards[self.shard_for(route_key)]
        loop = asyncio.get_running_loop()
        # capture the trace context for the dispatcher thread and the worker
        # process (contextvars cross neither boundary on their own)
        context = current_context()
        submitted = (time.time(), time.perf_counter()) if context is not None else None
        reply = await loop.run_in_executor(
            shard.dispatcher, shard.call, parsed, context, submitted
        )
        status = reply[0]
        if status == "ok":
            return reply[1]
        if status == "service_error":
            raise ServiceError(reply[1], reply[2])
        raise RuntimeError(f"shard worker error: {reply[1]}")

    def stats(self) -> Dict[str, Any]:
        """Aggregated cache/search counters plus a per-shard breakdown.

        Summing the shard workers' own ``refinement_cache``/search counters
        keeps backend-independent invariants checkable from ``/stats`` --
        e.g. a store-warm replay must show zero refinement passes no matter
        which processes did the work.  Counters of cleanly *retired*
        (recycled or exited) workers are folded in; unspawned shards
        contribute zeros and a crashed worker's counters die with it.  A
        shard that is *mid-job* reports only its retired counters (row
        ``alive: False``) instead of blocking this probe on its
        computation -- read ``/stats`` at a quiescent moment for exact
        totals.
        """
        cache_total: Dict[str, int] = {key: 0 for key in refinement_cache.stats()}
        search_total: Dict[str, int] = {key: 0 for key in search_statistics()}
        store_total: Dict[str, int] = {}
        per_shard: List[Dict[str, Any]] = []
        # one deadline shared by all shards: a fleet of busy shards costs
        # the probe ~1s total, not ~1s each
        deadline = time.monotonic() + _STATS_TIMEOUT
        for shard in self._shards:
            snapshot = shard.snapshot(timeout=max(0.0, deadline - time.monotonic()))
            row: Dict[str, Any] = {
                "shard": shard.index,
                "alive": snapshot is not None,
                "state": shard.state,
                "pid": snapshot["pid"] if snapshot else None,
                "jobs": (snapshot["jobs"] if snapshot else 0) + shard.retired_jobs,
                "dispatched": shard.dispatched,
                "spawns": shard.spawns,
                "recycles": shard.recycles,
                "crashes": shard.crashes,
                "busy_seconds": round(shard.busy_seconds, 6),
            }
            sections = [
                (cache_total, shard.retired_cache),
                (search_total, shard.retired_search),
                (store_total, shard.retired_store),
            ]
            if snapshot is not None:
                sections += [
                    (cache_total, snapshot["cache"]),
                    (search_total, snapshot["search"]),
                    (store_total, {
                        key: value
                        for key, value in snapshot.get("store", {}).items()
                        if key != "records"
                    }),
                ]
            for totals, section in sections:
                for key, value in section.items():
                    if isinstance(value, int):
                        totals[key] = totals.get(key, 0) + value
            per_shard.append(row)
        return {
            "cache": cache_total,
            "search": search_total,
            "store": store_total,
            "shards": {
                "count": len(self._shards),
                "recycle_after": self.recycle_after,
                "spawns": sum(shard.spawns for shard in self._shards),
                "recycles": sum(shard.recycles for shard in self._shards),
                "crashes": sum(shard.crashes for shard in self._shards),
                "per_shard": per_shard,
            },
        }

    def queue_depth(self) -> int:
        """Jobs waiting on shard dispatchers, not yet on a pipe (for /metrics)."""
        return sum(shard.dispatcher._work_queue.qsize() for shard in self._shards)

    def telemetry(self) -> Dict[str, int]:
        """Parent-side shard counters for /metrics: no pipe round trips."""
        return {
            "shards": len(self._shards),
            "spawns": sum(shard.spawns for shard in self._shards),
            "recycles": sum(shard.recycles for shard in self._shards),
            "crashes": sum(shard.crashes for shard in self._shards),
            "dispatched": sum(shard.dispatched for shard in self._shards),
        }

    def heat(self) -> List[Dict[str, Any]]:
        """Per-shard load rows for /metrics: busy seconds, tasks, queue depth."""
        return [
            {
                "shard": shard.index,
                "busy_seconds": shard.busy_seconds,
                "dispatched": shard.dispatched,
                "queue_depth": shard.dispatcher._work_queue.qsize(),
            }
            for shard in self._shards
        ]

    def observed_counters(self) -> Dict[str, Dict[str, int]]:
        """Search/store counters for /metrics, summed from parent-side state.

        Uses the piggybacked per-job snapshots (``last_snapshot``) plus the
        retired workers' folded totals -- no pipe round trips, so a scrape
        never blocks on a busy shard; it lags it by at most one job.
        """
        search_total: Dict[str, int] = {}
        store_total: Dict[str, int] = {}
        for shard in self._shards:
            snapshot = shard.last_snapshot
            sections = [
                (search_total, shard.retired_search),
                (store_total, shard.retired_store),
                (search_total, snapshot.get("search", {})),
                (store_total, {
                    key: value
                    for key, value in snapshot.get("store", {}).items()
                    if key != "records"
                }),
            ]
            for totals, section in sections:
                for key, value in section.items():
                    if isinstance(value, int):
                        totals[key] = totals.get(key, 0) + value
        return {"search": search_total, "store": store_total}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()
