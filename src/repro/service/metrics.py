"""A minimal Prometheus-text-format metrics registry (stdlib only).

The container the reproduction targets has no ``prometheus_client``, so
this module implements the three instrument kinds the service needs --
monotonic counters, gauges (set directly or read from a callback at scrape
time) and cumulative-bucket histograms -- plus the text exposition format
(``# HELP`` / ``# TYPE`` comments, ``name{label="value"} 1.0`` samples)
that every Prometheus-compatible scraper understands.

Design constraints:

* **Scrapes must be cheap and lock-light.**  ``GET /metrics`` runs on the
  event loop's executor while queries are in flight; instruments share one
  registry lock held only for point reads/writes, and gauge callbacks are
  invoked outside it.  Nothing here does I/O or round-trips a worker pipe.
* **Label cardinality is the caller's problem, bounded by construction.**
  The server normalises paths (``/sweeps/<id>`` becomes ``/sweeps/{id}``)
  before labelling, so a scrape's size is O(endpoints x statuses), not
  O(sweeps ever served).
* **Rendering is deterministic.**  Families render in registration order,
  children in sorted label order, floats via ``repr`` -- two scrapes of an
  idle server are byte-identical, which keeps the CI smoke trivial.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "validate_exposition",
]

#: Request-latency buckets (seconds): sub-millisecond warm hits through
#: multi-second cold sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _sample(name: str, labels: Sequence[Tuple[str, str]], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(str(val))}"' for key, val in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Instrument:
    """Shared child bookkeeping: one value cell per label-value tuple."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str], lock: threading.Lock
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: Dict[Tuple[str, ...], float] = {}

    def _render_callback(self, callback: Callable[[], object]) -> List[str]:
        """Render from a scrape-time callback returning a number or a
        ``{labelvalues: number}`` dict keyed by tuples matching the label
        names (shared by callback gauges and callback counters)."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        observed = callback()
        if isinstance(observed, dict):
            for labelvalues in sorted(observed):
                values = (
                    labelvalues if isinstance(labelvalues, tuple) else (labelvalues,)
                )
                lines.append(
                    _sample(
                        self.name,
                        list(zip(self.labelnames, (str(v) for v in values))),
                        float(observed[labelvalues]),
                    )
                )
        else:
            lines.append(_sample(self.name, (), float(observed)))
        return lines

    def _labelvalues(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            children = sorted(self._children.items())
        if not children and not self.labelnames:
            children = [((), 0.0)]
        for labelvalues, value in children:
            lines.append(
                _sample(self.name, list(zip(self.labelnames, labelvalues)), value)
            )
        return lines


class Counter(_Instrument):
    """A monotonically increasing value, optionally split by labels.

    Like gauges, a counter may read a scrape-time callback instead of
    being incremented -- for values that are already accumulated elsewhere
    (shard busy seconds, dropped spans) but are semantically monotone.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        callback: Optional[Callable[[], object]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._callback = callback

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"{self.name}: callback counters cannot be incremented")
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._children.get(self._labelvalues(labels), 0.0)

    def render(self) -> List[str]:
        if self._callback is None:
            return super().render()
        return self._render_callback(self._callback)


class Gauge(_Instrument):
    """A point-in-time value: ``set`` directly, or supply a scrape callback.

    A callback gauge is read at render time (outside the registry lock) and
    must return either a number (no labels) or a ``{labelvalues: number}``
    dict keyed by tuples matching ``labelnames``.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        callback: Optional[Callable[[], object]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._callback = callback

    def set(self, value: float, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"{self.name}: callback gauges cannot be set")
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = float(value)

    def render(self) -> List[str]:
        if self._callback is None:
            return super().render()
        return self._render_callback(self._callback)


class Histogram:
    """Cumulative-bucket histogram: ``_bucket{le=...}``, ``_sum``, ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound is required")
        self._bounds = bounds
        # child -> (per-bucket counts, sum, count)
        self._children: Dict[Tuple[str, ...], Tuple[List[int], float, int]] = {}

    def _labelvalues(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def observe(self, value: float, **labels: str) -> None:
        key = self._labelvalues(labels)
        with self._lock:
            counts, total, count = self._children.get(
                key, ([0] * len(self._bounds), 0.0, 0)
            )
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    counts[index] += 1
                    break
            self._children[key] = (counts, total + value, count + 1)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            children = sorted(
                (key, (list(counts), total, count))
                for key, (counts, total, count) in self._children.items()
            )
        for labelvalues, (counts, total, count) in children:
            base = list(zip(self.labelnames, labelvalues))
            cumulative = 0
            for bound, bucket_count in zip(self._bounds, counts):
                cumulative += bucket_count
                lines.append(
                    _sample(
                        f"{self.name}_bucket", base + [("le", _format_value(bound))], cumulative
                    )
                )
            lines.append(_sample(f"{self.name}_bucket", base + [("le", "+Inf")], count))
            lines.append(_sample(f"{self.name}_sum", base, total))
            lines.append(_sample(f"{self.name}_count", base, count))
        return lines


class MetricsRegistry:
    """Creates instruments and renders the whole exposition document."""

    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: List[object] = []
        self._names: set = set()

    def _register(self, instrument):
        if instrument.name in self._names:
            raise ValueError(f"duplicate metric name {instrument.name!r}")
        self._names.add(instrument.name)
        self._families.append(instrument)
        return instrument

    def counter(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], object]] = None,
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames, self._lock, callback))

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], object]] = None,
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames, self._lock, callback))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labelnames, self._lock, buckets))

    def render(self) -> str:
        lines: List[str] = []
        for family in self._families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# exposition lint: a tiny text-format parser for CI and tests
# --------------------------------------------------------------------------- #
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_KNOWN_KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def _parse_labels(raw: str, *, line: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``a="b",c="d"`` honouring the ``\\\\``/``\\"``/``\\n`` escapes."""
    labels: List[Tuple[str, str]] = []
    position = 0
    while position < len(raw):
        match = _METRIC_NAME_RE.match(raw, position)
        if match is None or raw[match.end(): match.end() + 2] != '="':
            raise ValueError(f"malformed label pair at {raw[position:]!r} in {line!r}")
        name = match.group(0)
        position = match.end() + 2
        value_chars: List[str] = []
        while True:
            if position >= len(raw):
                raise ValueError(f"unterminated label value in {line!r}")
            ch = raw[position]
            if ch == "\\":
                escape = raw[position: position + 2]
                if escape == "\\\\":
                    value_chars.append("\\")
                elif escape == '\\"':
                    value_chars.append('"')
                elif escape == "\\n":
                    value_chars.append("\n")
                else:
                    raise ValueError(f"bad escape {escape!r} in {line!r}")
                position += 2
                continue
            if ch == '"':
                position += 1
                break
            if ch == "\n":
                raise ValueError(f"raw newline inside label value in {line!r}")
            value_chars.append(ch)
            position += 1
        labels.append((name, "".join(value_chars)))
        if position < len(raw):
            if raw[position] != ",":
                raise ValueError(f"expected ',' between label pairs in {line!r}")
            position += 1
    return tuple(labels)


def _parse_value(raw: str, *, line: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"unparseable sample value {raw!r} in {line!r}") from None


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse a Prometheus text exposition into ``{family: {...}}``.

    Each family maps to ``{"help": str|None, "type": str, "samples":
    {(sample_name, labels): value}}`` with labels as sorted tuples.
    Raises :class:`ValueError` on any grammar violation.
    """
    families: Dict[str, Dict[str, object]] = {}
    pending_help: Dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _METRIC_NAME_RE.fullmatch(name):
                raise ValueError(f"bad metric name in {line!r}")
            if name in families or name in pending_help:
                raise ValueError(f"duplicate HELP for {name!r}")
            pending_help[name] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                raise ValueError(f"malformed TYPE line {line!r}")
            name, kind = parts
            if not _METRIC_NAME_RE.fullmatch(name):
                raise ValueError(f"bad metric name in {line!r}")
            if kind not in _KNOWN_KINDS:
                raise ValueError(f"unknown metric kind {kind!r} in {line!r}")
            if name in families:
                raise ValueError(f"duplicate TYPE for {name!r}")
            if name not in pending_help:
                raise ValueError(f"TYPE without preceding HELP for {name!r}")
            families[name] = {
                "help": pending_help.pop(name),
                "type": kind,
                "samples": {},
            }
            continue
        if line.startswith("#"):
            continue  # comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line {line!r}")
        sample_name = match.group("name")
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                candidate = sample_name[: -len(suffix)]
                if families[candidate]["type"] in ("histogram", "summary"):
                    family_name = candidate
                break
        family = families.get(family_name)
        if family is None:
            raise ValueError(f"sample {sample_name!r} has no TYPE declaration")
        if family_name != sample_name and family["type"] not in ("histogram", "summary"):
            raise ValueError(
                f"suffixed sample {sample_name!r} under non-histogram {family_name!r}"
            )
        raw_labels = match.group("labels")
        labels = _parse_labels(raw_labels, line=line) if raw_labels else ()
        key = (sample_name, tuple(sorted(labels)))
        samples = family["samples"]
        if key in samples:
            raise ValueError(f"duplicate series {key!r}")
        samples[key] = _parse_value(match.group("value"), line=line)
    if pending_help:
        raise ValueError(f"HELP without TYPE for {sorted(pending_help)!r}")
    return families


def validate_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse and lint one ``/metrics`` scrape; raises :class:`ValueError`.

    Beyond the grammar checks of :func:`parse_exposition`: histograms must
    ship ``_sum``/``_count``/a ``+Inf`` bucket per labelset, bucket counts
    must be cumulative (non-decreasing in ``le``) and agree with
    ``_count``, and counter samples must be non-negative.
    """
    families = parse_exposition(text)
    for name, family in families.items():
        samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = family["samples"]
        if family["type"] == "counter":
            for (sample_name, _labels), value in samples.items():
                if value < 0:
                    raise ValueError(f"negative counter sample {sample_name!r}: {value}")
        if family["type"] != "histogram":
            continue
        by_labelset: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
        for (sample_name, labels), value in samples.items():
            if sample_name == f"{name}_bucket":
                le = dict(labels).get("le")
                if le is None:
                    raise ValueError(f"{sample_name!r} sample without an 'le' label")
                base = tuple(pair for pair in labels if pair[0] != "le")
                entry = by_labelset.setdefault(base, {"buckets": [], "sum": None, "count": None})
                bound = math.inf if le == "+Inf" else float(le)
                entry["buckets"].append((bound, value))
            elif sample_name == f"{name}_sum":
                by_labelset.setdefault(labels, {"buckets": [], "sum": None, "count": None})["sum"] = value
            elif sample_name == f"{name}_count":
                by_labelset.setdefault(labels, {"buckets": [], "sum": None, "count": None})["count"] = value
            else:
                raise ValueError(f"unexpected histogram sample {sample_name!r}")
        for labels, entry in by_labelset.items():
            buckets = sorted(entry["buckets"])
            if not buckets or buckets[-1][0] != math.inf:
                raise ValueError(f"{name!r} {labels!r}: histogram lacks a +Inf bucket")
            counts = [count for _bound, count in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ValueError(f"{name!r} {labels!r}: bucket counts are not cumulative")
            if entry["sum"] is None or entry["count"] is None:
                raise ValueError(f"{name!r} {labels!r}: histogram lacks _sum/_count")
            if counts[-1] != entry["count"]:
                raise ValueError(f"{name!r} {labels!r}: +Inf bucket != _count")
    return families
