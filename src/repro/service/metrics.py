"""A minimal Prometheus-text-format metrics registry (stdlib only).

The container the reproduction targets has no ``prometheus_client``, so
this module implements the three instrument kinds the service needs --
monotonic counters, gauges (set directly or read from a callback at scrape
time) and cumulative-bucket histograms -- plus the text exposition format
(``# HELP`` / ``# TYPE`` comments, ``name{label="value"} 1.0`` samples)
that every Prometheus-compatible scraper understands.

Design constraints:

* **Scrapes must be cheap and lock-light.**  ``GET /metrics`` runs on the
  event loop's executor while queries are in flight; instruments share one
  registry lock held only for point reads/writes, and gauge callbacks are
  invoked outside it.  Nothing here does I/O or round-trips a worker pipe.
* **Label cardinality is the caller's problem, bounded by construction.**
  The server normalises paths (``/sweeps/<id>`` becomes ``/sweeps/{id}``)
  before labelling, so a scrape's size is O(endpoints x statuses), not
  O(sweeps ever served).
* **Rendering is deterministic.**  Families render in registration order,
  children in sorted label order, floats via ``repr`` -- two scrapes of an
  idle server are byte-identical, which keeps the CI smoke trivial.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Request-latency buckets (seconds): sub-millisecond warm hits through
#: multi-second cold sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _sample(name: str, labels: Sequence[Tuple[str, str]], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(str(val))}"' for key, val in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Instrument:
    """Shared child bookkeeping: one value cell per label-value tuple."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str], lock: threading.Lock
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: Dict[Tuple[str, ...], float] = {}

    def _labelvalues(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            children = sorted(self._children.items())
        if not children and not self.labelnames:
            children = [((), 0.0)]
        for labelvalues, value in children:
            lines.append(
                _sample(self.name, list(zip(self.labelnames, labelvalues)), value)
            )
        return lines


class Counter(_Instrument):
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._children.get(self._labelvalues(labels), 0.0)


class Gauge(_Instrument):
    """A point-in-time value: ``set`` directly, or supply a scrape callback.

    A callback gauge is read at render time (outside the registry lock) and
    must return either a number (no labels) or a ``{labelvalues: number}``
    dict keyed by tuples matching ``labelnames``.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        callback: Optional[Callable[[], object]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._callback = callback

    def set(self, value: float, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"{self.name}: callback gauges cannot be set")
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = float(value)

    def render(self) -> List[str]:
        if self._callback is None:
            return super().render()
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        observed = self._callback()
        if isinstance(observed, dict):
            for labelvalues in sorted(observed):
                values = (
                    labelvalues if isinstance(labelvalues, tuple) else (labelvalues,)
                )
                lines.append(
                    _sample(
                        self.name,
                        list(zip(self.labelnames, (str(v) for v in values))),
                        float(observed[labelvalues]),
                    )
                )
        else:
            lines.append(_sample(self.name, (), float(observed)))
        return lines


class Histogram:
    """Cumulative-bucket histogram: ``_bucket{le=...}``, ``_sum``, ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound is required")
        self._bounds = bounds
        # child -> (per-bucket counts, sum, count)
        self._children: Dict[Tuple[str, ...], Tuple[List[int], float, int]] = {}

    def _labelvalues(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def observe(self, value: float, **labels: str) -> None:
        key = self._labelvalues(labels)
        with self._lock:
            counts, total, count = self._children.get(
                key, ([0] * len(self._bounds), 0.0, 0)
            )
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    counts[index] += 1
                    break
            self._children[key] = (counts, total + value, count + 1)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            children = sorted(
                (key, (list(counts), total, count))
                for key, (counts, total, count) in self._children.items()
            )
        for labelvalues, (counts, total, count) in children:
            base = list(zip(self.labelnames, labelvalues))
            cumulative = 0
            for bound, bucket_count in zip(self._bounds, counts):
                cumulative += bucket_count
                lines.append(
                    _sample(
                        f"{self.name}_bucket", base + [("le", _format_value(bound))], cumulative
                    )
                )
            lines.append(_sample(f"{self.name}_bucket", base + [("le", "+Inf")], count))
            lines.append(_sample(f"{self.name}_sum", base, total))
            lines.append(_sample(f"{self.name}_count", base, count))
        return lines


class MetricsRegistry:
    """Creates instruments and renders the whole exposition document."""

    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: List[object] = []
        self._names: set = set()

    def _register(self, instrument):
        if instrument.name in self._names:
            raise ValueError(f"duplicate metric name {instrument.name!r}")
        self._names.add(instrument.name)
        self._families.append(instrument)
        return instrument

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames, self._lock))

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], object]] = None,
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames, self._lock, callback))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labelnames, self._lock, buckets))

    def render(self) -> str:
        lines: List[str] = []
        for family in self._families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"
