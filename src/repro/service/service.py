"""The election-query service: coalesced, bounded, store-backed computation.

:class:`ElectionService` is the transport-agnostic core behind
``repro-leader-election serve``.  A query names a graph -- either a full
adjacency (the JSON dict format of :mod:`repro.portgraph.io`) or a generator
spec from the runner's graph-kind registry -- plus optional task and search
parameters, and the answer is feasibility, the requested ψ_Z indices and
(optionally) the bit-exact full-map advice string.  Everything returned is a
pure function of the graph and parameters, which the service exploits twice:

* **Request coalescing.**  Identical queries in flight share one
  computation: the first request registers a future keyed by a digest of the
  canonical request body, duplicates await it, and the ``coalesced`` flag of
  the response (and the ``/stats`` counter) records the dedup.  Differently
  labeled isomorphic submissions hash differently, but they still converge
  in the layers below (refinement cache buckets, store fingerprints).
* **A bounded worker backend.**  Cold computations run off the event loop
  on one of two interchangeable backends (:mod:`repro.service.workers`):
  the default fixed-size *thread* pool, or a *process* backend that
  hash-shards queries across persistent worker processes so refinement and
  the ψ searches escape the GIL (``repro serve --backend process
  --shards N``).  Either way the event loop keeps accepting connections and
  serving ``/stats`` while searches run, and at most ``workers`` (or one
  per shard) computations are in flight, the rest queue.

With a store attached the service is a thin front end over the durable
layer: queries warm-start from records persisted by any earlier process and
write their own results through, so a service restart costs nothing and a
fleet of service processes shares one artifact set.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import sys
import time
from typing import Any, Dict, Optional, Tuple

from ..core import Task, search_statistics
from ..obs import span as obs_span
from ..portgraph.io import graph_from_dict
from ..portgraph.validation import PortLabelingError
from ..runner import GraphSpec, SweepSpec, evaluate_graph, refinement_cache
from ..store import ArtifactStore

__all__ = [
    "ElectionService",
    "ServiceError",
    "compute_election",
    "deterministic_response",
]

#: Hard cap on submitted adjacency sizes (nodes); protects the joint
#: searches and the event loop from accidental monster submissions.
MAX_SUBMITTED_NODES = 100_000

#: Response fields that legitimately vary between otherwise identical
#: queries (wall time, whether this request drafted behind another, the
#: serving request's trace id, which lifecycle path a delta item took --
#: first submission replays, a repeat hits the cache).  The batch endpoint
#: strips them before stamping its own per-request trace, so streamed items
#: are byte-identical to what sequential ``POST /election`` calls return
#: minus exactly this set, and the CI gate compares through the same helper.
VOLATILE_RESPONSE_FIELDS = frozenset(
    {"elapsed_ms", "coalesced", "trace_id", "delta_path"}
)


def deterministic_response(response: Dict[str, Any]) -> Dict[str, Any]:
    """``response`` without the volatile fields: the pure-function-of-the-graph part."""
    return {key: value for key, value in response.items() if key not in VOLATILE_RESPONSE_FIELDS}


class ServiceError(Exception):
    """A client error with an HTTP status (bad graph, bad parameters)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _resolve_delta(parsed: Dict[str, Any]):
    """Resolve a ``{"base": ..., "delta": [...]}`` item into a warm cache entry.

    Drives the delta-item lifecycle (:mod:`repro.service.protocol`):
    ``lookup`` -> resolve the base (spec build, or store fingerprint; a
    missing fingerprint is ``base_miss`` and, because the mutated graph
    cannot be reconstructed without the base adjacency, fails the item) ->
    :meth:`~repro.runner.cache.RefinementCache.delta_entry` (which reports
    ``cache_hit``, or ``base_hit``/``memos_invalidated``/``replayed``).
    Returns ``(entry, label, delta_section, status)``; the caller finishes
    the lifecycle with ``evaluated`` after the election evaluation.
    """
    from ..portgraph.delta import DeltaError, GraphDelta
    from .protocol import DeltaStatus

    status = DeltaStatus()
    status.apply("lookup")
    try:
        delta = GraphDelta.from_payload(parsed["delta"])
    except (DeltaError, ValueError, TypeError) as error:
        status.apply("error")
        raise ServiceError(400, f"invalid delta: {error}") from None
    base_ref = parsed["base"]
    if isinstance(base_ref, dict):
        try:
            spec = GraphSpec.make(base_ref["kind"], **base_ref.get("params", {}))
            base_graph = spec.build()
        except ValueError as error:
            status.apply("error")
            raise ServiceError(400, str(error)) from None
        base_label = spec.label
    else:
        store = refinement_cache.store
        record = store.get(base_ref) if store is not None else None
        if record is None:
            status.apply("base_miss")
            # without the base adjacency the mutated graph cannot be built,
            # so the recompute fallback has nothing to recompute from
            status.apply("error")
            raise ServiceError(
                404, f"base fingerprint {base_ref!r} is not in the store"
            )
        base_graph = record.graph
        record.adopt_onto(base_graph)
        base_label = base_graph.name or base_ref[:12]
    events: list = []
    try:
        entry = refinement_cache.delta_entry(base_graph, delta, events=events)
    except DeltaError as error:
        for event in events:
            status.apply(event)
        status.apply("error")
        raise ServiceError(400, f"delta does not apply to base: {error}") from None
    for event in events:
        status.apply(event)
    delta_section = {
        "base": base_label,
        "digest": delta.digest(),
        "edit_distance": delta.edit_distance,
    }
    return entry, entry.graph.name or base_label, delta_section, status


def compute_election(parsed: Dict[str, Any], *, compute_delay: float = 0.0) -> Dict[str, Any]:
    """Build the graph of a parsed query and answer it (pure worker-side code).

    Runs on whichever backend the service uses -- a thread of the bounded
    pool or a shard worker process -- and touches only process-wide state
    (the refinement cache and, through it, the attached store), never the
    service instance, so thread and process backends execute the very same
    code and return byte-identical responses.
    """
    with obs_span("compute_election") as sp:
        if compute_delay:
            time.sleep(compute_delay)
        started = time.perf_counter()
        delta_section = delta_status = None
        with obs_span("graph_build"):
            if parsed.get("delta") is not None:
                entry, label, delta_section, delta_status = _resolve_delta(parsed)
                graph = entry.graph
            elif parsed["spec"] is not None:
                spec_dict = parsed["spec"]
                try:
                    spec = GraphSpec.make(spec_dict["kind"], **spec_dict.get("params", {}))
                    graph = spec.build()
                except ValueError as error:
                    raise ServiceError(400, str(error)) from None
                label = spec.label
            else:
                try:
                    graph = graph_from_dict(parsed["graph"], validate=True)
                except (PortLabelingError, KeyError, TypeError, ValueError) as error:
                    raise ServiceError(400, f"invalid graph: {error}") from None
                label = graph.name or "submitted"
        if graph.num_nodes > MAX_SUBMITTED_NODES:
            raise ServiceError(400, f"graph too large (> {MAX_SUBMITTED_NODES} nodes)")
        sweep = SweepSpec.make(
            (),
            tasks=parsed["tasks"],
            max_depth=parsed["max_depth"],
            max_states=parsed["max_states"],
        )
        record = evaluate_graph(graph, sweep, label=label)
        indices = {task.value: record[f"psi_{task.value}"] for task in parsed["tasks"]}
        limited = [code for code in record.get("search_limited", "").split(",") if code]
        response: Dict[str, Any] = {
            "graph": label,
            "fingerprint": graph.fingerprint(),
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "max_degree": graph.max_degree,
            "feasible": record["feasible"],
            "indices": indices,
            "search_limited": limited,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
        }
        if parsed["advice"]:
            from ..advice.map_advice import encode_map_advice  # lazy import, heavy layer

            response["advice"] = {"map": encode_map_advice(graph)}
        if delta_status is not None:
            delta_status.apply("evaluated")
            response["delta"] = delta_section
            # volatile by design: a first submission replays, a repeat hits
            # the cache -- the result bytes are identical either way
            response["delta_path"] = list(delta_status.events)
        sp.add_tags({"graph": label, "n": graph.num_nodes, "advice": parsed["advice"]})
        return response


class ElectionService:
    """The query front end (see the module docstring).

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ArtifactStore`; attached to the
        process-wide refinement cache (thread backend) or to every shard
        worker's cache (process backend) so queries read and write through
        it.
    workers:
        Size of the bounded compute pool (thread backend); also the default
        shard count of the process backend when ``shards`` is not given.
    default_max_states:
        PPE/CPPE search budget applied when a query does not set one.
    compute_delay:
        Artificial seconds added to every computation, off the event loop.
        Used by the latency benchmark and the coalescing tests to make
        overlap deterministic; leave at ``0`` in production.
    backend:
        ``"thread"`` (default) or ``"process"`` -- see
        :mod:`repro.service.workers`.  If the process backend cannot be set
        up on this platform the service falls back to the thread backend
        with a warning rather than failing to start.
    shards:
        Process-backend worker count (defaults to ``workers``).
    recycle_after:
        Process-backend: retire a shard worker after this many tasks
        (defaults to :data:`repro.service.workers.DEFAULT_RECYCLE_AFTER`).
    hot_tier_bytes:
        When positive and a store is attached, serving is *traffic-shaped*:
        the store's in-process hot tier is enabled with this byte budget
        (repeat fingerprints decode from mmap'd residents instead of
        re-reading disk), and the refinement cache switches to the
        frequency-observing ``"second-touch"`` admission policy for the
        service's lifetime (restored by :meth:`close`).  Shard workers of
        the process backend get both via their bootstrap.  ``0`` (the
        default) keeps the historical cold-path behaviour.
    """

    def __init__(
        self,
        *,
        store: Optional[ArtifactStore] = None,
        workers: int = 4,
        default_max_states: int = 200_000,
        compute_delay: float = 0.0,
        backend: str = "thread",
        shards: Optional[int] = None,
        recycle_after: Optional[int] = None,
        hot_tier_bytes: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r} (choose 'thread' or 'process')")
        from . import workers as worker_backends  # deferred: workers.py imports this module

        self._store = store
        self._workers = workers
        self._default_max_states = default_max_states
        self._compute_delay = compute_delay
        self._closed = False
        hot = hot_tier_bytes if (hot_tier_bytes > 0 and store is not None) else 0
        self._hot_tier_bytes = hot
        self._prior_admission: Optional[str] = None
        if hot:
            store.enable_hot_tier(hot)
        self._backend: worker_backends.ComputeBackend
        if backend == "process":
            try:
                self._backend = worker_backends.ProcessShardBackend(
                    shards=shards if shards is not None else workers,
                    store_path=store.root if store is not None else None,
                    compute_delay=compute_delay,
                    recycle_after=recycle_after,
                    hot_tier_bytes=hot,
                    cache_admission="second-touch" if hot else None,
                )
            except (ImportError, NotImplementedError, OSError) as error:
                # e.g. a platform without working multiprocessing primitives;
                # degrade to the GIL-bound thread pool instead of not serving
                print(
                    f"repro serve: process backend unavailable ({error}); "
                    f"falling back to the thread backend",
                    file=sys.stderr,
                )
                self._backend = worker_backends.ThreadBackend(
                    workers=workers, compute_delay=compute_delay
                )
        else:
            self._backend = worker_backends.ThreadBackend(
                workers=workers, compute_delay=compute_delay
            )
        if store is not None and self._backend.name == "thread":
            # thread backend computes in this process: back the process-wide
            # cache; shard workers attach their own cache in bootstrap instead
            refinement_cache.attach_store(store)
            if hot:
                self._prior_admission = refinement_cache.set_admission("second-touch")
        self._inflight: Dict[str, asyncio.Future] = {}
        self._counters = {
            "requests": 0,
            "queries": 0,
            "coalesced": 0,
            "computed": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[ArtifactStore]:
        return self._store

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def hot_tier_bytes(self) -> int:
        """The hot-tier byte budget serving was configured with (0 = cold)."""
        return self._hot_tier_bytes

    @property
    def backend(self) -> str:
        """The active compute backend name (``"thread"`` or ``"process"``)."""
        return self._backend.name

    @property
    def concurrency(self) -> int:
        """How many computations can genuinely overlap on the backend."""
        return self._backend.concurrency

    @property
    def in_flight(self) -> int:
        """Coalescing futures currently unresolved (for /metrics)."""
        return len(self._inflight)

    def counter(self, name: str) -> int:
        """One service counter by name (for /metrics gauge callbacks)."""
        return self._counters[name]

    def queue_depth(self) -> int:
        """Backend computations accepted but not yet running (for /metrics)."""
        try:
            return self._backend.queue_depth()
        except AttributeError:  # pragma: no cover - duck-typed test backends
            return 0

    def backend_telemetry(self) -> Dict[str, int]:
        """Parent-side backend lifecycle counters (for /metrics); cheap."""
        try:
            return self._backend.telemetry()
        except AttributeError:  # pragma: no cover - duck-typed test backends
            return {}

    def backend_heat(self) -> list:
        """Per-shard heat rows (busy seconds, dispatched, queue depth).

        Parent-side counters only -- safe to call from a /metrics scrape.
        The thread backend has no shards and reports an empty list.
        """
        try:
            return self._backend.heat()
        except AttributeError:  # pragma: no cover - duck-typed test backends
            return []

    def observed_counters(self) -> Dict[str, Dict[str, int]]:
        """Kernel-search and store counters, aggregated where computing happens.

        For /metrics: unlike :meth:`stats`, this never round-trips a worker
        pipe.  The thread backend reads this process's live counters; the
        process backend sums the per-job counter snapshots its workers
        piggyback on every reply (plus the counters of cleanly retired
        workers), so the scrape lags a busy shard by at most one job.  The
        parent's own store-handle counters are folded in either way.
        """
        try:
            observed = self._backend.observed_counters()
        except AttributeError:  # pragma: no cover - duck-typed test backends
            observed = {"search": dict(search_statistics()), "store": {}}
        store_section = observed.setdefault("store", {})
        if self._store is not None:
            for key, value in self._store.stats().items():
                if key != "records" and isinstance(value, int):
                    store_section[key] = store_section.get(key, 0) + value
        return observed

    def count_request(self) -> None:
        """Tally one HTTP request (any endpoint); called by the server."""
        self._counters["requests"] += 1

    def close(self) -> None:
        """Shut the compute backend down and detach this service's store.

        Idempotent and deterministic: the thread pool is joined (queued
        work cancelled), shard worker processes are asked to exit and then
        joined/terminated, so ``repro serve`` exits without lingering
        non-daemon threads or zombie workers.  The store attachment lives on
        the process-wide refinement cache, so leaving it behind would make
        later, unrelated work in this process silently read from and
        persist into this service's directory.
        """
        if self._closed:
            return
        self._closed = True
        self._backend.close()
        if self._prior_admission is not None:
            refinement_cache.set_admission(self._prior_admission)
            self._prior_admission = None
        if self._store is not None:
            # release the hot tier's mapped buffers; already-decoded records
            # stay valid (decode copies out of the mapping) and the store
            # itself remains usable cold
            self._store.close()
            if refinement_cache.store is self._store:
                refinement_cache.attach_store(None)

    # ------------------------------------------------------------------ #
    # /election
    # ------------------------------------------------------------------ #
    async def query(self, payload: Any) -> Dict[str, Any]:
        """Answer one election query, coalescing identical in-flight ones."""
        self._counters["queries"] += 1
        parsed, key, route_key = self._parse(payload)
        existing = self._inflight.get(key)
        if existing is not None:
            self._counters["coalesced"] += 1
            with obs_span("coalesce_wait"):
                status, value = await existing
            if status == "error":
                raise value
            return dict(value, coalesced=True)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            with obs_span("compute", tags={"backend": self._backend.name}):
                result = await self._backend.submit(route_key, parsed)
        except Exception as error:
            self._counters["errors"] += 1
            future.set_result(("error", error))
            raise
        except BaseException:
            # cancellation (e.g. a batch item whose client disconnected):
            # resolve the coalescing future so drafting waiters get a clean
            # error instead of hanging on a future nobody will complete
            future.set_result(
                ("error", ServiceError(503, "computation cancelled"))
            )
            raise
        else:
            self._counters["computed"] += 1
            future.set_result(("ok", result))
            return dict(result, coalesced=False)
        finally:
            del self._inflight[key]

    def _parse(self, payload: Any) -> Tuple[Dict[str, Any], str, str]:
        """Validate a query body; returns (parsed fields, coalescing key, route key).

        Parsing is cheap (no graph is built here): the heavy work -- graph
        construction, validation, refinement, searches -- happens on the
        compute backend.  The coalescing key digests the canonical JSON of
        every field that determines the answer; the route key digests only
        the graph-identifying part (``graph``/``spec``), so the process
        backend sends *all* queries about one submitted graph -- whatever
        their task/budget parameters -- to the same shard, whose cache
        already holds that graph's refinement.
        """
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        graph_dict = payload.get("graph")
        spec_dict = payload.get("spec")
        base_ref = payload.get("base")
        delta_ops = payload.get("delta")
        given = sum(1 for value in (graph_dict, spec_dict, base_ref) if value is not None)
        if given != 1:
            raise ServiceError(400, "provide exactly one of 'graph', 'spec' or 'base'")
        if base_ref is not None:
            if isinstance(base_ref, dict):
                if "kind" not in base_ref:
                    raise ServiceError(400, "'base' spec must be an object with a 'kind'")
            elif not isinstance(base_ref, str):
                raise ServiceError(
                    400, "'base' must be a generator spec object or a fingerprint string"
                )
            if not isinstance(delta_ops, list) or not delta_ops:
                raise ServiceError(400, "'base' requires a non-empty 'delta' op list")
        elif delta_ops is not None:
            raise ServiceError(400, "'delta' requires a 'base' to apply to")
        if spec_dict is not None:
            if not isinstance(spec_dict, dict) or "kind" not in spec_dict:
                raise ServiceError(400, "'spec' must be an object with a 'kind'")
        elif graph_dict is not None and not isinstance(graph_dict, dict):
            raise ServiceError(400, "'graph' must be the adjacency dict format")
        task_codes = payload.get("tasks")
        if task_codes is None:
            tasks = list(Task.ordered())
        else:
            try:
                tasks = [Task(code) for code in task_codes]
            except (ValueError, TypeError):
                raise ServiceError(
                    400,
                    f"unknown task in {task_codes!r} "
                    f"(expected codes among {[t.value for t in Task.ordered()]})",
                ) from None
        max_depth = payload.get("max_depth")
        if max_depth is not None and (not isinstance(max_depth, int) or max_depth < 0):
            raise ServiceError(400, "'max_depth' must be a non-negative integer")
        max_states = payload.get("max_states", self._default_max_states)
        if not isinstance(max_states, int) or max_states < 1:
            raise ServiceError(400, "'max_states' must be a positive integer")
        include_advice = bool(payload.get("advice", False))
        parsed = {
            "graph": graph_dict,
            "spec": spec_dict,
            "base": base_ref,
            "delta": delta_ops,
            "tasks": tasks,
            "max_depth": max_depth,
            "max_states": max_states,
            "advice": include_advice,
        }
        canonical = json.dumps(
            {
                "graph": graph_dict,
                "spec": spec_dict,
                "base": base_ref,
                "delta": delta_ops,
                "tasks": [task.value for task in tasks],
                "max_depth": max_depth,
                "max_states": max_states,
                "advice": include_advice,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        key = hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
        # delta items route on the BASE alone: every mutation of one base
        # lands on the shard whose cache holds that base (and its earlier
        # mutations) warm
        route_canonical = json.dumps(
            {"graph": graph_dict, "spec": spec_dict, "base": base_ref},
            sort_keys=True,
            separators=(",", ":"),
        )
        route_key = hashlib.blake2b(
            route_canonical.encode("utf-8"), digest_size=16
        ).hexdigest()
        return parsed, key, route_key

    # ------------------------------------------------------------------ #
    # /stats
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Counters of every layer: service, backend, cache, store, searches.

        ``cache`` and ``search`` come from wherever the computing actually
        happens: the calling process for the thread backend, the aggregated
        (summed) shard workers for the process backend -- so invariants like
        "a store-warm replay performs zero refinement passes" are checked
        against the same numbers regardless of backend.
        """
        from ..kernel import active_backend

        backend_stats = self._backend.stats()
        payload: Dict[str, Any] = {
            "service": dict(
                self._counters,
                in_flight=len(self._inflight),
                workers=self._workers,
                backend=self._backend.name,
                concurrency=self._backend.concurrency,
                compute_delay=self._compute_delay,
                kernel_backend=active_backend(),
                hot_tier_bytes=self._hot_tier_bytes,
            ),
            "cache": backend_stats["cache"],
            "search": backend_stats["search"],
        }
        if "shards" in backend_stats:
            payload["shards"] = backend_stats["shards"]
        if self._store is not None:
            # counter keys (hits, puts, put_spills, manifest_rebuilds, ...)
            # sum the parent handle with the shard workers' handles; the
            # record count is the shared manifest's and is not summed
            store_section = dict(self._store.stats())
            for key, value in backend_stats.get("store", {}).items():
                if key != "records" and isinstance(value, int):
                    store_section[key] = store_section.get(key, 0) + value
            payload["store"] = store_section
        return payload
