"""The election-query service: coalesced, bounded, store-backed computation.

:class:`ElectionService` is the transport-agnostic core behind
``repro-leader-election serve``.  A query names a graph -- either a full
adjacency (the JSON dict format of :mod:`repro.portgraph.io`) or a generator
spec from the runner's graph-kind registry -- plus optional task and search
parameters, and the answer is feasibility, the requested ψ_Z indices and
(optionally) the bit-exact full-map advice string.  Everything returned is a
pure function of the graph and parameters, which the service exploits twice:

* **Request coalescing.**  Identical queries in flight share one
  computation: the first request registers a future keyed by a digest of the
  canonical request body, duplicates await it, and the ``coalesced`` flag of
  the response (and the ``/stats`` counter) records the dedup.  Differently
  labeled isomorphic submissions hash differently, but they still converge
  in the layers below (refinement cache buckets, store fingerprints).
* **A bounded worker pool.**  Cold computations run on a fixed-size thread
  pool via ``run_in_executor``, so the event loop keeps accepting
  connections and serving ``/stats`` while searches run; at most ``workers``
  computations are in flight, the rest queue.

With a store attached the service is a thin front end over the durable
layer: queries warm-start from records persisted by any earlier process and
write their own results through, so a service restart costs nothing and a
fleet of service processes shares one artifact set.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..core import Task, search_statistics
from ..portgraph.io import graph_from_dict
from ..portgraph.validation import PortLabelingError
from ..runner import GraphSpec, SweepSpec, evaluate_graph, refinement_cache
from ..store import ArtifactStore

__all__ = ["ElectionService", "ServiceError", "deterministic_response"]

#: Hard cap on submitted adjacency sizes (nodes); protects the joint
#: searches and the event loop from accidental monster submissions.
MAX_SUBMITTED_NODES = 100_000

#: Response fields that legitimately vary between otherwise identical
#: queries (wall time, whether this request drafted behind another).  The
#: batch endpoint strips them so streamed items are byte-identical to what
#: sequential ``POST /election`` calls return minus exactly this set, and
#: the CI gate compares through the same helper.
VOLATILE_RESPONSE_FIELDS = frozenset({"elapsed_ms", "coalesced"})


def deterministic_response(response: Dict[str, Any]) -> Dict[str, Any]:
    """``response`` without the volatile fields: the pure-function-of-the-graph part."""
    return {key: value for key, value in response.items() if key not in VOLATILE_RESPONSE_FIELDS}


class ServiceError(Exception):
    """A client error with an HTTP status (bad graph, bad parameters)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ElectionService:
    """The query front end (see the module docstring).

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ArtifactStore`; attached to the
        process-wide refinement cache so queries read and write through it.
    workers:
        Size of the bounded compute pool.
    default_max_states:
        PPE/CPPE search budget applied when a query does not set one.
    compute_delay:
        Artificial seconds added to every computation, off the event loop.
        Used by the latency benchmark and the coalescing tests to make
        overlap deterministic; leave at ``0`` in production.
    """

    def __init__(
        self,
        *,
        store: Optional[ArtifactStore] = None,
        workers: int = 4,
        default_max_states: int = 200_000,
        compute_delay: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._store = store
        if store is not None:
            refinement_cache.attach_store(store)
        self._workers = workers
        self._default_max_states = default_max_states
        self._compute_delay = compute_delay
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._counters = {
            "requests": 0,
            "queries": 0,
            "coalesced": 0,
            "computed": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[ArtifactStore]:
        return self._store

    @property
    def workers(self) -> int:
        return self._workers

    def count_request(self) -> None:
        """Tally one HTTP request (any endpoint); called by the server."""
        self._counters["requests"] += 1

    def close(self) -> None:
        """Shut the worker pool down and detach this service's store.

        The store attachment lives on the process-wide refinement cache, so
        leaving it behind would make later, unrelated work in this process
        silently read from and persist into this service's directory.
        """
        self._executor.shutdown(wait=False)
        if self._store is not None and refinement_cache.store is self._store:
            refinement_cache.attach_store(None)

    # ------------------------------------------------------------------ #
    # /election
    # ------------------------------------------------------------------ #
    async def query(self, payload: Any) -> Dict[str, Any]:
        """Answer one election query, coalescing identical in-flight ones."""
        self._counters["queries"] += 1
        parsed, key = self._parse(payload)
        existing = self._inflight.get(key)
        if existing is not None:
            self._counters["coalesced"] += 1
            status, value = await existing
            if status == "error":
                raise value
            return dict(value, coalesced=True)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(self._executor, self._compute, parsed)
        except Exception as error:
            self._counters["errors"] += 1
            future.set_result(("error", error))
            raise
        except BaseException:
            # cancellation (e.g. a batch item whose client disconnected):
            # resolve the coalescing future so drafting waiters get a clean
            # error instead of hanging on a future nobody will complete
            future.set_result(
                ("error", ServiceError(503, "computation cancelled"))
            )
            raise
        else:
            future.set_result(("ok", result))
            return dict(result, coalesced=False)
        finally:
            del self._inflight[key]

    def _parse(self, payload: Any) -> Tuple[Dict[str, Any], str]:
        """Validate a query body; returns (parsed fields, coalescing key).

        Parsing is cheap (no graph is built here): the heavy work -- graph
        construction, validation, refinement, searches -- happens on the
        worker pool.  The coalescing key digests the canonical JSON of the
        fields that determine the answer.
        """
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        graph_dict = payload.get("graph")
        spec_dict = payload.get("spec")
        if (graph_dict is None) == (spec_dict is None):
            raise ServiceError(400, "provide exactly one of 'graph' or 'spec'")
        if spec_dict is not None:
            if not isinstance(spec_dict, dict) or "kind" not in spec_dict:
                raise ServiceError(400, "'spec' must be an object with a 'kind'")
        elif not isinstance(graph_dict, dict):
            raise ServiceError(400, "'graph' must be the adjacency dict format")
        task_codes = payload.get("tasks")
        if task_codes is None:
            tasks = list(Task.ordered())
        else:
            try:
                tasks = [Task(code) for code in task_codes]
            except (ValueError, TypeError):
                raise ServiceError(
                    400,
                    f"unknown task in {task_codes!r} "
                    f"(expected codes among {[t.value for t in Task.ordered()]})",
                ) from None
        max_depth = payload.get("max_depth")
        if max_depth is not None and (not isinstance(max_depth, int) or max_depth < 0):
            raise ServiceError(400, "'max_depth' must be a non-negative integer")
        max_states = payload.get("max_states", self._default_max_states)
        if not isinstance(max_states, int) or max_states < 1:
            raise ServiceError(400, "'max_states' must be a positive integer")
        include_advice = bool(payload.get("advice", False))
        parsed = {
            "graph": graph_dict,
            "spec": spec_dict,
            "tasks": tasks,
            "max_depth": max_depth,
            "max_states": max_states,
            "advice": include_advice,
        }
        canonical = json.dumps(
            {
                "graph": graph_dict,
                "spec": spec_dict,
                "tasks": [task.value for task in tasks],
                "max_depth": max_depth,
                "max_states": max_states,
                "advice": include_advice,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        key = hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
        return parsed, key

    def _compute(self, parsed: Dict[str, Any]) -> Dict[str, Any]:
        """Build the graph and answer the query (runs on the worker pool)."""
        if self._compute_delay:
            time.sleep(self._compute_delay)
        started = time.perf_counter()
        if parsed["spec"] is not None:
            spec_dict = parsed["spec"]
            try:
                spec = GraphSpec.make(spec_dict["kind"], **spec_dict.get("params", {}))
                graph = spec.build()
            except ValueError as error:
                raise ServiceError(400, str(error)) from None
            label = spec.label
        else:
            try:
                graph = graph_from_dict(parsed["graph"], validate=True)
            except (PortLabelingError, KeyError, TypeError, ValueError) as error:
                raise ServiceError(400, f"invalid graph: {error}") from None
            label = graph.name or "submitted"
        if graph.num_nodes > MAX_SUBMITTED_NODES:
            raise ServiceError(400, f"graph too large (> {MAX_SUBMITTED_NODES} nodes)")
        sweep = SweepSpec.make(
            (),
            tasks=parsed["tasks"],
            max_depth=parsed["max_depth"],
            max_states=parsed["max_states"],
        )
        record = evaluate_graph(graph, sweep, label=label)
        self._counters["computed"] += 1
        indices = {task.value: record[f"psi_{task.value}"] for task in parsed["tasks"]}
        limited = [code for code in record.get("search_limited", "").split(",") if code]
        response: Dict[str, Any] = {
            "graph": label,
            "fingerprint": graph.fingerprint(),
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "max_degree": graph.max_degree,
            "feasible": record["feasible"],
            "indices": indices,
            "search_limited": limited,
            "elapsed_ms": round((time.perf_counter() - started) * 1000.0, 3),
        }
        if parsed["advice"]:
            from ..advice.map_advice import encode_map_advice  # lazy import, heavy layer

            response["advice"] = {"map": encode_map_advice(graph)}
        return response

    # ------------------------------------------------------------------ #
    # /stats
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Counters of every layer: service, cache, store, joint searches."""
        payload: Dict[str, Any] = {
            "service": dict(
                self._counters,
                in_flight=len(self._inflight),
                workers=self._workers,
                compute_delay=self._compute_delay,
            ),
            "cache": refinement_cache.stats(),
            "search": search_statistics(),
        }
        if self._store is not None:
            payload["store"] = self._store.stats()
        return payload
