"""Shared protocol state tables of the service's concurrency lifecycles.

The service has two protocol surfaces with real lifecycle state: the batch
streamer (window slots, in-order emits, cancellation) and the shard worker
(spawn/dispatch/reply/recycle/crash/close).  Every lifecycle bug fixed so
far -- sweeps stuck ``running``, leaked window slots, waiters hung on a
worker that silently died -- was a transition that the code performed but
the protocol does not allow.

This module is the single source of truth for those transitions.  The
production code (:mod:`repro.service.batch`, :mod:`repro.service.workers`)
drives its state through the tables below, so an illegal transition raises
:class:`ProtocolViolation` at the exact call site instead of surfacing ten
seconds later as a hung client; and the bounded model checker
(:mod:`repro.verify`) imports the *same* tables to explore every
interleaving of the environment (client disconnects, worker crashes,
recycle thresholds) exhaustively.  The model is the implementation's state
logic, not a parallel copy: a transition added here is simultaneously
enforced in production and explored by ``repro verify``.

Sweep lifecycle (:data:`SWEEP_TRANSITIONS`)::

    running --item_resolved--> running     one NDJSON line emitted
    running --completed-----> done         trailer reached, all items out
    running --aborted-------> cancelled    client gone / emit failed / error

``done`` and ``cancelled`` are terminal: nothing transitions out of them,
so double-finalisation (the PR-5 bug family) is a :class:`ProtocolViolation`
rather than a silently overwritten state.

Window ledger (:func:`window_acquire` / :func:`window_release`): the
bounded in-flight window is a conserved resource.  ``acquire`` past the
capacity and ``release`` of a free slot are both violations; a terminal
sweep must have released every slot it acquired.

Worker lifecycle (:data:`WORKER_TRANSITIONS`)::

    down --spawn----> idle        process started, pipe open
    idle --dispatch-> busy        job on the pipe
    busy --reply----> idle        response received, job counted
    idle --retire---> down        recycle threshold: farewell absorbed, joined
    idle --crash----> down        died between jobs (found at next ensure)
    busy --crash----> down        died mid-job (broken pipe)
    *    --close----> closed      shutdown (graceful or terminate)

``closed`` absorbs ``crash`` and ``close`` (a worker terminated during
shutdown surfaces as a broken pipe in the caller it unblocks; ``close`` is
idempotent) but nothing else -- dispatching into a closed shard is a
violation, not a queue.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "DELTA_DONE",
    "DELTA_EVALUATING",
    "DELTA_FAILED",
    "DELTA_INVALIDATING",
    "DELTA_RECEIVED",
    "DELTA_RECOMPUTING",
    "DELTA_REPLAYING",
    "DELTA_RESOLVING",
    "DELTA_STATES",
    "DELTA_TERMINAL",
    "DELTA_TRANSITIONS",
    "DeltaStatus",
    "ProtocolViolation",
    "SWEEP_CANCELLED",
    "SWEEP_DONE",
    "SWEEP_RUNNING",
    "SWEEP_STATES",
    "SWEEP_TERMINAL",
    "SWEEP_TRANSITIONS",
    "WORKER_BUSY",
    "WORKER_CLOSED",
    "WORKER_DOWN",
    "WORKER_IDLE",
    "WORKER_STATES",
    "WORKER_TRANSITIONS",
    "WindowLedger",
    "delta_transition",
    "sweep_transition",
    "window_acquire",
    "window_release",
    "worker_transition",
]


class ProtocolViolation(AssertionError):
    """A state transition the protocol does not allow.

    Raised by the transition functions below -- in production when the
    service code attempts an illegal step, and inside the model checker
    when an explored interleaving drives a model into one.
    """


# --------------------------------------------------------------------------- #
# sweep (batch stream) lifecycle
# --------------------------------------------------------------------------- #
SWEEP_RUNNING = "running"
SWEEP_DONE = "done"
SWEEP_CANCELLED = "cancelled"

SWEEP_STATES = (SWEEP_RUNNING, SWEEP_DONE, SWEEP_CANCELLED)
SWEEP_TERMINAL = frozenset({SWEEP_DONE, SWEEP_CANCELLED})

#: ``(state, event) -> state``.  Events: ``item_resolved`` (one result line
#: accounted), ``completed`` (all items emitted), ``aborted`` (client gone,
#: emit failed, or the stream died for any other reason).
SWEEP_TRANSITIONS: Dict[Tuple[str, str], str] = {
    (SWEEP_RUNNING, "item_resolved"): SWEEP_RUNNING,
    (SWEEP_RUNNING, "completed"): SWEEP_DONE,
    (SWEEP_RUNNING, "aborted"): SWEEP_CANCELLED,
}


def sweep_transition(state: str, event: str) -> str:
    """The sweep state after ``event``; raises on an illegal transition."""
    try:
        return SWEEP_TRANSITIONS[(state, event)]
    except KeyError:
        raise ProtocolViolation(
            f"sweep protocol: event {event!r} is not allowed in state {state!r}"
        ) from None


# --------------------------------------------------------------------------- #
# bounded in-flight window accounting
# --------------------------------------------------------------------------- #
def window_acquire(in_flight: int, capacity: int) -> int:
    """One more item past the gate; raises if the window bound would break."""
    if not 0 <= in_flight < capacity:
        raise ProtocolViolation(
            f"window protocol: acquire with {in_flight} of {capacity} slots in flight"
        )
    return in_flight + 1


def window_release(in_flight: int) -> int:
    """One slot handed back; raises on releasing a slot nobody holds."""
    if in_flight <= 0:
        raise ProtocolViolation("window protocol: release with no slot in flight")
    return in_flight - 1


class WindowLedger:
    """Mutable window bookkeeping for production code, over the pure functions.

    The asyncio semaphore *enforces* the bound; the ledger *audits* it --
    acquire/release imbalances (the leaked-slot bug family) surface as
    :class:`ProtocolViolation` at the faulty call site.  The checker's batch
    model evolves the same ``in_flight`` integer through the same
    :func:`window_acquire`/:func:`window_release`.
    """

    __slots__ = ("capacity", "in_flight", "peak")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be at least 1")
        self.capacity = capacity
        self.in_flight = 0
        self.peak = 0

    def acquire(self) -> None:
        self.in_flight = window_acquire(self.in_flight, self.capacity)
        self.peak = max(self.peak, self.in_flight)

    def release(self) -> None:
        self.in_flight = window_release(self.in_flight)

    def assert_drained(self) -> None:
        """Every acquired slot must be back (checked on clean completion)."""
        if self.in_flight != 0:
            raise ProtocolViolation(
                f"window protocol: sweep finished with {self.in_flight} slots leaked"
            )


# --------------------------------------------------------------------------- #
# delta-item lifecycle
# --------------------------------------------------------------------------- #
DELTA_RECEIVED = "received"
DELTA_RESOLVING = "resolving"
DELTA_INVALIDATING = "invalidating"
DELTA_REPLAYING = "replaying"
DELTA_RECOMPUTING = "recomputing"
DELTA_EVALUATING = "evaluating"
DELTA_DONE = "done"
DELTA_FAILED = "failed"

DELTA_STATES = (
    DELTA_RECEIVED,
    DELTA_RESOLVING,
    DELTA_INVALIDATING,
    DELTA_REPLAYING,
    DELTA_RECOMPUTING,
    DELTA_EVALUATING,
    DELTA_DONE,
    DELTA_FAILED,
)
DELTA_TERMINAL = frozenset({DELTA_DONE, DELTA_FAILED})

#: ``(state, event) -> state`` for one ``{"base": ..., "delta": [...]}`` item.
#:
#: The ordering this table encodes is the memo-invalidation discipline: a
#: ``base_hit`` item MUST pass ``memos_invalidated`` before ``replayed`` --
#: the base's ψ/advice memos are valid for the *base* graph only, so an
#: entry replayed from it starts memo-clean (the PR-10 blind-spot fix in
#: ``RefinementCache``).  There is deliberately no edge from
#: ``invalidating`` or ``resolving`` straight to ``replaying``'s successor:
#: skipping invalidation is the seeded mutant ``repro verify`` must catch.
#: ``cache_hit`` (the exact mutated graph already cached/stored) jumps to
#: ``evaluating`` because that entry's memos were scoped correctly when it
#: was created; ``base_miss`` (a base fingerprint the store does not hold)
#: falls back to ``recomputing``, which can only succeed when the item
#: carries enough information to build the mutated graph cold.
DELTA_TRANSITIONS: Dict[Tuple[str, str], str] = {
    (DELTA_RECEIVED, "lookup"): DELTA_RESOLVING,
    (DELTA_RESOLVING, "cache_hit"): DELTA_EVALUATING,
    (DELTA_RESOLVING, "base_hit"): DELTA_INVALIDATING,
    (DELTA_RESOLVING, "base_miss"): DELTA_RECOMPUTING,
    (DELTA_RESOLVING, "error"): DELTA_FAILED,
    (DELTA_INVALIDATING, "memos_invalidated"): DELTA_REPLAYING,
    (DELTA_INVALIDATING, "error"): DELTA_FAILED,
    (DELTA_REPLAYING, "replayed"): DELTA_EVALUATING,
    (DELTA_REPLAYING, "error"): DELTA_FAILED,
    (DELTA_RECOMPUTING, "recomputed"): DELTA_EVALUATING,
    (DELTA_RECOMPUTING, "error"): DELTA_FAILED,
    (DELTA_EVALUATING, "evaluated"): DELTA_DONE,
    (DELTA_EVALUATING, "error"): DELTA_FAILED,
}


def delta_transition(state: str, event: str) -> str:
    """The delta-item state after ``event``; raises on an illegal transition."""
    try:
        return DELTA_TRANSITIONS[(state, event)]
    except KeyError:
        raise ProtocolViolation(
            f"delta protocol: event {event!r} is not allowed in state {state!r}"
        ) from None


class DeltaStatus:
    """Mutable delta-item lifecycle for production code, over the pure table.

    The service's delta path (and the refinement cache, through the
    ``events`` hook of ``delta_entry``) advances one of these per item; an
    out-of-order step -- replaying before invalidating, evaluating a failed
    item -- raises :class:`ProtocolViolation` at the faulty call site.  The
    ``repro verify`` delta model evolves the same table exhaustively.
    """

    __slots__ = ("state", "events")

    def __init__(self) -> None:
        self.state = DELTA_RECEIVED
        self.events: list = []

    def apply(self, event: str) -> None:
        self.state = delta_transition(self.state, event)
        self.events.append(event)


# --------------------------------------------------------------------------- #
# shard worker lifecycle
# --------------------------------------------------------------------------- #
WORKER_DOWN = "down"
WORKER_IDLE = "idle"
WORKER_BUSY = "busy"
WORKER_CLOSED = "closed"

WORKER_STATES = (WORKER_DOWN, WORKER_IDLE, WORKER_BUSY, WORKER_CLOSED)

#: ``(state, event) -> state``.  See the module docstring for the diagram.
WORKER_TRANSITIONS: Dict[Tuple[str, str], str] = {
    (WORKER_DOWN, "spawn"): WORKER_IDLE,
    (WORKER_IDLE, "dispatch"): WORKER_BUSY,
    (WORKER_BUSY, "reply"): WORKER_IDLE,
    (WORKER_IDLE, "retire"): WORKER_DOWN,
    (WORKER_IDLE, "crash"): WORKER_DOWN,
    (WORKER_BUSY, "crash"): WORKER_DOWN,
    (WORKER_DOWN, "close"): WORKER_CLOSED,
    (WORKER_IDLE, "close"): WORKER_CLOSED,
    (WORKER_BUSY, "close"): WORKER_CLOSED,
    # a worker terminated by a timed-out close surfaces as a broken pipe in
    # the call it unblocks; close is idempotent
    (WORKER_CLOSED, "crash"): WORKER_CLOSED,
    (WORKER_CLOSED, "close"): WORKER_CLOSED,
}


def worker_transition(state: str, event: str) -> str:
    """The worker state after ``event``; raises on an illegal transition."""
    try:
        return WORKER_TRANSITIONS[(state, event)]
    except KeyError:
        raise ProtocolViolation(
            f"worker protocol: event {event!r} is not allowed in state {state!r}"
        ) from None
