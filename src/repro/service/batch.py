"""Batch/streaming election sweeps: ``POST /elections`` and ``GET /sweeps/<id>``.

One request, many graphs.  A batch body is either

* a JSON object ``{"items": [...]}`` (or a bare JSON array) of single-query
  payloads exactly as ``POST /election`` accepts them,
* NDJSON -- one single-query payload per line (a malformed line becomes a
  per-item error in the stream, not a request failure), or
* a JSON object ``{"sweep": {...}}`` with a *declarative* description that
  the server expands itself: a named seeded corpus
  (``{"corpus": "mixed", "count": 200, "seed": 7}``) or a generator grid
  (``{"grid": [{"kind": "random-regular", "sizes": [6, 8], "seeds": [0, 1]}]}``),
  sharing optional ``tasks`` / ``max_depth`` / ``max_states`` / ``advice``.

The response is an NDJSON stream (``application/x-ndjson``): a header line
naming the sweep id, one line per item **in submission order**, and a
trailer line with totals.  Consistency model:

* **Per-item results are byte-identical to sequential ``POST /election``
  calls** once the volatile fields (``elapsed_ms``, ``coalesced``) are
  dropped -- every item goes through the very same coalescing/query path,
  so identical in-flight items (within a batch or across requests)
  share one computation, and with a store attached every item warm-starts
  from and writes through the same artifact set.  ``ci_gate.py`` certifies
  both properties on a 200-graph mixed-corpus sweep.
* **Backpressure is a bounded in-flight window.**  At most ``window`` items
  are being computed or buffered ahead of the line the client has consumed;
  a slow reader therefore stalls the sweep's *computation*, not the event
  loop or memory.
* **Progress and resume.**  Sweep ids are content digests of the expanded
  item list.  ``GET /sweeps/<id>`` reports per-item status (persisted under
  ``<store>/sweeps/`` when a store is attached, so it survives restarts);
  because results write through the artifact store, *re-POSTing the same
  body* is the resume operation -- already-computed items replay from the
  store without a single refinement pass.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional

import time

from ..obs import current_context, record_span
from ..obs import span as obs_span
from .protocol import (
    SWEEP_RUNNING,
    SWEEP_TERMINAL,
    WindowLedger,
    sweep_transition,
)
from .service import ElectionService, ServiceError, deterministic_response

__all__ = [
    "BatchCoordinator",
    "BatchItem",
    "BatchRequest",
    "SweepStatus",
    "expand_sweep",
]

#: Hard cap on items per batch; a larger sweep is rejected with 400.
MAX_BATCH_ITEMS = 1024
#: Bounded in-flight window: default and hard cap.
DEFAULT_WINDOW = 8
MAX_WINDOW = 64
#: In-memory sweep statuses retained (oldest evicted first).
MAX_TRACKED_SWEEPS = 64


@dataclass
class BatchItem:
    """One unit of a batch: a single-query payload or a parse-time error."""

    index: int
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


@dataclass
class BatchRequest:
    """A parsed, expanded, validated batch."""

    sweep_id: str
    items: List[BatchItem]
    window: int


@dataclass
class SweepStatus:
    """Mutable progress record of one sweep (what ``GET /sweeps/<id>`` serves).

    The ``state`` field moves only through the shared sweep transition table
    (:data:`repro.service.protocol.SWEEP_TRANSITIONS`) via :meth:`apply` --
    the same table the ``repro verify`` model checker explores -- so an
    illegal lifecycle step (finalising twice, resolving items after the
    trailer) raises :class:`~repro.service.protocol.ProtocolViolation` at
    the call site instead of quietly corrupting the progress record.
    """

    sweep_id: str
    total: int
    window: int
    completed: int = 0
    ok: int = 0
    errors: int = 0
    state: str = SWEEP_RUNNING  # running | done | cancelled
    max_in_flight: int = 0
    item_status: List[str] = field(default_factory=list)
    #: Live window accounting (not serialised; dies with the stream).
    ledger: Optional[WindowLedger] = None

    def apply(self, event: str) -> None:
        """Advance the lifecycle state through the shared transition table."""
        self.state = sweep_transition(self.state, event)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep_id,
            "total": self.total,
            "window": self.window,
            "completed": self.completed,
            "ok": self.ok,
            "errors": self.errors,
            "state": self.state,
            "max_in_flight": self.max_in_flight,
            "items": "".join({"pending": ".", "ok": "+", "error": "!"}[s] for s in self.item_status),
            "resume": "re-POST the same body to /elections; finished items replay store-warm",
        }


def _sweep_digest(items: List[BatchItem]) -> str:
    canonical = json.dumps(
        [item.payload if item.error is None else {"malformed": item.error} for item in items],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=12).hexdigest()


# --------------------------------------------------------------------------- #
# declarative sweep expansion
# --------------------------------------------------------------------------- #
_SHARED_ITEM_KEYS = ("tasks", "max_depth", "max_states", "advice")


def expand_sweep(sweep: Any, *, max_items: int = MAX_BATCH_ITEMS) -> List[Dict[str, Any]]:
    """Expand a declarative sweep object into single-query item payloads.

    Validation errors (unknown corpus or kind, bad counts, oversized
    expansion) raise :class:`ServiceError` -- they fail the *request*;
    per-graph parameter problems are deliberately left to fail their *item*
    at build time instead.
    """
    from ..runner.spec import GraphSpec, graph_kinds, sized_graph_kinds
    from ..scenarios import corpus_specs

    if not isinstance(sweep, dict):
        raise ServiceError(400, "'sweep' must be an object")
    shared = {key: sweep[key] for key in _SHARED_ITEM_KEYS if key in sweep}
    specs: List[GraphSpec] = []
    if "corpus" in sweep:
        count = sweep.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise ServiceError(400, "'count' must be a positive integer")
        if count > max_items:
            raise ServiceError(
                400, f"oversized sweep: {count} items exceed the {max_items}-item limit"
            )
        seed = sweep.get("seed", 0)
        if not isinstance(seed, int):
            raise ServiceError(400, "'seed' must be an integer")
        try:
            specs = corpus_specs(count, seed=seed, corpus=sweep["corpus"])
        except ValueError as error:
            raise ServiceError(400, str(error)) from None
    elif "grid" in sweep:
        grid = sweep["grid"]
        if not isinstance(grid, list) or not grid:
            raise ServiceError(400, "'grid' must be a non-empty list of generator entries")
        sized = sized_graph_kinds()
        for entry in grid:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ServiceError(400, "each grid entry needs a 'kind'")
            kind = entry["kind"]
            if kind not in graph_kinds():
                raise ServiceError(
                    400, f"unknown graph kind {kind!r}; known: {', '.join(graph_kinds())}"
                )
            params = entry.get("params", {})
            if not isinstance(params, dict):
                raise ServiceError(400, "'params' must be an object")
            sizes = entry.get("sizes", [None])
            seeds = entry.get("seeds", [None])
            if not isinstance(sizes, list) or not isinstance(seeds, list):
                raise ServiceError(400, "'sizes' and 'seeds' must be lists")
            if sizes != [None] and kind not in sized:
                raise ServiceError(
                    400, f"kind {kind!r} is not a single-size generator; use 'params'"
                )
            for size in sizes:
                for seed in seeds:
                    expanded = dict(params)
                    if size is not None:
                        expanded[sized[kind]] = size
                    if seed is not None:
                        expanded["seed"] = seed
                    try:
                        specs.append(GraphSpec.make(kind, **expanded))
                    except ValueError as error:
                        raise ServiceError(400, str(error)) from None
                    if len(specs) > max_items:
                        raise ServiceError(
                            400,
                            f"oversized sweep: grid expands past the {max_items}-item limit",
                        )
    else:
        raise ServiceError(400, "'sweep' needs either 'corpus' or 'grid'")
    return [dict(shared, spec=spec.to_dict()) for spec in specs]


# --------------------------------------------------------------------------- #
# the coordinator
# --------------------------------------------------------------------------- #
class BatchCoordinator:
    """Parses, schedules and streams batches for one :class:`ElectionService`."""

    def __init__(
        self,
        service: ElectionService,
        *,
        max_items: int = MAX_BATCH_ITEMS,
        default_window: Optional[int] = None,
    ) -> None:
        self._service = service
        self._max_items = max_items
        # sized to the backend's genuine overlap: thread-pool width, or the
        # shard count when the service runs the process backend
        self._default_window = default_window or min(
            MAX_WINDOW, max(DEFAULT_WINDOW, 2 * service.concurrency)
        )
        self._sweeps: "OrderedDict[str, SweepStatus]" = OrderedDict()
        self._lock = threading.Lock()
        self._counters = {"batches": 0, "batch_items": 0, "batch_errors": 0, "cancelled": 0}

    # ------------------------------------------------------------------ #
    # parsing
    # ------------------------------------------------------------------ #
    def prepare(self, body: bytes) -> BatchRequest:
        """Parse and expand a batch body (raises :class:`ServiceError`)."""
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            raise ServiceError(400, "request body is not valid UTF-8") from None
        if not text.strip():
            raise ServiceError(400, "empty batch")
        window: Optional[int] = None
        items: List[BatchItem] = []
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            # NDJSON: one item payload per line; malformed lines fail their item
            for line in filter(None, (line.strip() for line in text.splitlines())):
                index = len(items)
                try:
                    parsed = json.loads(line)
                except json.JSONDecodeError as error:
                    items.append(BatchItem(index, error=f"malformed NDJSON line: {error}"))
                    continue
                items.append(self._item_from(parsed, index))
        else:
            if isinstance(payload, list):
                raw_items = payload
            elif isinstance(payload, dict):
                has_items = payload.get("items") is not None
                has_sweep = payload.get("sweep") is not None
                if not has_items and not has_sweep and ("spec" in payload or "graph" in payload):
                    # a one-line NDJSON body parses as a plain JSON object;
                    # honour the NDJSON contract: it is a single-item batch
                    raw_items = [payload]
                elif has_items == has_sweep:
                    raise ServiceError(400, "provide exactly one of 'items' or 'sweep'")
                elif has_sweep:
                    window = payload.get("window")
                    raw_items = expand_sweep(payload["sweep"], max_items=self._max_items)
                else:
                    window = payload.get("window")
                    raw_items = payload["items"]
                    if not isinstance(raw_items, list):
                        raise ServiceError(400, "'items' must be a list")
            else:
                raise ServiceError(400, "batch body must be a JSON object, array or NDJSON")
            items = [self._item_from(raw, index) for index, raw in enumerate(raw_items)]
        if not items:
            raise ServiceError(400, "empty batch")
        if len(items) > self._max_items:
            raise ServiceError(
                400,
                f"oversized sweep: {len(items)} items exceed the {self._max_items}-item limit",
            )
        if window is None:
            window = self._default_window
        if not isinstance(window, int) or window < 1:
            raise ServiceError(400, "'window' must be a positive integer")
        window = min(window, MAX_WINDOW)
        return BatchRequest(sweep_id=_sweep_digest(items), items=items, window=window)

    @staticmethod
    def _item_from(raw: Any, index: int) -> BatchItem:
        if not isinstance(raw, dict):
            return BatchItem(index, error="item must be a JSON object")
        return BatchItem(index, payload=raw)

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    async def stream(
        self,
        request: BatchRequest,
        emit: Callable[[Dict[str, Any]], Awaitable[None]],
        *,
        trace: Optional[str] = None,
    ) -> None:
        """Compute the batch and emit NDJSON lines in item order.

        ``emit`` writes (and drains) one line; at most ``request.window``
        items are past their semaphore -- computing or waiting to be emitted
        -- at any instant, which is both the memory bound and the
        backpressure coupling to the client's read rate.  A failed ``emit``
        (client gone) cancels everything still pending.

        ``trace`` is the serving request's trace id; when given, every
        emitted line (header, items, trailer) carries it, so a stress
        failure or a production incident correlates one NDJSON stream with
        the server's ``/stats`` trace ring and its logs.

        The lifecycle state moves through the shared transition table and
        the window ledger audits every slot (see
        :mod:`repro.service.protocol`): a leaked slot or a double
        finalisation raises instead of hanging a waiter.
        """
        status = self._register(request)
        self._counters["batches"] += 1
        self._counters["batch_items"] += len(request.items)
        gate = asyncio.Semaphore(request.window)
        ledger = status.ledger
        assert ledger is not None
        # the trace context at stream entry (the serving request's root
        # span); item tasks inherit it via ensure_future, the aggregate
        # "emit" span is recorded against it manually at the end
        trace_context = current_context()
        stream_started = (time.time(), time.perf_counter())
        emit_seconds = 0.0

        def stamped(line: Dict[str, Any]) -> Dict[str, Any]:
            return line if trace is None else dict(line, trace_id=trace)

        async def emit_timed(line: Dict[str, Any]) -> None:
            nonlocal emit_seconds
            t0 = time.perf_counter()
            await emit(line)
            emit_seconds += time.perf_counter() - t0

        async def compute(item: BatchItem) -> Dict[str, Any]:
            with obs_span("item", tags={"index": item.index}):
                with obs_span("window_acquire"):
                    await gate.acquire()
                ledger.acquire()
                status.max_in_flight = ledger.peak
                if item.error is not None:
                    return {"index": item.index, "status": "error", "error": item.error}
                try:
                    result = await self._service.query(item.payload)
                except ServiceError as error:
                    return {"index": item.index, "status": "error", "error": error.message}
                except Exception as error:  # pragma: no cover - defensive
                    return {
                        "index": item.index,
                        "status": "error",
                        "error": f"internal error: {type(error).__name__}: {error}",
                    }
                return dict(
                    deterministic_response(result), index=item.index, status="ok"
                )

        tasks: List[asyncio.Future] = []
        emitted = 0
        try:
            # the header emit is *inside* the try: a client that disconnects
            # before reading anything must still leave the sweep record
            # "cancelled", not stuck in its streaming state forever
            await emit_timed(
                stamped(
                    {
                        "sweep": request.sweep_id,
                        "items": len(request.items),
                        "window": request.window,
                    }
                )
            )
            tasks = [asyncio.ensure_future(compute(item)) for item in request.items]
            for task in tasks:
                line = await task
                await emit_timed(stamped(line))
                emitted += 1
                ledger.release()
                gate.release()
                status.apply("item_resolved")
                status.completed += 1
                if line["status"] == "ok":
                    status.ok += 1
                else:
                    status.errors += 1
                    self._counters["batch_errors"] += 1
                status.item_status[line["index"]] = line["status"]
            status.apply("completed")
            ledger.assert_drained()
            await emit_timed(
                stamped(
                    {
                        "sweep": request.sweep_id,
                        "status": "done",
                        "ok": status.ok,
                        "errors": status.errors,
                    }
                )
            )
            # one aggregate span: duration is the summed await-time of every
            # emit of this stream (client-read backpressure), not wall time
            record_span(
                "emit",
                start_s=stream_started[0],
                duration_ms=emit_seconds * 1000.0,
                context=trace_context,
                tags={"lines": len(request.items) + 2, "sweep": request.sweep_id},
            )
        finally:
            if status.state not in SWEEP_TERMINAL:
                # any non-completion (failed emit, cancellation, worker
                # error) is a cancelled sweep; previously only exceptions
                # raised after the header left the loop marked this
                status.apply("aborted")
                self._counters["cancelled"] += 1
                for task in tasks:
                    task.cancel()
                # release the window slots of tasks whose computations
                # finished but whose lines were never emitted, so nothing
                # still blocked on the gate waits on a slot that cannot free
                for task in tasks[emitted:]:
                    if task.done() and not task.cancelled():
                        ledger.release()
                        gate.release()
            self._persist(status)

    # ------------------------------------------------------------------ #
    # sweep registry
    # ------------------------------------------------------------------ #
    def _register(self, request: BatchRequest) -> SweepStatus:
        status = SweepStatus(
            sweep_id=request.sweep_id,
            total=len(request.items),
            window=request.window,
            item_status=["pending"] * len(request.items),
            ledger=WindowLedger(request.window),
        )
        with self._lock:
            self._sweeps[request.sweep_id] = status
            self._sweeps.move_to_end(request.sweep_id)
            while len(self._sweeps) > MAX_TRACKED_SWEEPS:
                self._sweeps.popitem(last=False)
        return status

    def _sweep_path(self, sweep_id: str) -> Optional[str]:
        store = self._service.store
        if store is None:
            return None
        return os.path.join(store.root, "sweeps", f"{sweep_id}.json")

    def _persist(self, status: SweepStatus) -> None:
        """Write the sweep status through to the store directory (atomic)."""
        path = self._sweep_path(status.sweep_id)
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(status.to_dict(), handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)

    def sweep_status(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        """The progress record of ``sweep_id`` (memory first, then the store)."""
        with self._lock:
            status = self._sweeps.get(sweep_id)
        if status is not None:
            return status.to_dict()
        path = self._sweep_path(sweep_id)
        if path is not None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    return json.load(handle)
            except (OSError, ValueError):
                # OSError beyond FileNotFoundError covers ids that make bad
                # paths (e.g. `<existing>.json/x` -> ENOTDIR) and embedded
                # NULs (ValueError): unknown sweep, not a server error
                return None
        return None

    def sweep_ids(self) -> List[str]:
        """Known sweep ids: tracked in memory plus persisted in the store."""
        with self._lock:
            known = set(self._sweeps)
        store = self._service.store
        if store is not None:
            sweep_dir = os.path.join(store.root, "sweeps")
            if os.path.isdir(sweep_dir):
                known.update(
                    name[: -len(".json")]
                    for name in os.listdir(sweep_dir)
                    if name.endswith(".json")
                )
        return sorted(known)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            active = sum(1 for s in self._sweeps.values() if s.state == SWEEP_RUNNING)
            return dict(self._counters, tracked_sweeps=len(self._sweeps), active=active)

    def window_occupancy(self) -> int:
        """Window slots currently held across all running sweeps (for /metrics)."""
        with self._lock:
            return sum(
                s.ledger.in_flight
                for s in self._sweeps.values()
                if s.state == SWEEP_RUNNING and s.ledger is not None
            )
