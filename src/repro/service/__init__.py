"""Async query service over the election pipeline (``repro serve``).

The serving subsystem added in PR 3 sits at the very top of the layer
diagram: HTTP in, artifacts out.

* :mod:`repro.service.service` -- :class:`ElectionService`: parses queries,
  coalesces identical in-flight requests onto one future, runs cold
  computations on a bounded thread pool off the event loop, and reads/writes
  through the persistent :mod:`repro.store` via the shared refinement cache.
* :mod:`repro.service.server` -- :class:`ElectionServer`: a dependency-free
  asyncio HTTP/1.1 front end exposing ``POST /election``, ``GET /stats``
  and ``GET /healthz``, plus :func:`run_server`, the blocking entry point
  behind the ``serve`` CLI subcommand.

The service returns byte-identical indices and advice to the in-process API
for the same graphs -- every answer is a pure function of the graph, and the
service is only plumbing around the same cache entries.
"""

from .server import ElectionServer, run_server
from .service import ElectionService, ServiceError

__all__ = ["ElectionServer", "ElectionService", "ServiceError", "run_server"]
