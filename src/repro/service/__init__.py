"""Async query service over the election pipeline (``repro serve``).

The serving subsystem sits at the very top of the layer diagram: HTTP in,
artifacts out.

* :mod:`repro.service.service` -- :class:`ElectionService`: parses queries,
  coalesces identical in-flight requests onto one future, runs cold
  computations on a bounded thread pool off the event loop, and reads/writes
  through the persistent :mod:`repro.store` via the shared refinement cache.
* :mod:`repro.service.batch` -- :class:`BatchCoordinator`: whole sweeps per
  request (``POST /elections``): item lists, NDJSON bodies or declarative
  corpus/grid sweep specs, streamed back as NDJSON in item order under a
  bounded in-flight window, with ``GET /sweeps/<id>`` progress records
  persisted next to the artifact store.
* :mod:`repro.service.workers` -- the compute backends: the bounded thread
  pool and the hash-sharded persistent worker-process pool (``repro serve
  --backend process --shards N``), which routes every query to the shard
  whose warm cache already holds its graph, recycles workers after a task
  budget, and retries a crashed worker's task once.  Shard workers
  bootstrap through the same :mod:`repro.runner.bootstrap` initializer as
  the runner's ``multiprocessing`` fan-out.
* :mod:`repro.service.server` -- :class:`ElectionServer`: a dependency-free
  asyncio HTTP/1.1 front end routing the endpoints above, plus
  :func:`run_server`, the blocking entry point behind the ``serve`` CLI
  subcommand.

The service returns byte-identical indices and advice to the in-process API
for the same graphs -- every answer is a pure function of the graph, and the
service is only plumbing around the same cache entries.  Batch streams make
the same promise per item, modulo the documented volatile timing fields
(which they simply omit).
"""

from .batch import BatchCoordinator, expand_sweep
from .server import ElectionServer, run_server
from .service import ElectionService, ServiceError, compute_election, deterministic_response
from .workers import (
    DEFAULT_RECYCLE_AFTER,
    ProcessShardBackend,
    ThreadBackend,
    shard_index,
)

__all__ = [
    "BatchCoordinator",
    "DEFAULT_RECYCLE_AFTER",
    "ElectionServer",
    "ElectionService",
    "ProcessShardBackend",
    "ServiceError",
    "ThreadBackend",
    "compute_election",
    "deterministic_response",
    "expand_sweep",
    "run_server",
    "shard_index",
]
