"""The seeded scenario corpus: deterministic graph mixes at any scale.

Two layers:

* **Scenario builders.**  :data:`SCENARIO_BUILDERS` maps the new generator
  kinds (random-regular, connected Erdős–Rényi, circulant, torus,
  twisted-torus, de Bruijn-like) to the :mod:`repro.portgraph.generators`
  functions behind them.  The runner's spec registry merges this table, so
  every surface that speaks ``(kind, params)`` -- ``GraphSpec``, the CLI's
  ``bench`` / ``sweep`` / ``indices`` subcommands, the election service, the
  benchmarks -- sees the scenario families without further wiring, and the
  single-size kinds appear in ``spec.sized_graph_kinds()`` automatically.

* **Named corpora.**  :func:`corpus_specs` expands a corpus name plus
  ``(count, seed)`` into a list of :class:`~repro.runner.spec.GraphSpec`.
  Expansion is a pure function of its arguments and *prefix-stable*: the
  first ``k`` specs of ``corpus_specs(name, n, seed)`` equal
  ``corpus_specs(name, k, seed)`` for ``k <= n``, which is what makes a
  partially-consumed batch resumable by simply re-requesting the same spec.

Every scenario graph is reproducible from ``(kind, params, seed)`` alone:
the seeded generators derive their RNG from those values, never from global
state.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Tuple

from ..portgraph import generators
from ..portgraph.graph import PortLabeledGraph

__all__ = ["SCENARIO_BUILDERS", "corpus_names", "corpus_specs", "scenario_kinds"]

#: kind -> builder(**params) -> PortLabeledGraph, merged into the runner's
#: graph-kind registry (single-required-parameter kinds become "sized" kinds
#: usable as ``--generator NAME --sizes ...``).
SCENARIO_BUILDERS: Dict[str, Callable[..., PortLabeledGraph]] = {
    "random-regular": lambda n, degree=3, seed=0: generators.random_regular_graph(
        n, degree, seed=seed
    ),
    "erdos-renyi": lambda n, p=None, seed=0: generators.erdos_renyi_graph(n, p, seed=seed),
    "circulant": lambda n, steps=(1, 2): generators.circulant_graph(n, steps),
    "torus": lambda rows, cols: generators.torus_graph(rows, cols),
    "twisted-torus": lambda rows, cols, twist=1: generators.twisted_torus_graph(
        rows, cols, twist
    ),
    "de-bruijn": lambda dimension, base=2: generators.de_bruijn_like_graph(dimension, base),
    "beacon-tail": lambda blob, tail, degree=3, seed=0: generators.beacon_tail_graph(
        blob, tail, degree=degree, seed=seed
    ),
}


def scenario_kinds() -> Tuple[str, ...]:
    """The scenario generator kinds, sorted."""
    return tuple(sorted(SCENARIO_BUILDERS))


# --------------------------------------------------------------------------- #
# named corpora
# --------------------------------------------------------------------------- #
# Each template draws one (kind, params) from the corpus RNG.  Templates are
# cycled in fixed order, one draw per item, so expansion is prefix-stable.
_Template = Callable[[random.Random], Tuple[str, Dict[str, Any]]]


def _t_random_regular(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    n = 2 * rng.randint(3, 5)  # even, 6..10: 3-regular needs n*degree even
    return "random-regular", {"n": n, "degree": 3, "seed": rng.randint(0, 9999)}


def _t_erdos_renyi(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "erdos-renyi", {"n": rng.randint(5, 10), "seed": rng.randint(0, 9999)}


def _t_circulant(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    n = rng.randint(6, 12)
    steps = rng.choice([(1, 2), (1, 3)])
    return "circulant", {"n": n, "steps": list(steps)}


def _t_torus(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "torus", {"rows": 3, "cols": rng.randint(3, 4)}


def _t_twisted_torus(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    rows = rng.randint(3, 4)
    return "twisted-torus", {"rows": rows, "cols": 3, "twist": rng.randint(1, rows - 1)}


def _t_de_bruijn(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "de-bruijn", {"dimension": rng.choice([2, 3]), "base": rng.choice([2, 3])}


def _t_asymmetric_cycle(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "asymmetric-cycle", {"n": rng.randint(5, 11)}


def _t_random_tree(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "random-tree", {"n": rng.randint(5, 10), "seed": rng.randint(0, 9999)}


def _t_random_graph(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    n = rng.randint(6, 10)
    return "random", {"n": n, "extra_edges": rng.randint(1, 4), "seed": rng.randint(0, 9999)}


def _t_symmetric_cycle(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "cycle", {"n": rng.randint(4, 10)}


def _t_caterpillar(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "caterpillar", {"spine": rng.randint(2, 4), "legs": rng.randint(1, 3)}


def _t_grid(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "grid", {"rows": rng.randint(3, 5), "cols": rng.randint(3, 5)}


def _t_grid_xl(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    rng.random()  # consume one draw so later templates stay prefix-stable
    return "grid", {"rows": 72, "cols": 72}


def _t_torus_xl(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "torus", {"rows": 24, "cols": rng.randint(24, 32)}


def _t_beacon_xl(rng: random.Random) -> Tuple[str, Dict[str, Any]]:
    return "beacon-tail", {"blob": 1000, "tail": 5000, "seed": rng.randint(0, 9999)}


#: corpus name -> template cycle.  ``mixed`` interleaves every family --
#: feasible and infeasible, regular and irregular -- which is the default
#: sweep corpus of the batch endpoint, the conformance suite and E17.
_CORPORA: Dict[str, Tuple[_Template, ...]] = {
    "mixed": (
        _t_random_regular,
        _t_erdos_renyi,
        _t_circulant,
        _t_asymmetric_cycle,
        _t_torus,
        _t_de_bruijn,
        _t_random_tree,
        _t_twisted_torus,
        _t_random_graph,
        _t_symmetric_cycle,
        _t_caterpillar,
    ),
    # random families only: the property-based conformance corpus
    "random": (_t_random_regular, _t_erdos_renyi, _t_random_tree, _t_random_graph),
    # vertex-transitive labelings: every graph infeasible by construction
    "symmetric": (_t_circulant, _t_torus, _t_symmetric_cycle),
    # mutation-friendly bases for the dynamic-graph sweeps: 2-connected-ish
    # families where edge removals / node leaves rarely run out of candidates
    "dynamic": (_t_grid, _t_torus, _t_circulant, _t_random_regular, _t_erdos_renyi),
    # E19 scale tier: the first member is a 72x72 grid (5184 nodes, the
    # dense-influence stress case), the third a 6000-node beacon-tail (the
    # delta-vs-full speedup-gate subject)
    "dynamic-xl": (_t_grid_xl, _t_torus_xl, _t_beacon_xl),
}


def corpus_names() -> Tuple[str, ...]:
    """The registered corpus names, sorted."""
    return tuple(sorted(_CORPORA))


def corpus_specs(count: int, *, seed: int = 0, corpus: str = "mixed") -> List["GraphSpec"]:
    """Expand ``corpus`` into ``count`` graph specs, deterministic in ``seed``.

    Templates are cycled in fixed order and consume the shared corpus RNG as
    they go, so the expansion is a pure, prefix-stable function of
    ``(corpus, count, seed)``: the first ``k`` items never depend on ``count``.  Duplicate
    specs are possible (and harmless: the refinement cache and the store
    coalesce them); they keep small corpora honest about collision handling.
    """
    from ..runner.spec import GraphSpec  # lazy: the spec registry imports us

    templates = _CORPORA.get(corpus)
    if templates is None:
        raise ValueError(
            f"unknown corpus {corpus!r}; known: {', '.join(corpus_names())}"
        )
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = random.Random(f"corpus:{corpus}:{seed}")
    specs: List[GraphSpec] = []
    for index in range(count):
        kind, params = templates[index % len(templates)](rng)
        specs.append(GraphSpec.make(kind, **params))
    return specs
