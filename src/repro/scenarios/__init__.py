"""Seeded scenario corpus: the graph space behind batch sweeps.

The four election tasks (S ⊆ PE ⊆ PPE ⊆ CPPE) and their indices ψ_Z are only
meaningful across *many* networks; this package supplies that breadth as
data.  :mod:`repro.scenarios.corpus` registers the scenario generator
families (random-regular, connected Erdős–Rényi, circulant, torus /
twisted-torus, de Bruijn-like) with the runner's graph-kind registry and
expands *named corpora* -- deterministic, prefix-stable mixes of families
reproducible from ``(name, count, seed)`` -- into
:class:`~repro.runner.spec.GraphSpec` lists consumed by the CLI, the batch
service, the conformance tests and the benchmarks alike.
"""

from .corpus import (
    SCENARIO_BUILDERS,
    corpus_names,
    corpus_specs,
    scenario_kinds,
)
from .mutations import MUTATION_KINDS, mutation_stream, mutation_sweep_items

__all__ = [
    "SCENARIO_BUILDERS",
    "MUTATION_KINDS",
    "corpus_names",
    "corpus_specs",
    "mutation_stream",
    "mutation_sweep_items",
    "scenario_kinds",
]
