"""Seeded mutation-stream generators: reproducible edit scripts over corpus graphs.

The dynamic-graph workload mutates corpus graphs with streams of edge
rewirings, node joins/leaves and port relabelings.  This module generates
those streams deterministically: :func:`mutation_stream` derives its RNG from
``(seed, base graph identity)`` alone — never from global state — and every
emitted op is validated against the graph the preceding ops produce, so each
stream is a reproducible random walk through the space of valid port-labeled
graphs around its base.

Connectivity is preserved *by construction*, not by rejection sampling alone:
edge removals draw from the non-bridge edges and node leaves from the
non-articulation nodes, both read off the base's
:class:`~repro.kernel.blockcut.BlockCutTree` (a block of size two is exactly
a bridge).  The emitted scripts are **cumulative**: entry ``i`` of a stream
is a :class:`~repro.portgraph.delta.GraphDelta` of edit distance ``i + 1``
against the *base* graph, which is the shape both the ``{"base": ...,
"delta": [...]}`` sweep items and the E19 speedup-vs-edit-distance curve
consume.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..portgraph.delta import GraphDelta
from ..portgraph.graph import PortLabeledGraph

__all__ = ["MUTATION_KINDS", "mutation_stream", "mutation_sweep_items"]

#: The op kinds a stream may draw, in canonical order.
MUTATION_KINDS = ("add-edge", "remove-edge", "add-node", "remove-node", "relabel-ports")


def _bridges_and_cuts(graph: PortLabeledGraph) -> Tuple[set, set]:
    """``(bridge edge set (v<u pairs), articulation node set)`` of ``graph``."""
    from ..kernel.blockcut import BlockCutTree  # lazy: scenarios sit below kernel users

    tree = BlockCutTree(graph.csr())
    bridges = {
        (block[0], block[1]) for block in tree.biconnected_components() if len(block) == 2
    }
    return bridges, tree.articulation_points()


def _candidate_op(
    rng: random.Random,
    graph: PortLabeledGraph,
    kind: str,
    region: Optional[Sequence[int]] = None,
) -> Optional[dict]:
    """One valid ``kind`` op against ``graph``, or ``None`` if none exists.

    When ``region`` is given, every node the op names is drawn from it (both
    endpoints for edge ops); ``None`` means the whole node set.
    """
    n = graph.num_nodes
    pool: Sequence[int] = range(n) if region is None else region
    if kind == "add-edge":
        if len(pool) > 256:
            # sparse large pool: rejection-sample pairs (deterministic in the
            # rng) instead of materialising the Theta(n^2) non-edge list
            if graph.num_edges >= n * (n - 1) // 2:
                return None
            while True:
                v = pool[rng.randrange(len(pool))]
                u = pool[rng.randrange(len(pool))]
                if v != u and not graph.has_edge(v, u):
                    break
            return {"op": "add-edge", "v": min(v, u), "u": max(v, u)}
        # sorted non-edges keep the draw deterministic
        members = sorted(set(pool))
        candidates = [
            (v, u)
            for iv, v in enumerate(members)
            for u in members[iv + 1 :]
            if not graph.has_edge(v, u)
        ]
        if not candidates:
            return None
        v, u = rng.choice(candidates)
        return {"op": "add-edge", "v": v, "u": u}
    in_pool = (lambda v: True) if region is None else set(pool).__contains__
    if kind == "remove-edge":
        bridges, _cuts = _bridges_and_cuts(graph)
        candidates = [
            (v, u)
            for v, _pv, u, _pu in graph.edges()
            if (v, u) not in bridges and in_pool(v) and in_pool(u)
        ]
        if not candidates:
            return None
        v, u = rng.choice(candidates)
        return {"op": "remove-edge", "v": v, "u": u}
    if kind == "add-node":
        return {"op": "add-node", "anchor": pool[rng.randrange(len(pool))]}
    if kind == "remove-node":
        if n < 3:
            return None
        _bridges, cuts = _bridges_and_cuts(graph)
        candidates = [v for v in pool if v not in cuts]
        if not candidates:
            return None
        return {"op": "remove-node", "v": rng.choice(candidates)}
    if kind == "relabel-ports":
        candidates = [v for v in pool if graph.degree(v) >= 2]
        if not candidates:
            return None
        v = rng.choice(candidates)
        degree = graph.degree(v)
        perm = list(range(degree))
        while perm == list(range(degree)):
            rng.shuffle(perm)
        return {"op": "relabel-ports", "v": v, "perm": perm}
    raise ValueError(f"unknown mutation kind {kind!r} (expected one of {MUTATION_KINDS})")


def mutation_stream(
    base: PortLabeledGraph,
    *,
    seed: int,
    length: int,
    kinds: Optional[Sequence[str]] = None,
    region: Optional[Sequence[int]] = None,
) -> List[GraphDelta]:
    """``length`` cumulative edit scripts over ``base``, deterministic in ``seed``.

    Entry ``i`` is a :class:`GraphDelta` of ``i + 1`` ops against ``base``:
    the scripts share a prefix, so the stream is one random walk observed at
    every step (and prefix-stable: the first ``k`` scripts never depend on
    ``length``).  Kinds are drawn round-robin-free from ``kinds`` (default
    :data:`MUTATION_KINDS`); a kind with no valid op on the current graph is
    skipped for that step.  Raises ``ValueError`` when no requested kind has
    a valid op at some step (e.g. ``remove-node`` streams on a path graph).

    ``region`` restricts every drawn op to the given node handles — the
    localised-edit workloads of the E19 speedup curve (edits confined to a
    beacon-tail graph's beacon).  Handles are interpreted against the
    *current* graph of the walk, so region streams are meant for the
    topology-stable kinds (edge and port ops); combining a region with node
    joins/leaves is allowed but the region does not follow renames.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    allowed = tuple(kinds) if kinds is not None else MUTATION_KINDS
    for kind in allowed:
        if kind not in MUTATION_KINDS:
            raise ValueError(
                f"unknown mutation kind {kind!r} (expected one of {MUTATION_KINDS})"
            )
    rng = random.Random(
        f"mutations:{seed}:{base.name}:{base.num_nodes}:{base.num_edges}"
    )
    ops: List[dict] = []
    scripts: List[GraphDelta] = []
    current = base
    for _step in range(length):
        op = None
        for kind in rng.sample(allowed, len(allowed)):
            op = _candidate_op(rng, current, kind, region)
            if op is not None:
                break
        if op is None:
            raise ValueError(
                f"no valid mutation of kinds {allowed} on {current!r} "
                f"after {len(ops)} steps"
            )
        ops.append(op)
        script = GraphDelta(ops)
        current = script.apply_to(base).graph
        scripts.append(script)
    return scripts


def mutation_sweep_items(
    specs: Iterable,
    *,
    seed: int,
    per_graph: int = 3,
    kinds: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Expand base graph specs into ``{"base": ..., "delta": [...]}`` sweep items.

    For each :class:`~repro.runner.spec.GraphSpec` in ``specs``, the base is
    built and a :func:`mutation_stream` of ``per_graph`` steps generated; one
    item per step references the base *by spec* (the service resolves either
    a spec dict or a store fingerprint) with the cumulative delta payload.
    Deterministic in ``(specs, seed)`` — the shape ``repro sweep --mutate``
    and the warm pipeline feed to ``POST /elections``.
    """
    items: List[Dict[str, object]] = []
    for spec in specs:
        base = spec.build()
        for script in mutation_stream(base, seed=seed, length=per_graph, kinds=kinds):
            items.append({"base": spec.to_dict(), "delta": script.to_payload()})
    return items
