"""repro: reproduction of "Four Shades of Deterministic Leader Election in Anonymous Networks".

The package implements, in pure Python:

* the anonymous port-labeled network model and the LOCAL-model round simulator,
* views (explicit trees and fast partition refinement),
* the four leader-election tasks S / PE / PPE / CPPE, their validators and
  exact election indices ψ_Z(G),
* the algorithms-with-advice framework (oracles, bit-exact advice strings,
  the paper's upper-bound algorithm and the universal map-based solvers),
* the three lower-bound graph families G_{Δ,k}, U_{Δ,k}, J_{µ,k},
* analysis utilities used by the benchmark harness that regenerates every
  quantitative claim of the paper,
* a persistent content-addressed artifact store (``repro.store``) and an
  async JSON/HTTP query service (``repro.service``, the ``serve`` CLI
  subcommand) so computed refinements, indices and advice outlive the
  process and serve concurrent clients.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from ._version import __version__
from .core import (
    LEADER,
    NON_LEADER,
    ElectionOutcome,
    Task,
    all_election_indices,
    complete_port_path_election_index,
    election_index,
    is_feasible,
    port_election_index,
    port_path_election_index,
    selection_index,
    validate,
    validate_outcome,
)
from .portgraph import GraphBuilder, PortLabeledGraph
from .views import ViewRefinement, augmented_view, refine_views

__all__ = [
    "__version__",
    "PortLabeledGraph",
    "GraphBuilder",
    "ViewRefinement",
    "refine_views",
    "augmented_view",
    "Task",
    "LEADER",
    "NON_LEADER",
    "ElectionOutcome",
    "is_feasible",
    "selection_index",
    "port_election_index",
    "port_path_election_index",
    "complete_port_path_election_index",
    "election_index",
    "all_election_indices",
    "validate",
    "validate_outcome",
]
