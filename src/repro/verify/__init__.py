"""Bounded model checking of the service's concurrency protocols.

``repro verify`` (the CLI front end of :func:`run_verification`)
exhaustively explores the batch-stream and shard-worker lifecycles --
every interleaving of client disconnects, worker crashes, recycles and
shutdowns within the configured bounds -- against the *same* transition
tables the production code executes (:mod:`repro.service.protocol`).
The run fails if any reachable state violates a safety invariant, if a
non-terminal state deadlocks, or if the checker cannot find the seeded
known-bad mutants (:mod:`repro.verify.mutants`), which guards against a
vacuous pass.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from .checker import CheckResult, Model, Violation, check_model
from .models import BatchStreamModel, DeltaLifecycleModel, ShardWorkerModel
from .mutants import MUTANTS

__all__ = [
    "BatchStreamModel",
    "CheckResult",
    "DeltaLifecycleModel",
    "Model",
    "ShardWorkerModel",
    "Violation",
    "check_model",
    "run_verification",
]

#: Protocol name -> model factory (the CLI's ``--protocol`` choices).
PROTOCOL_MODELS = {
    "batch": BatchStreamModel,
    "worker": ShardWorkerModel,
    "delta": DeltaLifecycleModel,
}


def run_verification(
    protocols: Optional[Iterable[str]] = None,
    *,
    max_states: int = 200_000,
    max_depth: int = 10_000,
    include_mutants: bool = True,
    batch_items: int = 4,
    batch_window: int = 2,
    worker_jobs: int = 3,
    worker_recycle_after: int = 2,
) -> Dict[str, Any]:
    """Check the requested protocol models; returns a JSON-able report.

    The report's ``ok`` is ``True`` only if every production model verified
    clean *and complete* (the bounds were not hit -- a truncated search
    proves nothing) and, when ``include_mutants``, every seeded mutant was
    caught with the expected defect kind.
    """
    names = list(protocols) if protocols is not None else sorted(PROTOCOL_MODELS)
    report: Dict[str, Any] = {"ok": True, "models": [], "mutants": []}
    for name in names:
        try:
            factory = PROTOCOL_MODELS[name]
        except KeyError:
            raise ValueError(
                f"unknown protocol {name!r}; choose from {sorted(PROTOCOL_MODELS)}"
            ) from None
        if factory is BatchStreamModel:
            model: Model = BatchStreamModel(items=batch_items, window=batch_window)
        elif factory is ShardWorkerModel:
            model = ShardWorkerModel(jobs=worker_jobs, recycle_after=worker_recycle_after)
        else:
            model = factory()
        result = check_model(model, max_states=max_states, max_depth=max_depth)
        entry = result.to_dict()
        if not result.ok or not result.complete:
            report["ok"] = False
        report["models"].append(entry)
    if include_mutants:
        for mutant_factory in MUTANTS:
            if issubclass(mutant_factory, BatchStreamModel):
                mutant = mutant_factory(items=batch_items, window=batch_window)
            else:
                mutant = mutant_factory()
            result = check_model(mutant, max_states=max_states, max_depth=max_depth)
            expected = getattr(mutant, "expected_kind", None)
            caught = any(
                expected is None or violation.kind == expected
                for violation in result.violations
            ) and bool(result.violations)
            entry = result.to_dict()
            entry["expected_kind"] = expected
            entry["caught"] = caught
            if not caught:
                # the checker sailed past a known bug: the verification
                # itself is broken, fail loudly
                report["ok"] = False
            report["mutants"].append(entry)
    return report
