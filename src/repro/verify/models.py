"""The service's concurrency protocols as checkable models.

Both models evolve their lifecycle state through the *production*
transition tables and window accounting of :mod:`repro.service.protocol` --
the same ``sweep_transition`` / ``worker_transition`` / ``window_acquire``
calls :mod:`repro.service.batch` and :mod:`repro.service.workers` execute
at runtime.  What the models add is the **environment**: every interleaving
of client disconnects, worker crashes, recycle thresholds and shutdowns,
explored exhaustively by :func:`repro.verify.checker.check_model` instead
of sampled by a scheduler.

States are plain tuples (hashable, comparable, cheap); the default bounds
are exhaustive for the shipped parameters -- a few thousand states per
model, milliseconds per check.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

from ..service.protocol import (
    DELTA_DONE,
    DELTA_EVALUATING,
    DELTA_FAILED,
    DELTA_INVALIDATING,
    DELTA_RECEIVED,
    DELTA_RECOMPUTING,
    DELTA_REPLAYING,
    DELTA_RESOLVING,
    DELTA_TERMINAL,
    SWEEP_CANCELLED,
    SWEEP_DONE,
    SWEEP_RUNNING,
    SWEEP_TERMINAL,
    WORKER_BUSY,
    WORKER_CLOSED,
    WORKER_DOWN,
    WORKER_IDLE,
    delta_transition,
    sweep_transition,
    window_acquire,
    window_release,
    worker_transition,
)
from .checker import Model

__all__ = ["BatchStreamModel", "DeltaLifecycleModel", "ShardWorkerModel"]

# item stages of the batch stream (strictly ordered per item)
_PENDING = 0  # not yet past the window gate
_ACQUIRED = 1  # holds a window slot, computation in flight
_COMPUTED = 2  # result ready, slot still held, awaiting in-order emit
_EMITTED = 3  # line written, slot released

_CLIENT_READING = "reading"
_CLIENT_GONE = "gone"


class BatchStreamModel(Model):
    """The ``POST /elections`` stream: window/emit/disconnect lifecycle.

    State: ``(sweep_state, item_stages, client)`` where ``item_stages`` is
    one stage per item and ``client`` is reading or gone.  The window
    occupancy is *derived* (items in ``acquired``/``computed``), evolved
    through :func:`window_acquire`/:func:`window_release` so an
    over-acquire or double-release raises mid-exploration exactly as the
    production :class:`~repro.service.protocol.WindowLedger` would.

    Faithfulness notes, matching :meth:`repro.service.batch.BatchCoordinator.stream`:

    * window slots are acquired in item order (tasks are created in order
      and ``asyncio.Semaphore`` wakes waiters FIFO);
    * lines are emitted strictly in item order, only while the client
      reads; a disconnect makes the next emit fail, which aborts the sweep
      (the ``finally`` block) and cancellation releases every held slot;
    * the ``aborted`` transition is enabled from the moment the client is
      gone -- including before anything was emitted, the exact interleaving
      whose mishandling once left sweeps ``running`` forever.
    """

    name = "batch-stream"

    def __init__(self, *, items: int = 4, window: int = 2) -> None:
        if items < 1 or window < 1:
            raise ValueError("items and window must be at least 1")
        self.items = items
        self.window = window

    # -- helpers -------------------------------------------------------- #
    @staticmethod
    def _occupancy(stages: Tuple[int, ...]) -> int:
        return sum(1 for stage in stages if stage in (_ACQUIRED, _COMPUTED))

    def _abort_enabled(self, sweep: str, stages: Tuple[int, ...], client: str) -> bool:
        """Whether the stream's ``finally`` path may fire: the client is
        gone (the next emit/drain raises) and the sweep has not finished."""
        return sweep == SWEEP_RUNNING and client == _CLIENT_GONE

    # -- Model interface ------------------------------------------------ #
    def initial(self) -> Hashable:
        return (SWEEP_RUNNING, (_PENDING,) * self.items, _CLIENT_READING)

    def actions(self, state: Hashable) -> Iterable[Tuple[str, Hashable]]:
        sweep, stages, client = state
        moves: List[Tuple[str, Hashable]] = []
        if sweep != SWEEP_RUNNING:
            return moves  # terminal: the coroutine has returned
        occupancy = self._occupancy(stages)
        # the client can hang up at any moment while the stream runs
        if client == _CLIENT_READING:
            moves.append(("disconnect", (sweep, stages, _CLIENT_GONE)))
        # acquire: the lowest-index pending item enters the window (FIFO)
        pending = [i for i, stage in enumerate(stages) if stage == _PENDING]
        if pending and occupancy < self.window:
            updated = list(stages)
            updated[pending[0]] = _ACQUIRED
            window_acquire(occupancy, self.window)  # audits the bound
            moves.append((f"acquire[{pending[0]}]", (sweep, tuple(updated), client)))
        # compute: any in-flight item's backend call can finish
        for index, stage in enumerate(stages):
            if stage == _ACQUIRED:
                updated = list(stages)
                updated[index] = _COMPUTED
                moves.append((f"compute[{index}]", (sweep, tuple(updated), client)))
        # emit: strictly in item order, only while the client reads
        next_to_emit = sum(1 for stage in stages if stage == _EMITTED)
        if (
            client == _CLIENT_READING
            and next_to_emit < self.items
            and stages[next_to_emit] == _COMPUTED
        ):
            updated = list(stages)
            updated[next_to_emit] = _EMITTED
            window_release(occupancy)  # audits the release
            moves.append(
                (
                    f"emit[{next_to_emit}]",
                    (
                        sweep_transition(sweep, "item_resolved"),
                        tuple(updated),
                        client,
                    ),
                )
            )
        # complete: all lines out -> trailer, terminal "done"
        if client == _CLIENT_READING and all(stage == _EMITTED for stage in stages):
            moves.append(
                ("complete", (sweep_transition(sweep, "completed"), stages, client))
            )
        # abort: the finally block -- cancel tasks, release every held slot
        if self._abort_enabled(sweep, stages, client):
            released = tuple(
                _EMITTED if stage == _EMITTED else _PENDING for stage in stages
            )
            moves.append(
                ("abort", (sweep_transition(sweep, "aborted"), released, client))
            )
        return moves

    def invariant(self, state: Hashable) -> Optional[str]:
        sweep, stages, client = state
        occupancy = self._occupancy(stages)
        if occupancy > self.window:
            return f"window bound broken: {occupancy} slots held, capacity {self.window}"
        if sweep in SWEEP_TERMINAL and occupancy != 0:
            return f"terminal sweep ({sweep}) still holds {occupancy} window slot(s)"
        if sweep == SWEEP_DONE and not all(stage == _EMITTED for stage in stages):
            return "sweep marked done with unemitted items"
        if sweep == SWEEP_CANCELLED and client == _CLIENT_READING:
            return "sweep cancelled while the client was still reading"
        emitted = [i for i, stage in enumerate(stages) if stage == _EMITTED]
        if emitted != list(range(len(emitted))):
            return f"out-of-order emission: emitted set {emitted}"
        return None

    def is_terminal(self, state: Hashable) -> bool:
        return state[0] in SWEEP_TERMINAL

    def describe(self, state: Hashable) -> str:
        sweep, stages, client = state
        glyphs = "".join(".acE"[stage] for stage in stages)
        return f"sweep={sweep} items={glyphs} client={client}"


class DeltaLifecycleModel(Model):
    """One ``{"base": ..., "delta": [...]}`` item's recompute lifecycle.

    State: ``(state, invalidated, replayed, recomputed)`` -- the protocol
    state plus history bits recording which certifying events have fired.
    The environment chooses every outcome at each stage: the exact mutated
    graph may already be cached (``cache_hit``), the base may resolve
    (``base_hit``) or be missing from the store (``base_miss`` -> the
    recompute fallback), and any stage may fail (``error``).  Transitions go
    through the production table
    (:data:`~repro.service.protocol.DELTA_TRANSITIONS`) via
    :meth:`_transition`, which mutants override to reintroduce bugs.

    The safety property is the **memo-invalidation ordering**: a replayed
    entry must have had its inherited ψ/advice memos invalidated first
    (the base's memos are valid for the base graph only).  Concretely:
    whenever the item reaches ``replaying`` or beyond along the replay path,
    ``memos_invalidated`` must already have fired -- the exact blind spot
    the ``RefinementCache.persist`` regression test pins at the store layer.
    """

    name = "delta-lifecycle"

    #: events the environment can choose from each non-terminal state
    _STAGE_EVENTS = {
        DELTA_RECEIVED: ("lookup",),
        DELTA_RESOLVING: ("cache_hit", "base_hit", "base_miss", "error"),
        DELTA_INVALIDATING: ("memos_invalidated", "error"),
        DELTA_REPLAYING: ("replayed", "error"),
        DELTA_RECOMPUTING: ("recomputed", "error"),
        DELTA_EVALUATING: ("evaluated", "error"),
    }

    def _transition(self, state: str, event: str) -> str:
        """The successor state of ``event`` (mutants override this)."""
        return delta_transition(state, event)

    # -- Model interface ------------------------------------------------ #
    def initial(self) -> Hashable:
        return (DELTA_RECEIVED, False, False, False)

    def actions(self, state: Hashable) -> Iterable[Tuple[str, Hashable]]:
        protocol_state, invalidated, replayed, recomputed = state
        moves: List[Tuple[str, Hashable]] = []
        for event in self._STAGE_EVENTS.get(protocol_state, ()):
            successor = self._transition(protocol_state, event)
            moves.append(
                (
                    event,
                    (
                        successor,
                        invalidated or event == "memos_invalidated",
                        replayed or event == "replayed",
                        recomputed or event == "recomputed",
                    ),
                )
            )
        return moves

    def invariant(self, state: Hashable) -> Optional[str]:
        protocol_state, invalidated, replayed, recomputed = state
        if replayed and not invalidated:
            return (
                "memo-invalidation ordering broken: the delta was replayed "
                "without invalidating the base's ψ/advice memos first"
            )
        if protocol_state == DELTA_REPLAYING and not invalidated:
            return (
                "memo-invalidation ordering broken: replaying with the "
                "base's ψ/advice memos still live"
            )
        if protocol_state == DELTA_DONE and invalidated and not replayed:
            # the invalidation path's only legal exit into "done" is replay
            return "delta item done after invalidation but without a replay"
        return None

    def is_terminal(self, state: Hashable) -> bool:
        return state[0] in DELTA_TERMINAL

    def describe(self, state: Hashable) -> str:
        protocol_state, invalidated, replayed, recomputed = state
        flags = "".join(
            glyph if flag else "-"
            for glyph, flag in (
                ("i", invalidated),
                ("r", replayed),
                ("c", recomputed),
            )
        )
        return f"state={protocol_state} history={flags}"


class ShardWorkerModel(Model):
    """One shard of the process backend: dispatch/recycle/crash/close.

    State: ``(worker_state, jobs_since_spawn, jobs_remaining, attempt,
    replies, retired, lost, failed)``.  ``attempt`` is the current job's
    delivery attempt (0 = no job pending, 1 = first try, 2 = post-crash
    retry, matching the retry-once loop of ``_Shard.call``); the counter
    quadruple mirrors the parent-side bookkeeping: ``replies`` total
    successful round trips, ``retired`` jobs absorbed from clean
    retirements (farewell snapshots), ``lost`` jobs whose worker crashed
    before retiring (their counters die with the process), ``failed`` jobs
    surfaced as 503 after the retry budget.

    The conservation invariant -- every reply is either still counted in
    the live worker, absorbed into ``retired``, or written off as ``lost``
    -- is exactly the property that makes ``/stats`` job totals trustworthy
    across recycling, and it must hold in *every* reachable interleaving of
    crashes, recycles and shutdowns.
    """

    name = "shard-worker"

    def __init__(self, *, jobs: int = 3, recycle_after: int = 2) -> None:
        if jobs < 1 or recycle_after < 1:
            raise ValueError("jobs and recycle_after must be at least 1")
        self.jobs = jobs
        self.recycle_after = recycle_after

    def initial(self) -> Hashable:
        return (WORKER_DOWN, 0, self.jobs, 0, 0, 0, 0, 0)

    def actions(self, state: Hashable) -> Iterable[Tuple[str, Hashable]]:
        worker, since, remaining, attempt, replies, retired, lost, failed = state
        moves: List[Tuple[str, Hashable]] = []
        if worker == WORKER_CLOSED:
            # close/crash are absorbed (idempotent shutdown, terminate
            # races); exercise both table entries, self-loops dedup away
            worker_transition(worker, "close")
            worker_transition(worker, "crash")
            return moves
        # shutdown can begin at any moment
        if worker == WORKER_BUSY:
            # terminate kills the worker mid-job; the blocked call() sees a
            # broken pipe against the now-closed shard and surfaces a 503
            moves.append(
                (
                    "close",
                    (
                        worker_transition(worker, "close"),
                        0,
                        remaining - 1,
                        0,
                        replies,
                        retired,
                        lost + since,
                        failed + 1,
                    ),
                )
            )
        else:
            moves.append(
                (
                    "close",
                    (
                        worker_transition(worker, "close"),
                        0,
                        remaining,
                        0,
                        replies,
                        retired,
                        lost + since,
                        failed,
                    ),
                )
            )
        if worker == WORKER_DOWN and (remaining > 0 or attempt > 0):
            # lazy spawn: _ensure_worker starts a process when work arrives
            moves.append(
                (
                    "spawn",
                    (worker_transition(worker, "spawn"), 0, remaining, attempt, replies, retired, lost, failed),
                )
            )
        if worker == WORKER_IDLE:
            if since < self.recycle_after and (attempt > 0 or remaining > 0):
                # dispatch the pending retry, or take the next fresh job;
                # never past the budget -- call() retires the worker in the
                # same locked section as the threshold-reaching reply
                next_attempt = attempt if attempt > 0 else 1
                moves.append(
                    (
                        "dispatch" if next_attempt == 1 else "redispatch",
                        (
                            worker_transition(worker, "dispatch"),
                            since,
                            remaining,
                            next_attempt,
                            replies,
                            retired,
                            lost,
                            failed,
                        ),
                    )
                )
            if since >= self.recycle_after:
                # recycle threshold reached: farewell absorbed, worker joined
                moves.append(
                    (
                        "retire",
                        (
                            worker_transition(worker, "retire"),
                            0,
                            remaining,
                            attempt,
                            replies,
                            retired + since,
                            lost,
                            failed,
                        ),
                    )
                )
                # ... or the farewell pipe broke first: still a retirement,
                # but the snapshot's job counts die with the worker
                moves.append(
                    (
                        "retire_dropped_farewell",
                        (
                            worker_transition(worker, "retire"),
                            0,
                            remaining,
                            attempt,
                            replies,
                            retired,
                            lost + since,
                            failed,
                        ),
                    )
                )
            # died between jobs (found by the next _ensure_worker)
            moves.append(
                (
                    "idle_crash",
                    (
                        worker_transition(worker, "crash"),
                        0,
                        remaining,
                        attempt,
                        replies,
                        retired,
                        lost + since,
                        failed,
                    ),
                )
            )
        if worker == WORKER_BUSY:
            moves.append(
                (
                    "reply",
                    (
                        worker_transition(worker, "reply"),
                        since + 1,
                        remaining - 1,
                        0,
                        replies + 1,
                        retired,
                        lost,
                        failed,
                    ),
                )
            )
            if attempt >= 2:
                # second crash on one job: give up with a 503
                moves.append(
                    (
                        "crash_give_up",
                        (
                            worker_transition(worker, "crash"),
                            0,
                            remaining - 1,
                            0,
                            replies,
                            retired,
                            lost + since,
                            failed + 1,
                        ),
                    )
                )
            else:
                # first crash mid-job: respawn and resubmit once
                moves.append(
                    (
                        "crash_retry",
                        (
                            worker_transition(worker, "crash"),
                            0,
                            remaining,
                            2,
                            replies,
                            retired,
                            lost + since,
                            failed,
                        ),
                    )
                )
        return moves

    def invariant(self, state: Hashable) -> Optional[str]:
        worker, since, remaining, attempt, replies, retired, lost, failed = state
        if replies != retired + lost + since:
            return (
                "job accounting broken: "
                f"{replies} replies != {retired} retired + {lost} lost + {since} live"
            )
        if since > self.recycle_after:
            return f"worker served {since} jobs past its {self.recycle_after}-job budget"
        if replies + failed + remaining != self.jobs:
            # a job leaves `remaining` exactly when it terminates (reply,
            # give-up after the retry, or a mid-job terminate at shutdown)
            return (
                "job conservation broken: "
                f"replies={replies} + failed={failed} + remaining={remaining} "
                f"!= {self.jobs}"
            )
        if worker == WORKER_CLOSED and attempt != 0:
            return "closed shard still owes a job retry"
        return None

    def is_terminal(self, state: Hashable) -> bool:
        worker, _since, remaining, attempt, *_ = state
        # quiescent: shut down, or all jobs accounted and none pending
        return worker == WORKER_CLOSED or (remaining == 0 and attempt == 0)

    def describe(self, state: Hashable) -> str:
        worker, since, remaining, attempt, replies, retired, lost, failed = state
        return (
            f"worker={worker} since_spawn={since} remaining={remaining} "
            f"attempt={attempt} replies={replies} retired={retired} "
            f"lost={lost} failed={failed}"
        )
