"""A small explicit-state bounded model checker (Spin-style, pure Python).

:func:`check_model` explores a :class:`Model`'s state space breadth-first
from the initial state, checking a safety invariant in every reachable
state and a bounded liveness property (no reachable non-terminal state is
a deadlock).  States are ordinary hashable Python values; transitions are
whatever ``actions(state)`` yields.  Because the service's protocol models
(:mod:`repro.verify.models`) evolve their states through the *same*
transition tables the production code uses
(:mod:`repro.service.protocol`), an illegal step raises
:class:`~repro.service.protocol.ProtocolViolation` inside the exploration
and is reported with the exact event trace that reaches it -- a
counterexample, not a stack trace.

The checker is bounded (``max_states``/``max_depth``) but the service
models are finite and small, so under the default bounds exploration is
exhaustive and :attr:`CheckResult.complete` is ``True``; a result with
``complete=False`` proved nothing beyond the frontier it reached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from ..service.protocol import ProtocolViolation

__all__ = ["CheckResult", "Model", "Violation", "check_model"]

#: Default exploration bounds; far above any service model's true size.
DEFAULT_MAX_STATES = 200_000
DEFAULT_MAX_DEPTH = 10_000


class Model:
    """What a protocol model must provide (duck-typed; this is documentation).

    ``initial()`` returns the (hashable) initial state.  ``actions(state)``
    yields ``(event_label, successor_state)`` pairs -- every transition the
    protocol *and* its environment (client disconnects, worker crashes,
    shutdowns) allow from ``state``; raising
    :class:`~repro.service.protocol.ProtocolViolation` while computing a
    successor is itself a reported violation.  ``invariant(state)`` returns
    ``None`` for a healthy state or a human-readable defect description.
    ``is_terminal(state)`` marks states where quiescence is legitimate;
    a non-terminal state with no enabled action is reported as a deadlock
    (the bounded-liveness check: every run can make progress until it
    legitimately stops).
    """

    name: str = "model"

    def initial(self) -> Hashable:
        raise NotImplementedError

    def actions(self, state: Hashable) -> Iterable[Tuple[str, Hashable]]:
        raise NotImplementedError

    def invariant(self, state: Hashable) -> Optional[str]:
        raise NotImplementedError

    def is_terminal(self, state: Hashable) -> bool:
        raise NotImplementedError

    def describe(self, state: Hashable) -> str:
        """Render one state for counterexample traces (override for clarity)."""
        return repr(state)


@dataclass
class Violation:
    """One defect with the event path that reaches it from the initial state."""

    kind: str  # "invariant" | "deadlock" | "transition"
    message: str
    #: ``[(event, state-description), ...]`` from the initial state to the
    #: defective state; the first entry's event is ``"<init>"``.
    trace: List[Tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"{self.kind}: {self.message}", "  counterexample:"]
        lines.extend(f"    {event:>14}  {state}" for event, state in self.trace)
        return "\n".join(lines)


@dataclass
class CheckResult:
    """The outcome of one model exploration."""

    model: str
    states: int = 0
    transitions: int = 0
    depth: int = 0
    complete: bool = True
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "states": self.states,
            "transitions": self.transitions,
            "depth": self.depth,
            "complete": self.complete,
            "ok": self.ok,
            "violations": [
                {"kind": v.kind, "message": v.message, "trace": v.trace}
                for v in self.violations
            ],
        }


def _trace_to(
    model: Model,
    state: Hashable,
    parents: Dict[Hashable, Optional[Tuple[Hashable, str]]],
) -> List[Tuple[str, str]]:
    """The event path from the initial state to ``state`` (BFS => shortest)."""
    steps: List[Tuple[str, str]] = []
    cursor: Optional[Hashable] = state
    while cursor is not None:
        parent = parents[cursor]
        event = "<init>" if parent is None else parent[1]
        steps.append((event, model.describe(cursor)))
        cursor = None if parent is None else parent[0]
    steps.reverse()
    return steps


def check_model(
    model: Model,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    max_depth: int = DEFAULT_MAX_DEPTH,
    max_violations: int = 3,
) -> CheckResult:
    """Explore ``model`` breadth-first; see the module docstring.

    Stops early once ``max_violations`` defects are recorded (each with its
    shortest counterexample); a clean run visits every reachable state
    within the bounds and reports ``complete=True`` only if neither bound
    was hit.
    """
    result = CheckResult(model=model.name)
    initial = model.initial()
    parents: Dict[Hashable, Optional[Tuple[Hashable, str]]] = {initial: None}
    frontier: "deque[Tuple[Hashable, int]]" = deque([(initial, 0)])

    def report(kind: str, message: str, state: Hashable) -> bool:
        result.violations.append(
            Violation(kind=kind, message=message, trace=_trace_to(model, state, parents))
        )
        return len(result.violations) >= max_violations

    while frontier:
        state, depth = frontier.popleft()
        result.states += 1
        result.depth = max(result.depth, depth)
        defect = model.invariant(state)
        if defect is not None and report("invariant", defect, state):
            break
        try:
            successors = list(model.actions(state))
        except ProtocolViolation as violation:
            if report("transition", str(violation), state):
                break
            continue
        if not successors:
            if not model.is_terminal(state):
                if report(
                    "deadlock",
                    "non-terminal state with no enabled action "
                    "(a run can get stuck here forever)",
                    state,
                ):
                    break
            continue
        if depth >= max_depth:
            result.complete = False
            continue
        for event, successor in successors:
            result.transitions += 1
            if successor in parents:
                continue
            if len(parents) >= max_states:
                result.complete = False
                continue
            parents[successor] = (state, event)
            frontier.append((successor, depth + 1))
    return result
