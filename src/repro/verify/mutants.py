"""Seeded protocol mutants: known-bad lifecycles the checker must catch.

A model checker that reports "no violations" proves nothing unless it
demonstrably *can* find one.  Each mutant here reintroduces a real,
previously-shipped bug into a copy of the corresponding model; the
verification entry point (:func:`repro.verify.run_verification`) requires
the checker to produce a counterexample against every mutant and fails the
whole run if one slips through clean -- the checking equivalent of a test
that must fail before the fix.

:class:`CancelledSweepMutant` is the PR-5 bug: the batch streamer's abort
path only ran for exceptions raised *after* the header emit entered the
item loop, so a client that disconnected before reading anything left the
sweep record ``running`` forever (and its window slots held).  In model
terms: the ``abort`` action is not enabled until at least one line has
been emitted.  The checker finds the stuck state as a deadlock -- a
non-terminal ``running`` sweep whose client is gone with no enabled
action -- within a handful of steps.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from ..service.protocol import DELTA_REPLAYING, DELTA_RESOLVING
from .models import _CLIENT_GONE, _EMITTED, BatchStreamModel, DeltaLifecycleModel

__all__ = ["CancelledSweepMutant", "MUTANTS", "SkipInvalidationMutant"]


class CancelledSweepMutant(BatchStreamModel):
    """The PR-5 cancelled-sweep bug, reintroduced (see the module docstring)."""

    name = "batch-stream[mutant:cancelled-sweep]"

    #: What the checker must report against this mutant.
    expected_kind = "deadlock"

    def _abort_enabled(
        self, sweep: str, stages: Tuple[int, ...], client: str
    ) -> bool:
        emitted_any = any(stage == _EMITTED for stage in stages)
        # BUG (deliberate): a disconnect before the first emitted line never
        # reaches the abort path -- the sweep stays "running" forever
        return (
            super()._abort_enabled(sweep, stages, client)
            and client == _CLIENT_GONE
            and emitted_any
        )


class SkipInvalidationMutant(DeltaLifecycleModel):
    """The PR-10 memo-invalidation blind spot, reintroduced as a lifecycle.

    Before the fix, a delta-derived cache entry could reach the store with
    the *base* graph's ψ/advice memos write-through-merged onto the mutated
    graph's record -- in lifecycle terms, a ``base_hit`` went straight to
    replaying without passing ``memos_invalidated``.  The checker must find
    the ordering violation within a few steps.
    """

    name = "delta-lifecycle[mutant:skip-invalidation]"

    #: What the checker must report against this mutant.
    expected_kind = "invariant"

    def _transition(self, state: str, event: str) -> str:
        # BUG (deliberate): base_hit skips the invalidating stage entirely,
        # carrying the base's memos into the replayed entry
        if state == DELTA_RESOLVING and event == "base_hit":
            return DELTA_REPLAYING
        return super()._transition(state, event)


#: Every seeded mutant, paired with the defect kind the checker must find.
MUTANTS = (CancelledSweepMutant, SkipInvalidationMutant)
