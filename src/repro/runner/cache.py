"""Process-wide memoisation of :class:`~repro.views.refinement.ViewRefinement`.

Every layer of the library (feasibility checks, the four ψ_Z computations,
the twin queries of the lower-bound lemmas, graph summaries) is driven by the
same partition-refinement object, and a refinement is pure -- it depends only
on the graph.  Before this cache existed, each benchmark script and each
``all_election_indices`` call rebuilt the refinement from scratch, so a sweep
that touches the same graph from five angles paid for five refinements.

:class:`RefinementCache` is a small LRU keyed on the *shallow bucket key* of
the graph (:meth:`repro.portgraph.graph.PortLabeledGraph.cache_key` -- three
O(n + m) hash rounds, deliberately cheaper than the fixpoint-precise
:meth:`~repro.portgraph.graph.PortLabeledGraph.fingerprint`, so a warm
lookup never refines).  Because the key is relabeling-invariant and shallow
it may collide for graphs with different node handles (isomorphic copies, or
structurally different graphs whose refinements only diverge deep), and a
refinement's colour lists are indexed by handle -- so each key maps to a
*bucket* of ``(graph, refinement)`` pairs compared by exact labeled
equality.  A hit therefore always returns a refinement that is correct for
the exact graph asked about, while the key keeps lookups O(1) in the number
of distinct graphs seen.

The module-level singleton :data:`refinement_cache` is what the rest of the
library uses: :func:`shared_refinement` is the default source of refinements
in :mod:`repro.core.feasibility`, :mod:`repro.core.election_index` and the
experiment runner, so one memoised refinement per graph serves ψ_S / ψ_PE /
ψ_PPE / ψ_CPPE queries, feasibility and twin queries alike.

Counters (hits, misses, evictions, and the total number of refinement
*passes* performed by cached refinements) are exposed via
:meth:`RefinementCache.stats`; a repeated sweep over the same spec must not
increase ``refinement_passes``, which is how the tests and the ``bench``
CLI certify cache reuse.

Since the store subsystem (PR 3) the cache can additionally be backed by a
persistent :class:`~repro.store.store.ArtifactStore`
(:meth:`RefinementCache.attach_store`): a miss then *reads through* the
store -- looked up by the same shallow key, resolved by exact graph
equality, and warm-started via the record's stored partitions so not a
single refinement pass is paid -- and computed entries are *written
through* with :meth:`RefinementCache.persist` /
:meth:`RefinementCache.flush_to_store`.  That is how a cold process (a CI
run, a fresh benchmark, a service worker) inherits every refinement and
ψ_Z search any previous process performed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..kernel import GraphKernel
from ..portgraph.graph import PortLabeledGraph
from ..store import ArtifactRecord, ArtifactStore
from ..views.refinement import ViewRefinement

__all__ = [
    "CacheEntry",
    "RefinementCache",
    "refinement_cache",
    "shared_refinement",
    "shared_kernel",
]

#: Default number of distinct bucket keys kept by the process-wide cache.
DEFAULT_MAXSIZE = 128


class CacheEntry:
    """One cached graph: its refinement and kernel plus a memo of derived results.

    ``memo`` maps hashable query keys -- e.g. ``("psi", "PPE", max_depth,
    max_states)`` or ``("feasible",)`` -- to previously computed answers.
    Every answer memoised here is a pure function of the graph (and of the
    key's own parameters), so replaying a sweep can skip not only the
    refinement passes but also the expensive PPE/CPPE joint searches.

    ``kernel`` is the graph's :class:`~repro.kernel.GraphKernel`: the lazily
    built CSR view, block-cut tree and per-source BFS distance arrays.  It is
    cached alongside the refinement so a warm sweep skips block-cut-tree
    construction (ψ_PE) and distance precomputation (ψ_PPE/ψ_CPPE pruning)
    exactly as it skips refinement passes.
    """

    __slots__ = ("graph", "refinement", "kernel", "memo", "lineage")

    def __init__(self, graph: PortLabeledGraph, refinement: ViewRefinement) -> None:
        self.graph = graph
        self.refinement = refinement
        self.kernel = GraphKernel(graph)
        self.memo: Dict[Tuple, object] = {}
        #: ``(parent_fingerprint, delta_digest)`` for delta-derived entries
        #: (see :meth:`RefinementCache.delta_entry`), else ``None``.  The
        #: write-through path records it on the persisted record.
        self.lineage: Optional[Tuple[str, str]] = None

    def estimated_bytes(self) -> int:
        """Rough retained footprint of this entry (bytes).

        Sums the refinement engine's per-depth state, the kernel objects
        (CSR arrays, block-cut tree, BFS distance arrays) and a flat charge
        per memo entry.  Evicting the entry releases all of it together --
        the engine and CSR view are memoised on the graph instance, whose
        only long-lived reference is this entry.
        """
        return (
            self.graph.refinement_engine().estimated_bytes()
            + self.kernel.estimated_bytes()
            + 64 * len(self.memo)
        )


class RefinementCache:
    """An LRU cache of :class:`ViewRefinement` objects, one per exact graph.

    ``maxsize`` bounds the total number of *entries* (exact graphs), not
    bucket keys: a bucket of relabeled copies of one graph is evicted
    entry-by-entry like everything else.

    The LRU bookkeeping and the counters are guarded by a lock, so lookups
    may be issued from multiple threads; the *returned* objects
    (:class:`ViewRefinement`, ``entry.memo``) are not themselves
    synchronised, so concurrent queries about the same graph at uncomputed
    depths should be serialised by the caller.  The library's own
    parallelism uses ``multiprocessing`` (one private cache per worker
    process), which avoids the issue entirely.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE, *, admission: str = "always") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._maxsize = maxsize
        # bucket key -> list of entries; the bucket resolves key
        # collisions by exact labeled-graph equality.
        self._buckets: "OrderedDict[str, List[CacheEntry]]" = OrderedDict()
        self._num_entries = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._evicted_passes = 0
        self._evicted_bytes = 0
        self._store: Optional[ArtifactStore] = None
        self._store_hits = 0
        self._store_misses = 0
        # admission policy state (see set_admission)
        self._admission = ""
        self._probation: "OrderedDict[str, List[CacheEntry]]" = OrderedDict()
        self._probation_entries = 0
        self._admissions = 0
        self._admission_rejects = 0
        self.set_admission(admission)

    # ------------------------------------------------------------------ #
    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def admission(self) -> str:
        return self._admission

    def set_admission(self, policy: str) -> str:
        """Select the admission policy; returns the previous one.

        ``"always"`` (the default) admits every miss straight into the main
        LRU -- the historical behaviour, right for sweeps that enumerate
        distinct graphs once each.  ``"second-touch"`` is frequency-
        observing, for zipf-shaped service traffic: a first-touch entry
        lands in a small probation FIFO and is promoted to the main LRU
        only when a *second request* asks for it, so a stream of one-hit
        wonders churns the probation ring instead of evicting hot
        residents.  Internal lookups (the write-through of
        :meth:`persist`) deliberately do not count as request touches.
        """
        if policy not in ("always", "second-touch"):
            raise ValueError(f"unknown admission policy: {policy!r}")
        with self._lock:
            previous, self._admission = self._admission, policy
        return previous

    def _probation_capacity(self) -> int:
        # big enough that an entry survives until its own write-through,
        # small enough that scan traffic cannot hold meaningful memory
        return min(8, self._maxsize)

    def __len__(self) -> int:
        with self._lock:
            return self._num_entries

    def entry(self, graph: PortLabeledGraph) -> CacheEntry:
        """The cache entry of ``graph`` (created on first request).

        With a store attached, an in-memory miss first *reads through* the
        store: a record of an exactly equal graph warm-starts the entry
        (partitions installed, fingerprint seeded, ψ/feasibility memo
        pre-filled) so the cold process performs zero refinement passes.
        The store lookup happens under the cache lock -- it is a small read
        of a content-addressed file, and serialising it also means
        concurrent threads asking for the same graph trigger one disk read,
        not several.
        """
        return self._entry(graph, request=True)

    def _entry(self, graph: PortLabeledGraph, *, request: bool) -> CacheEntry:
        key = graph.cache_key()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is not None:
                self._buckets.move_to_end(key)
                for stored in bucket:
                    if stored.graph == graph:
                        self._hits += 1
                        return stored
            probation_bucket = self._probation.get(key)
            if probation_bucket is not None:
                for stored in probation_bucket:
                    if stored.graph == graph:
                        self._hits += 1
                        if request:
                            # second observed request: promote to the main LRU
                            probation_bucket.remove(stored)
                            if not probation_bucket:
                                del self._probation[key]
                            self._probation_entries -= 1
                            self._admit_locked(key, stored)
                            self._admissions += 1
                        return stored
            self._misses += 1
            memo_seed = None
            if self._store is not None:
                record = self._store.load_for_graph(graph)
                if record is not None:
                    record.adopt_onto(graph)
                    memo_seed = record.memo_entries()
                    self._store_hits += 1
                else:
                    self._store_misses += 1
            entry = CacheEntry(graph, ViewRefinement(graph))
            if memo_seed:
                entry.memo.update(memo_seed)
            if self._admission == "second-touch":
                self._probation.setdefault(key, []).append(entry)
                self._probation_entries += 1
                while self._probation_entries > self._probation_capacity():
                    oldest_key = next(iter(self._probation))
                    oldest_bucket = self._probation[oldest_key]
                    rejected = oldest_bucket.pop(0)
                    if not oldest_bucket:
                        del self._probation[oldest_key]
                    self._probation_entries -= 1
                    self._admission_rejects += 1
                    # keep refinement_passes monotone across the drop
                    self._evicted_passes += rejected.refinement.passes
                    self._evicted_bytes += rejected.estimated_bytes()
            else:
                self._admit_locked(key, entry)
            return entry

    def _admit_locked(self, key: str, entry: CacheEntry) -> None:
        """Insert ``entry`` into the main LRU and evict down to ``maxsize``."""
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
        else:
            bucket.append(entry)
        self._buckets.move_to_end(key)
        self._num_entries += 1
        while self._num_entries > self._maxsize:
            # evict the oldest entry of the least-recently-used bucket;
            # the entry's kernel objects (CSR, block-cut tree, BFS
            # distance arrays) go with it, and their footprint is
            # accounted in evicted_bytes
            oldest_key = next(iter(self._buckets))
            oldest_bucket = self._buckets[oldest_key]
            evicted = oldest_bucket.pop(0)
            if not oldest_bucket:
                del self._buckets[oldest_key]
            self._num_entries -= 1
            self._evictions += 1
            self._evicted_passes += evicted.refinement.passes
            self._evicted_bytes += evicted.estimated_bytes()

    def get(self, graph: PortLabeledGraph) -> ViewRefinement:
        """The memoised refinement of ``graph`` (created on first request)."""
        return self.entry(graph).refinement

    # ------------------------------------------------------------------ #
    # delta-derived entries (the incremental recompute path)
    # ------------------------------------------------------------------ #
    def delta_entry(
        self, base_graph: PortLabeledGraph, delta, *, events: Optional[list] = None
    ) -> CacheEntry:
        """The entry of ``delta`` applied to ``base_graph``, replayed not recomputed.

        Applies the :class:`~repro.portgraph.delta.GraphDelta`, then derives
        the mutated graph's entry from the base's instead of refining cold:
        the CSR view is patched (:meth:`~repro.kernel.csr.CSRGraph.patched`),
        the partitions are replayed over the dirty ball
        (:func:`~repro.kernel.refine.refinement_delta`) and the kernel memos
        are carried selectively (:meth:`~repro.kernel.GraphKernel.derived`).
        If the exact mutated graph is already cached (memory or store), that
        entry wins and no replay happens.

        **Memo invalidation.**  A derived entry never inherits the base's
        ψ/advice memos: every ψ index and advice bitstring is supported by
        *all* classes of the graph, and a non-empty delta dirties at least
        one, so inheriting them is exactly the staleness the write-through
        regression test pins down.  The one class-local survivor is
        ``("feasible",)`` — a pure function of the fixpoint partition — which
        carries over only when the replay proves the partition unchanged
        (same handles, byte-equal canonical tables).

        The entry's :attr:`~CacheEntry.lineage` names the base fingerprint
        and delta digest; :meth:`persist` stamps both onto the stored record.

        ``events``, when given, receives the delta-protocol events this call
        performed (``cache_hit``, or ``base_hit`` / ``memos_invalidated`` /
        ``replayed``) in order -- the service replays them through
        :class:`~repro.service.protocol.DeltaStatus` so the lifecycle the
        model checker verifies is the lifecycle the cache actually ran.
        """
        result = delta.apply_to(base_graph)
        graph = result.graph
        key = graph.cache_key()
        with self._lock:
            for collection in (self._buckets.get(key), self._probation.get(key)):
                if collection:
                    for stored in collection:
                        if stored.graph == graph:
                            self._hits += 1
                            if events is not None:
                                events.append("cache_hit")
                            return stored
        if self._store is not None:
            # an exact record of the mutated graph beats a replay outright
            record = self._store.load_for_graph(graph)
            if record is not None:
                with self._lock:
                    self._store_hits += 1
                record.adopt_onto(graph)
                entry = CacheEntry(graph, ViewRefinement(graph))
                entry.memo.update(record.memo_entries())
                with self._lock:
                    self._admit_locked(key, entry)
                if events is not None:
                    events.append("cache_hit")
                return entry

        base_entry = self._entry(base_graph, request=False)
        if events is not None:
            events.append("base_hit")
        base_engine = base_entry.graph.refinement_engine()
        from ..kernel.refine import refinement_delta  # lazy, mirrors graph.py

        patched = base_entry.graph.csr().patched(result)
        graph.adopt_csr(patched)
        # the fresh entry's memo starts empty: this IS the invalidation --
        # none of the base's ψ/advice memos survive into the derived entry
        if events is not None:
            events.append("memos_invalidated")
        engine = refinement_delta(base_engine, patched, result.node_map, result.touched)
        graph.adopt_engine(engine)
        if events is not None:
            events.append("replayed")
        entry = CacheEntry(graph, ViewRefinement(graph))
        entry.kernel = GraphKernel.derived(
            graph, base_entry.kernel, topology_changed=result.topology_changed
        )
        entry.lineage = (base_entry.graph.fingerprint(), delta.digest())
        base_feasible = base_entry.memo.get(("feasible",))
        if (
            base_feasible is not None
            and not result.renamed
            and len(result.node_map) == base_graph.num_nodes
            and engine.class_counts == base_engine.class_counts
            and engine.canonical_tables() == base_engine.canonical_tables()
        ):
            entry.memo[("feasible",)] = base_feasible
        with self._lock:
            self._misses += 1
            # computing the base above may have admitted an entry for this
            # very labeling (a delta that composes back to the identity):
            # replace it, or a later lookup -- persist() in particular --
            # would resolve the lineage-less duplicate first.  Equality is
            # exact labeled equality, so the duplicate's memos answer for
            # the same graph and carry over soundly.
            for collection, counter in (
                (self._buckets, "_num_entries"),
                (self._probation, "_probation_entries"),
            ):
                bucket = collection.get(key)
                if not bucket:
                    continue
                for stored in list(bucket):
                    if stored.graph == graph:
                        bucket.remove(stored)
                        setattr(self, counter, getattr(self, counter) - 1)
                        self._evicted_passes += stored.refinement.passes
                        self._evicted_bytes += stored.estimated_bytes()
                        for memo_key, value in stored.memo.items():
                            entry.memo.setdefault(memo_key, value)
                if not bucket:
                    del collection[key]
            self._admit_locked(key, entry)
        return entry

    def clear(self) -> None:
        """Drop all entries and reset the counters (the store and the
        admission policy stay as configured)."""
        with self._lock:
            self._buckets.clear()
            self._num_entries = 0
            self._probation.clear()
            self._probation_entries = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._evicted_passes = 0
            self._evicted_bytes = 0
            self._store_hits = 0
            self._store_misses = 0
            self._admissions = 0
            self._admission_rejects = 0

    # ------------------------------------------------------------------ #
    # persistent store backend
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[ArtifactStore]:
        """The attached persistent artifact store, if any."""
        return self._store

    def attach_store(self, store: Optional[ArtifactStore]) -> None:
        """Back this cache with a persistent store (``None`` detaches).

        Attaching only affects *future* lookups; existing entries stay
        in memory and can be persisted with :meth:`flush_to_store`.
        """
        with self._lock:
            self._store = store

    def persist(self, graph: PortLabeledGraph, *, include_advice: bool = True) -> bool:
        """Write-through the entry of ``graph`` to the attached store.

        Ensures the entry exists (computing it if needed), snapshots it into
        an :class:`~repro.store.record.ArtifactRecord` -- refined to the
        fixpoint, with every memoised ψ/feasibility outcome -- merges it
        with any record already stored for the fingerprint, and puts the
        result.  Returns whether bytes were written (``False`` both when no
        store is attached and when the stored record was already
        up to date).
        """
        store = self._store
        if store is None:
            return False
        # an internal lookup, not a request: under "second-touch" admission
        # the write-through of a freshly computed entry must not count as
        # the promoting touch, or every one-hit item would self-admit
        entry = self._entry(graph, request=False)
        lineage = entry.lineage or ("", "")
        # the record's ψ/advice sections come from entry.memo alone: a
        # delta-derived entry starts with an empty memo (its base's ψ/advice
        # are never inherited — see delta_entry), so nothing stale from the
        # parent fingerprint can reach the store through this write
        record = ArtifactRecord.from_computed(
            entry.graph,
            memo=entry.memo,
            include_advice=include_advice,
            parent_fingerprint=lineage[0],
            delta_digest=lineage[1],
        )
        # merge with what the store holds for this *exact labeled graph* --
        # resolved through the same lookup the warm-start path uses, so a
        # labeling spilled behind a colliding fingerprint merges with its
        # own record, never with the primary owner's
        existing = store.load_for_graph(entry.graph)
        if existing is not None:
            try:
                record = record.merged_with(existing)
            except ValueError:  # pragma: no cover - defensive
                pass
        return store.put(record)

    def flush_to_store(self) -> int:
        """Persist every live entry; returns how many records were written."""
        if self._store is None:
            return 0
        with self._lock:
            entries = [entry for bucket in self._buckets.values() for entry in bucket]
            entries += [entry for bucket in self._probation.values() for entry in bucket]
        written = 0
        for entry in entries:
            if self.persist(entry.graph):
                written += 1
        return written

    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def refinement_passes(self) -> int:
        """Total refinement passes performed by refinements this cache created.

        Includes passes of entries that have since been evicted, so the value
        is monotone: if it is unchanged after a sweep, the sweep performed no
        partition refinement at all -- every query was served from memoised
        partitions.
        """
        with self._lock:
            live = sum(
                entry.refinement.passes
                for bucket in self._buckets.values()
                for entry in bucket
            )
            live += sum(
                entry.refinement.passes
                for bucket in self._probation.values()
                for entry in bucket
            )
            return live + self._evicted_passes

    @property
    def evicted_bytes(self) -> int:
        """Estimated bytes released by evictions (refinements *and* kernels)."""
        return self._evicted_bytes

    @property
    def store_hits(self) -> int:
        """In-memory misses that were served by the attached store."""
        return self._store_hits

    @property
    def store_misses(self) -> int:
        """In-memory misses the attached store could not serve either."""
        return self._store_misses

    @property
    def admissions(self) -> int:
        """Probation entries promoted to the main LRU by a second request."""
        return self._admissions

    @property
    def admission_rejects(self) -> int:
        """Probation entries dropped without ever earning a second request."""
        return self._admission_rejects

    def live_bytes(self) -> int:
        """Estimated retained footprint of all live entries (bytes)."""
        with self._lock:
            return sum(
                entry.estimated_bytes()
                for bucket in self._buckets.values()
                for entry in bucket
            ) + sum(
                entry.estimated_bytes()
                for bucket in self._probation.values()
                for entry in bucket
            )

    def stats(self) -> Dict[str, int]:
        """A snapshot of all counters (suitable for printing or diffing)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "currsize": len(self),
            "maxsize": self.maxsize,
            "refinement_passes": self.refinement_passes,
            "evicted_bytes": self.evicted_bytes,
            "live_bytes": self.live_bytes(),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "probation": self._probation_entries,
            "admissions": self.admissions,
            "admission_rejects": self.admission_rejects,
        }


#: The process-wide cache used by the library's default code paths.
refinement_cache = RefinementCache()


def shared_refinement(graph: PortLabeledGraph) -> ViewRefinement:
    """The process-wide memoised :class:`ViewRefinement` of ``graph``."""
    return refinement_cache.get(graph)


def shared_kernel(graph: PortLabeledGraph) -> GraphKernel:
    """The process-wide memoised :class:`~repro.kernel.GraphKernel` of ``graph``.

    Lives on the same cache entry as the refinement, so one lookup warms both
    and eviction drops both together.
    """
    return refinement_cache.entry(graph).kernel
