"""Worker-process bootstrap shared by the runner fan-out and the service shards.

Both parallel subsystems of the reproduction -- the experiment runner's
``multiprocessing.Pool`` fan-out and the election service's sharded process
backend (:mod:`repro.service.workers`) -- need the same thing from a fresh
worker process: a process-wide refinement cache backed by the persistent
artifact store, so workers exchange fingerprint-addressed *results* on disk
instead of recomputing them per process.  This module is that single
bootstrap; it deliberately has no other runner or service dependencies so a
spawned worker importing it pays only for the cache/store layers.
"""

from __future__ import annotations

import os
from typing import Optional

from .cache import refinement_cache

__all__ = ["attach_store_path", "bootstrap_worker"]


def attach_store_path(store_path: str) -> None:
    """Back the process-wide refinement cache with the store at ``store_path``.

    Idempotent per path; a different path replaces the attached store.  Also
    used as the ``multiprocessing`` pool initializer so every worker process
    reads and writes through the same on-disk store -- which is what lets
    the fan-out ship fingerprint-addressed *results* between processes
    instead of recomputing them in each.
    """
    from ..store import ArtifactStore  # lazy: keep the serial path import-light

    current = refinement_cache.store
    resolved = os.path.abspath(store_path)
    if current is None or current.root != resolved:
        refinement_cache.attach_store(ArtifactStore(resolved))


def bootstrap_worker(
    store_path: Optional[str] = None,
    kernel_backend: Optional[str] = None,
    hot_tier_bytes: int = 0,
    cache_admission: Optional[str] = None,
) -> None:
    """Initialise one worker process (runner pool worker or service shard).

    Attaches the store when one is configured, and pins the kernel compute
    backend to the parent's selection.  The environment variable alone would
    cover spawn-context children (``os.environ`` is inherited), but carrying
    the choice in the initializer keeps the propagation explicit and robust
    to a scrubbed environment; ``"auto"`` is passed through as *auto*, so a
    worker without numpy still falls back rather than failing.

    ``hot_tier_bytes``, when positive, enables the attached store's
    in-process hot tier with that byte budget (service shards serving
    repeat traffic); ``cache_admission`` selects the refinement cache's
    admission policy (e.g. ``"second-touch"`` for zipf-shaped service
    traffic) -- both are no-ops by default so runner pool workers keep the
    historical sweep-oriented behaviour.
    """
    if kernel_backend is not None:
        from ..kernel.backend import set_backend  # lazy: keep workers import-light

        set_backend(kernel_backend)
    if store_path is not None:
        attach_store_path(store_path)
        if hot_tier_bytes > 0 and refinement_cache.store is not None:
            refinement_cache.store.enable_hot_tier(hot_tier_bytes)
    if cache_admission is not None:
        refinement_cache.set_admission(cache_admission)
