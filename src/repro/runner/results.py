"""Deterministic result tables emitted by the experiment runner.

A :class:`ResultTable` is a plain (columns, rows) container with three
serialisations -- JSON, CSV and the library's aligned plain-text format.  All
three are *byte-deterministic*: the same table always serialises to the same
bytes, with no timestamps, no float formatting ambiguity and a fixed column
order, so a parallel run and a serial run of the same sweep can be compared
with ``==`` on the serialised output (which the acceptance tests do).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Any, List, Mapping, Sequence, Tuple

from ..analysis.statistics import format_table

__all__ = ["ResultTable"]


@dataclass(frozen=True)
class ResultTable:
    """An immutable table of experiment results."""

    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]

    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]]) -> "ResultTable":
        """Build a table from dict records; columns in first-seen order.

        Records missing a column get ``None`` in that cell, so heterogeneous
        sweeps (e.g. graphs with different profile depths) still line up.
        """
        columns: List[str] = []
        for record in records:
            for name in record:
                if name not in columns:
                    columns.append(name)
        rows = tuple(tuple(record.get(name) for name in columns) for record in records)
        return cls(columns=tuple(columns), rows=rows)

    def records(self) -> List[dict]:
        """The rows as dicts (the inverse of :meth:`from_records`)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------ #
    # serialisations
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        payload = {"columns": list(self.columns), "rows": [list(row) for row in self.rows]}
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if cell is None else cell for cell in row])
        return buffer.getvalue()

    def to_text(self) -> str:
        return format_table(list(self.columns), [list(row) for row in self.rows])

    def render(self, fmt: str) -> str:
        if fmt == "json":
            return self.to_json()
        if fmt == "csv":
            return self.to_csv()
        if fmt == "text":
            return self.to_text() + "\n"
        raise ValueError(f"unknown format {fmt!r} (expected text, json or csv)")
