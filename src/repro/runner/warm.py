"""The ``repro warm`` pipeline: precompute a sweep into the artifact store.

The serving story of this reproduction is "never compute the same thing
twice": the store holds every refinement and ψ_Z search any process ever
performed, and the service warm-starts from it.  What was missing is a way
to *front-load* that store before launch -- run a corpus once, offline,
with the runner's multiprocessing fan-out, so the first production request
of every popular graph is already a store hit.  :func:`warm_sweep` is that
pipeline.

Interop with the batch service is deliberate and exact:

* **Same identity.**  The sweep id is the same content digest the batch
  coordinator computes for a declarative ``POST /elections`` sweep -- item
  payloads are built byte-for-byte like
  :func:`repro.service.batch.expand_sweep` builds them -- so warming a
  corpus and then POSTing the same corpus to a service on the same store
  is one sweep with one progress record.
* **Same progress record.**  Progress persists as a
  :class:`~repro.service.batch.SweepStatus` document under
  ``<store>/sweeps/<id>.json`` after every item, so ``GET /sweeps/<id>``
  on a service sharing the store reports the warm run's progress live,
  and an interrupted warm resumes where it stopped (``resume=True`` skips
  every item already marked ok).
* **Same artifacts.**  Items evaluate through the very same
  :func:`~repro.runner.runner.evaluate_graph` write-through path as the
  service, so results are byte-identical however they are reached.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from .runner import ExperimentRunner
from .spec import SweepSpec

__all__ = ["WarmReport", "batch_items", "warm_sweep"]

#: Per-item progress callback: ``(done, total, label, status)``.
ProgressFn = Callable[[int, int, str, str], None]


@dataclass(frozen=True)
class WarmReport:
    """What one :func:`warm_sweep` run did."""

    sweep_id: str
    total: int
    #: Items finished across all runs of this sweep (resume included).
    completed: int
    #: Items computed by *this* run.
    warmed: int
    #: Items skipped because a previous run already finished them.
    skipped: int
    errors: int
    elapsed: float
    jobs: int
    #: ``ArtifactStore.stats()`` of the warmed store after the run.
    store_stats: Dict[str, int]
    #: ``ArtifactStore.compact()`` summary when compaction was requested.
    compaction: Optional[Dict[str, int]] = None


def batch_items(sweep: SweepSpec, *, shared: Optional[Dict[str, Any]] = None) -> List[dict]:
    """The sweep's single-query item payloads, exactly as the batch service
    expands a declarative sweep (``dict(shared, spec=spec.to_dict())``) --
    the basis of the shared sweep id."""
    shared = dict(shared or {})
    return [dict(shared, spec=spec.to_dict()) for spec in sweep.graphs]


def _sweep_identity(items: List[dict]) -> str:
    # the batch coordinator's digest over the same payloads; imported lazily
    # so the runner layer only touches the service package when warming
    from ..service.batch import BatchItem, _sweep_digest

    return _sweep_digest([BatchItem(i, payload=payload) for i, payload in enumerate(items)])


def _status_path(store_path: str, sweep_id: str) -> str:
    return os.path.join(os.path.abspath(store_path), "sweeps", f"{sweep_id}.json")


def _persist_status(path: str, status) -> None:
    """Atomically write the progress record (same format as the service)."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(status.to_dict(), handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def _completed_indices(path: str, total: int) -> List[int]:
    """Item indices a previous run of this sweep already finished ok."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return []
    items = previous.get("items") if isinstance(previous, dict) else None
    if not isinstance(items, str) or len(items) != total:
        return []
    return [index for index, mark in enumerate(items) if mark == "+"]


def warm_sweep(
    sweep: SweepSpec,
    store_path: str,
    *,
    shared: Optional[Dict[str, Any]] = None,
    jobs: int = 1,
    resume: bool = True,
    compact: bool = False,
    progress: Optional[ProgressFn] = None,
) -> WarmReport:
    """Precompute every item of ``sweep`` into the store at ``store_path``.

    ``shared`` carries the request options (``tasks`` / ``max_depth`` /
    ``max_states``) into the item payloads for identity purposes -- pass
    the same values a declarative service sweep would, or nothing for the
    service defaults.  ``jobs > 1`` fans items out over the runner's
    worker-process pool (each worker reads and writes through the same
    store).  With ``resume`` (the default), items a previous run marked ok
    are skipped -- their results are already on disk.  ``compact=True``
    runs a store compaction after the sweep and reports its summary.
    """
    from ..service.batch import SweepStatus
    from ..store import ArtifactStore

    if not sweep.graphs:
        raise ValueError("nothing to warm: the sweep has no graphs")
    items = batch_items(sweep, shared=shared)
    sweep_id = _sweep_identity(items)
    path = _status_path(store_path, sweep_id)
    done = _completed_indices(path, len(items)) if resume else []
    done_set = set(done)
    pending = [index for index in range(len(items)) if index not in done_set]

    status = SweepStatus(
        sweep_id=sweep_id,
        total=len(items),
        window=max(1, jobs),
        completed=len(done),
        ok=len(done),
        item_status=["ok" if index in done_set else "pending" for index in range(len(items))],
    )
    started = time.perf_counter()
    warmed = 0
    errors = 0
    store = ArtifactStore(store_path)
    if pending:
        _persist_status(path, status)
        runner = ExperimentRunner(workers=jobs, store_path=store_path)
        subset = replace(sweep, graphs=tuple(sweep.graphs[index] for index in pending))
        for subset_index, item_status, payload in runner.stream(subset):
            index = pending[subset_index]
            status.apply("item_resolved")
            status.completed += 1
            if item_status == "ok":
                status.ok += 1
                warmed += 1
            else:
                status.errors += 1
                errors += 1
            status.item_status[index] = item_status
            _persist_status(path, status)
            if progress is not None:
                progress(
                    status.completed,
                    status.total,
                    sweep.graphs[index].label,
                    item_status,
                )
    status.apply("completed")
    _persist_status(path, status)
    compaction = store.compact() if compact else None
    return WarmReport(
        sweep_id=sweep_id,
        total=len(items),
        completed=status.completed,
        warmed=warmed,
        skipped=len(done),
        errors=errors,
        elapsed=time.perf_counter() - started,
        jobs=jobs,
        store_stats=store.stats(),
        compaction=compaction,
    )
