"""The batched experiment runner: one sweep in, one deterministic table out.

The runner expands a :class:`~repro.runner.spec.SweepSpec` into one *job per
graph*, evaluates every job (feasibility, the requested ψ_Z indices, optional
view-class profiles), and assembles the rows -- in spec order, regardless of
completion order -- into a :class:`~repro.runner.results.ResultTable`.

Within a job all queries share a single memoised
:class:`~repro.views.refinement.ViewRefinement` obtained from the
process-wide :data:`~repro.runner.cache.refinement_cache`, so a graph that
appears in several sweeps (or several times in one sweep) is refined at most
once per process.  With ``workers > 1`` jobs fan out over a
``multiprocessing`` pool in deterministic chunks; each worker process keeps
its own refinement cache, and because job evaluation is pure, parallel and
serial runs of the same spec produce byte-identical tables.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

import os

from ..core.election_index import SearchLimitExceeded, election_index
from ..core.feasibility import is_feasible
from ..core.election_index import search_statistics
from ..kernel.backend import BACKEND_ENV_VAR
from ..obs import span as obs_span
from .bootstrap import attach_store_path, bootstrap_worker
from .cache import refinement_cache
from .results import ResultTable
from .spec import GraphSpec, SweepSpec

__all__ = [
    "ExperimentRunner",
    "RunReport",
    "attach_store_path",
    "evaluate_graph",
    "evaluate_graph_spec",
    "run_sweep",
]


def evaluate_graph(graph, sweep: SweepSpec, *, label: Optional[str] = None) -> Dict[str, Any]:
    """Evaluate one built graph into a flat result record.

    Fetches the graph's entry from the process-wide refinement cache and
    answers every requested query against that one refinement.  Feasibility
    and the ψ_Z values (keyed by their search parameters) are memoised on
    the entry, so replaying a sweep skips the PPE/CPPE joint searches as
    well as the refinement passes; with a store attached the entry itself
    may arrive warm from disk, and the computed outcome is written through
    at the end.  A PPE or CPPE search that exceeds ``sweep.max_states``
    records ``None`` for the index and lists the task under
    ``search_limited`` instead of aborting the whole sweep.
    """
    with obs_span("evaluate_graph") as profile_span:
        return _evaluate_graph_traced(graph, sweep, label, profile_span)


def _cheap_counters() -> Dict[str, int]:
    """Point-read counters only -- no cache scan, no manifest read -- so a
    traced warm evaluation stays within the tracing-overhead budget."""
    counters = dict(search_statistics())
    counters["cache_hits"] = refinement_cache.hits
    counters["cache_misses"] = refinement_cache.misses
    counters["refinement_passes"] = refinement_cache.refinement_passes
    counters["store_hits"] = refinement_cache.store_hits
    counters["store_misses"] = refinement_cache.store_misses
    store = refinement_cache.store
    if store is not None:
        io = store.io_counters()
        counters["store_bytes_read"] = io["bytes_read"]
        counters["store_bytes_written"] = io["bytes_written"]
    else:
        counters["store_bytes_read"] = 0
        counters["store_bytes_written"] = 0
    return counters


def _evaluate_graph_traced(graph, sweep: SweepSpec, label, profile_span) -> Dict[str, Any]:
    if profile_span.recording:
        before = _cheap_counters()
    entry = refinement_cache.entry(graph)
    refinement = entry.refinement
    memo_size_before = len(entry.memo)
    feasible = entry.memo.get(("feasible",))
    if feasible is None:
        feasible = is_feasible(graph, refinement=refinement)
        entry.memo[("feasible",)] = feasible
    record: Dict[str, Any] = {
        "graph": graph.name if label is None else label,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "max_degree": graph.max_degree,
        "feasible": feasible,
    }
    limited: List[str] = []
    for task in sweep.tasks:
        memo_key = ("psi", task.value, sweep.max_depth, sweep.max_states)
        outcome = entry.memo.get(memo_key)
        if outcome is None:
            try:
                outcome = ("ok", election_index(
                    task,
                    graph,
                    refinement=refinement,
                    max_depth=sweep.max_depth,
                    max_states=sweep.max_states,
                ))
            except SearchLimitExceeded:
                outcome = ("limited", None)
            entry.memo[memo_key] = outcome
        status, value = outcome
        if status == "limited":
            limited.append(task.value)
        record[f"psi_{task.value}"] = value
    for depth in sweep.profile_depths:
        record[f"classes_at_{depth}"] = refinement.num_classes(depth)
        record[f"unique_at_{depth}"] = len(refinement.unique_nodes(depth))
    if sweep.tasks or sweep.profile_depths:
        record["search_limited"] = ",".join(limited)
    if refinement_cache.store is not None and len(entry.memo) > memo_size_before:
        # write through only when this evaluation computed something new --
        # a fully warm replay (every answer memoised, possibly straight from
        # the store) skips the record re-encode and disk compare entirely
        refinement_cache.persist(graph)
    if profile_span.recording:
        after = _cheap_counters()
        tags = {key: after[key] - before[key] for key in after}
        tags["search_states"] = tags.pop("states")
        tags["search_cells"] = tags.pop("cells")
        tags["graph"] = record["graph"]
        tags["n"] = graph.num_nodes
        profile_span.add_tags(tags)
    return record


def evaluate_graph_spec(spec: GraphSpec, sweep: SweepSpec) -> Dict[str, Any]:
    """Evaluate one graph of a sweep into a flat result record (see :func:`evaluate_graph`)."""
    return evaluate_graph(spec.build(), sweep, label=spec.label)


def _evaluate_indexed(job: Tuple[int, GraphSpec, SweepSpec]) -> Tuple[int, Dict[str, Any]]:
    index, spec, sweep = job
    return index, evaluate_graph_spec(spec, sweep)


def _evaluate_guarded(
    job: Tuple[int, GraphSpec, SweepSpec]
) -> Tuple[int, str, Any]:
    """Streaming job wrapper: a bad graph fails its *item*, not the sweep.

    Batch sweeps mix arbitrary client-supplied specs, where one invalid
    parameter set (caught as ``ValueError`` by the builders) must surface as
    a per-item error record while the rest of the stream proceeds.
    """
    index, spec, sweep = job
    try:
        return index, "ok", evaluate_graph_spec(spec, sweep)
    except ValueError as error:
        return index, "error", f"{spec.label}: {error}"


@dataclass(frozen=True)
class RunReport:
    """A finished sweep: the table plus execution metadata.

    Only :attr:`table` is deterministic; :attr:`elapsed` and
    :attr:`cache_stats` describe this particular execution.  For parallel
    runs ``cache_stats`` reflects the parent process only -- worker caches
    live and die with their processes.
    """

    table: ResultTable
    elapsed: float
    workers: int
    cache_stats: Dict[str, int]
    #: Stats of the attached artifact store, when the runner was given one
    #: (parent-process handle only, like ``cache_stats``).
    store_stats: Optional[Dict[str, int]] = None


class ExperimentRunner:
    """Runs :class:`SweepSpec` sweeps serially or across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (the default) evaluates in-process
        and is what populates the long-lived refinement cache of the calling
        process.
    chunk_size:
        Jobs handed to a worker at a time.  Defaults to spreading the jobs
        about four chunks per worker, which keeps scheduling balanced without
        drowning small sweeps in IPC.
    store_path:
        Directory of a persistent :class:`~repro.store.store.ArtifactStore`.
        When given, the parent process *and* every worker process attach the
        store to their refinement cache: jobs warm-start from records any
        earlier process (or an earlier job of this very sweep) persisted,
        and write their own results through, so the fan-out exchanges
        fingerprint-addressed artifacts on disk instead of recomputing per
        process.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        store_path: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self._workers = workers
        self._chunk_size = chunk_size
        self._store_path = store_path

    @property
    def workers(self) -> int:
        return self._workers

    def _resolve_chunk_size(self, num_jobs: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        return max(1, num_jobs // (self._workers * 4))

    def _worker_initargs(self) -> Tuple[Optional[str], str]:
        """Arguments for :func:`bootstrap_worker` in each pool worker.

        Forwards the store path and the parent's kernel-backend request (the
        request -- e.g. ``auto`` -- not its resolution, so a worker without
        numpy still falls back instead of failing).
        """
        return (self._store_path, os.environ.get(BACKEND_ENV_VAR, "auto"))

    def run(self, sweep: SweepSpec) -> RunReport:
        """Evaluate the sweep and return the (deterministically ordered) report."""
        if self._store_path is not None:
            attach_store_path(self._store_path)
        # each job carries only the evaluation settings, not the whole graph
        # list -- otherwise a G-graph parallel sweep pickles O(G^2) spec data
        settings = replace(sweep, graphs=())
        jobs = [(index, spec, settings) for index, spec in enumerate(sweep.graphs)]
        started = time.perf_counter()
        if self._workers == 1 or len(jobs) <= 1:
            indexed = [_evaluate_indexed(job) for job in jobs]
        else:
            chunk = self._resolve_chunk_size(len(jobs))
            with multiprocessing.Pool(
                processes=self._workers,
                initializer=bootstrap_worker,
                initargs=self._worker_initargs(),
            ) as pool:
                indexed = pool.map(_evaluate_indexed, jobs, chunksize=chunk)
        indexed.sort(key=lambda pair: pair[0])
        table = ResultTable.from_records([record for _index, record in indexed])
        elapsed = time.perf_counter() - started
        store = refinement_cache.store
        return RunReport(
            table=table,
            elapsed=elapsed,
            workers=self._workers,
            cache_stats=refinement_cache.stats(),
            store_stats=store.stats() if store is not None else None,
        )

    def stream(self, sweep: SweepSpec) -> Iterator[Tuple[int, str, Any]]:
        """Evaluate the sweep lazily, yielding ``(index, status, payload)``.

        Items arrive in spec order as they complete -- serially one by one,
        with ``workers > 1`` through ``pool.imap`` (order-preserving, so the
        stream is deterministic either way).  ``status`` is ``"ok"`` with the
        flat result record, or ``"error"`` with a message for a graph whose
        construction failed; unlike :meth:`run`, a bad item does not abort
        the sweep.  Store write-through works exactly as in :meth:`run`.
        This is the fan-out behind the batch service's declarative sweeps
        and the ``sweep`` / ``bench --batch`` CLI streaming modes.
        """
        if self._store_path is not None:
            attach_store_path(self._store_path)
        settings = replace(sweep, graphs=())
        jobs = [(index, spec, settings) for index, spec in enumerate(sweep.graphs)]
        if self._workers == 1 or len(jobs) <= 1:
            for job in jobs:
                yield _evaluate_guarded(job)
            return
        chunk = self._resolve_chunk_size(len(jobs))
        with multiprocessing.Pool(
            processes=self._workers,
            initializer=bootstrap_worker,
            initargs=self._worker_initargs(),
        ) as pool:
            for item in pool.imap(_evaluate_guarded, jobs, chunksize=chunk):
                yield item


def run_sweep(
    sweep: SweepSpec,
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    store_path: Optional[str] = None,
) -> RunReport:
    """Convenience wrapper: ``ExperimentRunner(workers=...).run(sweep)``."""
    return ExperimentRunner(
        workers=workers, chunk_size=chunk_size, store_path=store_path
    ).run(sweep)
