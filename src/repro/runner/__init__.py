"""Batched experiment runner with shared refinement caching.

This subsystem turns the ad-hoc loops of the benchmark scripts into data:

* :mod:`repro.runner.cache` -- a process-wide LRU of memoised
  :class:`~repro.views.refinement.ViewRefinement` objects keyed on the
  canonical graph fingerprint, shared by feasibility checks, ψ_Z index
  computation and the lower-bound twin queries;
* :mod:`repro.runner.spec` -- declarative, picklable sweep specifications
  (graph families x tasks x depths);
* :mod:`repro.runner.runner` -- the :class:`ExperimentRunner` that fans a
  sweep out over ``multiprocessing`` workers with chunked scheduling and
  deterministic result ordering;
* :mod:`repro.runner.results` -- byte-deterministic JSON/CSV/text tables;
* :mod:`repro.runner.warm` -- the ``repro warm`` precompute pipeline:
  front-load a corpus into the artifact store with the same sweep identity
  and progress records as the batch service, resumably;
* :mod:`repro.runner.bootstrap` -- the worker-process initializer
  (:func:`attach_store_path`) shared by the runner's ``multiprocessing``
  pool and the election service's sharded process backend.

See the "runner" section of ``DESIGN.md`` for the data flow and the
``bench`` subcommand of :mod:`repro.cli` for the command-line entry point.
"""

from .bootstrap import attach_store_path, bootstrap_worker
from .cache import (
    CacheEntry,
    RefinementCache,
    refinement_cache,
    shared_kernel,
    shared_refinement,
)
from .results import ResultTable
from .runner import (
    ExperimentRunner,
    RunReport,
    evaluate_graph,
    evaluate_graph_spec,
    run_sweep,
)
from .spec import GraphSpec, SweepSpec, graph_kinds, sized_graph_kinds
from .warm import WarmReport, warm_sweep

__all__ = [
    "WarmReport",
    "warm_sweep",
    "CacheEntry",
    "RefinementCache",
    "refinement_cache",
    "shared_refinement",
    "shared_kernel",
    "GraphSpec",
    "SweepSpec",
    "graph_kinds",
    "sized_graph_kinds",
    "ResultTable",
    "ExperimentRunner",
    "RunReport",
    "attach_store_path",
    "bootstrap_worker",
    "evaluate_graph",
    "evaluate_graph_spec",
    "run_sweep",
]
