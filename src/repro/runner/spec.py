"""Declarative specifications of experiment sweeps.

A sweep is *data*: which graphs to build (:class:`GraphSpec`), which of the
four ψ_Z indices to compute on each, and the knobs of the exact searches
(``max_depth`` / ``max_states``) plus optional per-depth view-class profiles
(:class:`SweepSpec`).  Keeping the description declarative is what lets the
:class:`~repro.runner.runner.ExperimentRunner` fan a sweep out over worker
processes -- specs are small, picklable, and rebuild their graphs
deterministically inside each worker -- and what makes result tables
reproducible: the same spec always produces byte-identical tables.

Graph builders are looked up in a registry by ``kind``; every generator of
:mod:`repro.portgraph.generators` and every lower-bound family of
:mod:`repro.families` is available, so one spec language covers both the
"assorted small graphs" studies (E13) and the family sweeps (E2, E5, E6).
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..core.tasks import Task
from ..families import (
    build_gdk_member,
    build_jmuk_member,
    build_jmuk_template,
    build_udk_member,
    build_udk_template,
    jmuk_border_count,
    udk_tree_count,
)
from ..portgraph import generators
from ..portgraph.graph import PortLabeledGraph

__all__ = ["GraphSpec", "SweepSpec", "graph_kinds"]


def _udk_graph(delta: int, k: int, sigma: Optional[Sequence[int]] = None) -> PortLabeledGraph:
    if sigma is None:
        sigma = tuple(1 for _ in range(udk_tree_count(delta, k)))
    return build_udk_member(delta, k, tuple(sigma)).graph


def _jmuk_graph(mu: int, k: int, y: Optional[Sequence[int]] = None) -> PortLabeledGraph:
    if y is None:
        y = tuple(0 for _ in range(2 ** (jmuk_border_count(mu, k) - 1)))
    return build_jmuk_member(mu, k, tuple(y)).graph


#: kind -> builder(**params) -> PortLabeledGraph
_BUILDERS: Dict[str, Callable[..., PortLabeledGraph]] = {
    # generators
    "path": lambda n: generators.path_graph(n),
    "cycle": lambda n: generators.cycle_graph(n),
    "oriented-cycle": lambda n: generators.cycle_graph(n, oriented=True),
    "asymmetric-cycle": lambda n: generators.asymmetric_cycle(n),
    "star": lambda leaves: generators.star_graph(leaves),
    "complete": lambda n: generators.complete_graph(n),
    "rotational-complete": lambda n: generators.rotational_complete_graph(n),
    "hypercube": lambda dimension: generators.hypercube_graph(dimension),
    "grid": lambda rows, cols: generators.grid_graph(rows, cols),
    "full-ary-tree": lambda arity, height: generators.full_ary_tree(arity, height),
    "complete-bipartite": lambda left, right: generators.complete_bipartite_graph(left, right),
    "caterpillar": lambda spine, legs: generators.caterpillar_graph(spine, legs),
    "random-tree": lambda n, seed=0: generators.random_tree(n, seed=seed),
    "random": lambda n, extra_edges=0, seed=0: generators.random_connected_graph(
        n, extra_edges=extra_edges, seed=seed
    ),
    "two-node": lambda: generators.two_node_graph(),
    "three-node-line": lambda: generators.three_node_line(),
    # lower-bound families
    "gdk": lambda delta, k, index: build_gdk_member(delta, k, index).graph,
    "udk": _udk_graph,
    "udk-template": lambda delta, k: build_udk_template(delta, k).graph,
    "jmuk": _jmuk_graph,
    "jmuk-template": lambda mu, k: build_jmuk_template(mu, k).graph,
}

# the seeded scenario-corpus families (random-regular, connected
# Erdős–Rényi, circulant, torus / twisted-torus, de Bruijn-like) register
# here too, so specs, the CLI, the batch service and the benchmarks all see
# them; their single-size kinds surface in sized_graph_kinds() automatically
from ..scenarios.corpus import SCENARIO_BUILDERS as _SCENARIO_BUILDERS  # noqa: E402

_BUILDERS.update(_SCENARIO_BUILDERS)


def graph_kinds() -> Tuple[str, ...]:
    """The registered graph kinds, sorted (for CLI help and error messages)."""
    return tuple(sorted(_BUILDERS))


def sized_graph_kinds() -> Dict[str, str]:
    """Kinds parameterised by a single size: ``kind -> size parameter name``.

    Derived from the builder registry by signature inspection -- a kind
    qualifies when its builder has exactly one parameter without a default
    (e.g. ``n``, ``leaves``, ``dimension``).  This is the single source of
    truth behind every "generator + size" surface (the CLI's ``indices``
    subcommand and ``--generator`` sweep option), so registering a new
    one-parameter generator here makes it available everywhere at once.
    """
    sized: Dict[str, str] = {}
    for kind in sorted(_BUILDERS):
        required = [
            name
            for name, parameter in inspect.signature(_BUILDERS[kind]).parameters.items()
            if parameter.default is inspect.Parameter.empty
            and parameter.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        ]
        if len(required) == 1:
            sized[kind] = required[0]
    return sized


def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples so specs stay hashable/picklable."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON serialisation."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class GraphSpec:
    """One graph to build: a registered ``kind`` plus keyword parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so that
    two specs describing the same graph compare (and pickle) identically.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "GraphSpec":
        if kind not in _BUILDERS:
            raise ValueError(f"unknown graph kind {kind!r}; known: {', '.join(graph_kinds())}")
        frozen = tuple(sorted((name, _freeze(value)) for name, value in params.items()))
        return cls(kind=kind, params=frozen)

    @property
    def label(self) -> str:
        """Stable human-readable identifier used in result tables."""
        if not self.params:
            return self.kind
        rendered = ",".join(f"{name}={value}" for name, value in self.params)
        return f"{self.kind}({rendered})"

    def build(self) -> PortLabeledGraph:
        """Construct the graph (deterministic: same spec, same graph)."""
        builder = _BUILDERS.get(self.kind)
        if builder is None:
            raise ValueError(f"unknown graph kind {self.kind!r}")
        try:
            return builder(**dict(self.params))
        except TypeError:
            raise ValueError(
                f"invalid parameters for graph kind {self.kind!r}: "
                f"{dict(self.params) or '{}'}"
            ) from None

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": {name: _thaw(value) for name, value in self.params}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GraphSpec":
        return cls.make(payload["kind"], **payload.get("params", {}))


@dataclass(frozen=True)
class SweepSpec:
    """A full experiment sweep: graphs x tasks (x optional depth profiles)."""

    graphs: Tuple[GraphSpec, ...]
    tasks: Tuple[Task, ...] = Task.ordered()
    max_depth: Optional[int] = None
    max_states: int = 200_000
    #: Depths at which to record the number of view classes and of nodes with
    #: a unique view (columns ``classes_at_d`` / ``unique_at_d``).
    profile_depths: Tuple[int, ...] = ()

    @classmethod
    def make(
        cls,
        graphs: Sequence[GraphSpec],
        *,
        tasks: Optional[Sequence[Task]] = None,
        max_depth: Optional[int] = None,
        max_states: int = 200_000,
        profile_depths: Sequence[int] = (),
    ) -> "SweepSpec":
        return cls(
            graphs=tuple(graphs),
            tasks=Task.ordered() if tasks is None else tuple(tasks),
            max_depth=max_depth,
            max_states=max_states,
            profile_depths=tuple(profile_depths),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graphs": [spec.to_dict() for spec in self.graphs],
            "tasks": [task.value for task in self.tasks],
            "max_depth": self.max_depth,
            "max_states": self.max_states,
            "profile_depths": list(self.profile_depths),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        return cls.make(
            [GraphSpec.from_dict(entry) for entry in payload["graphs"]],
            tasks=[Task(code) for code in payload["tasks"]] if "tasks" in payload else None,
            max_depth=payload.get("max_depth"),
            max_states=payload.get("max_states", 200_000),
            profile_depths=payload.get("profile_depths", ()),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
