"""Stdlib-only tracing/profiling: spans, context propagation, bounded rings.

See :mod:`repro.obs.span` for the producer API and
:mod:`repro.obs.recorder` for storage, trees and the JSONL sink.  The
service layers record into :data:`default_recorder`; ``GET /trace/<id>``
serves its :meth:`~repro.obs.recorder.SpanRecorder.tree`.
"""

from .recorder import (
    DEFAULT_MAX_SPANS_PER_TRACE,
    DEFAULT_MAX_TRACES,
    SpanRecorder,
    default_recorder,
)
from .span import (
    MAX_TAGS_PER_SPAN,
    SPAN_SCHEMA_KEYS,
    Span,
    activate,
    current_context,
    new_trace_id,
    record_span,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_MAX_SPANS_PER_TRACE",
    "DEFAULT_MAX_TRACES",
    "MAX_TAGS_PER_SPAN",
    "SPAN_SCHEMA_KEYS",
    "Span",
    "SpanRecorder",
    "activate",
    "current_context",
    "default_recorder",
    "new_trace_id",
    "record_span",
    "set_tracing",
    "span",
    "tracing_enabled",
]
