"""The span API: context-propagated timing of named request stages.

A *span* measures one named stage (``parse``, ``queue_wait``, ``compute``,
``evaluate_graph``, ...) of a *trace* (one request, one bench run).  Spans
carry a wall-clock start for cross-process alignment but measure their
duration on the monotonic ``perf_counter`` clock, link to their parent
span, and hold a bounded tag dict for profiling counters (cache hits,
refinement passes, search states -- attached by the layer that knows them).

Propagation is a :mod:`contextvars` variable holding ``(trace_id,
span_id)``: :func:`span` reads it to find its parent and sets itself as the
context for the code it wraps, which follows ``await`` chains and task
creation automatically.  The two places asyncio/conc.futures do *not*
propagate context -- ``run_in_executor`` threads and worker processes --
capture :func:`current_context` explicitly and re-enter it with
:func:`activate` on the far side (see :mod:`repro.service.workers`).

A span with no context and no explicit ``trace_id`` is a **no-op**: the
service layers are instrumented unconditionally, but direct library calls
(tests, the plain CLI paths) record nothing and pay only a context-var
read.  Tracing can also be disabled wholesale (``REPRO_TRACE=0`` or
:func:`set_tracing`), which the overhead benchmark uses to measure the
spans-on vs spans-off delta.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional, Tuple

from .recorder import SpanRecorder, default_recorder

__all__ = [
    "MAX_TAGS_PER_SPAN",
    "SPAN_SCHEMA_KEYS",
    "Span",
    "activate",
    "current_context",
    "new_trace_id",
    "record_span",
    "set_tracing",
    "span",
    "tracing_enabled",
]

#: Every finished span dict has exactly these keys, in this order -- the
#: schema contract the thread-vs-process equality test checks.
SPAN_SCHEMA_KEYS = (
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "start_s",
    "duration_ms",
    "pid",
    "tags",
)

#: Hard cap on tags per span; further ``set_tag`` calls are ignored.
MAX_TAGS_PER_SPAN = 16

#: Environment switch: ``REPRO_TRACE=0`` starts the process with tracing off.
TRACE_ENV_VAR = "REPRO_TRACE"

#: ``(trace_id, span_id)`` of the innermost active span, or ``None``.
_CONTEXT: "ContextVar[Optional[Tuple[str, Optional[str]]]]" = ContextVar(
    "repro_obs_context", default=None
)

_enabled = os.environ.get(TRACE_ENV_VAR, "1").strip().lower() not in (
    "0",
    "off",
    "false",
    "no",
)

_span_serial = itertools.count(1)


def tracing_enabled() -> bool:
    return _enabled


def set_tracing(enabled: bool) -> bool:
    """Enable/disable span recording process-wide; returns the prior setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def new_trace_id(prefix: str = "cli") -> str:
    """A fresh root trace id for offline use (bench --profile, sweep --trace-out)."""
    return f"{prefix}-{os.urandom(4).hex()}"


def _new_span_id() -> str:
    # the pid component keeps ids unique when parent and shard processes
    # contribute spans to one trace
    return f"{os.getpid():x}.{next(_span_serial):x}"


def current_context() -> Optional[Tuple[str, Optional[str]]]:
    """The propagation token ``(trace_id, span_id)`` to carry across executors."""
    return _CONTEXT.get()


@contextmanager
def activate(context: Optional[Tuple[str, Optional[str]]]) -> Iterator[None]:
    """Adopt a captured context in a thread/process the contextvar missed."""
    if context is None:
        yield
        return
    token = _CONTEXT.set(tuple(context))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


class Span:
    """A live span handle; becomes a plain dict when it closes.

    ``recording`` is ``False`` for the shared no-op span, so callers can
    skip expensive tag computation (counter snapshots) entirely.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "recording", "tags", "_start_s", "_t0")

    def __init__(
        self,
        name: str,
        trace_id: Optional[str],
        parent_id: Optional[str],
        *,
        recording: bool,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.span_id = _new_span_id() if recording else None
        self.recording = recording
        self.tags: Dict[str, Any] = {}
        self._start_s = time.time() if recording else 0.0
        self._t0 = time.perf_counter() if recording else 0.0

    def set_tag(self, key: str, value: Any) -> None:
        if self.recording and (key in self.tags or len(self.tags) < MAX_TAGS_PER_SPAN):
            self.tags[key] = value

    def add_tags(self, mapping: Dict[str, Any]) -> None:
        for key, value in mapping.items():
            self.set_tag(key, value)

    def _finish(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self._start_s, 6),
            "duration_ms": round((time.perf_counter() - self._t0) * 1000.0, 3),
            "pid": os.getpid(),
            "tags": self.tags,
        }


_NULL_SPAN = Span("", None, None, recording=False)


@contextmanager
def span(
    name: str,
    *,
    trace_id: Optional[str] = None,
    tags: Optional[Dict[str, Any]] = None,
    recorder: Optional[SpanRecorder] = None,
) -> Iterator[Span]:
    """Measure the wrapped block as one span of the active (or given) trace.

    With ``trace_id`` the span is a *root* (a new trace, or a cross-process
    re-entry point); otherwise the parent comes from the ambient context.
    No context and no ``trace_id`` -- or tracing disabled -- yields the
    shared no-op span and records nothing.
    """
    if not _enabled:
        yield _NULL_SPAN
        return
    if trace_id is not None:
        parent_id: Optional[str] = None
    else:
        context = _CONTEXT.get()
        if context is None:
            yield _NULL_SPAN
            return
        trace_id, parent_id = context
    live = Span(name, trace_id, parent_id, recording=True)
    if tags:
        live.add_tags(tags)
    token = _CONTEXT.set((trace_id, live.span_id))
    try:
        yield live
    finally:
        _CONTEXT.reset(token)
        (recorder if recorder is not None else default_recorder).record(live._finish())


def record_span(
    name: str,
    *,
    start_s: float,
    duration_ms: float,
    context: Optional[Tuple[str, Optional[str]]],
    tags: Optional[Dict[str, Any]] = None,
    recorder: Optional[SpanRecorder] = None,
) -> None:
    """Record an already-measured span (e.g. queue wait timed across threads).

    ``context`` is the *parent* ``(trace_id, span_id)``; ``None`` (or
    tracing disabled) records nothing.
    """
    if not _enabled or context is None:
        return
    trace_id, parent_id = context
    (recorder if recorder is not None else default_recorder).record(
        {
            "trace_id": trace_id,
            "span_id": _new_span_id(),
            "parent_id": parent_id,
            "name": name,
            "start_s": round(start_s, 6),
            "duration_ms": round(duration_ms, 3),
            "pid": os.getpid(),
            "tags": dict(tags) if tags else {},
        }
    )
