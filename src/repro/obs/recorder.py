"""Bounded in-memory storage of finished spans, with an optional JSONL sink.

The recorder is the passive half of :mod:`repro.obs`: :mod:`repro.obs.span`
produces finished span dicts and hands them here.  One process-global
:data:`default_recorder` is shared by every layer of the service (server,
batch coordinator, backends), so a single trace id collects spans from all
of them -- shard worker processes keep their *own* default recorder and
ship a trace's spans back over the job pipe, where the parent absorbs them
into this one (see :mod:`repro.service.workers`).

Memory is hard-capped in both dimensions:

* at most ``max_traces`` traces are retained -- a new trace evicts the
  oldest (insertion order), and every span lost to eviction counts as
  *dropped*;
* at most ``max_spans_per_trace`` spans are kept per trace -- further
  spans of that trace are dropped (and counted) rather than stored.

The ``dropped`` counter is monotone and surfaces as the
``repro_trace_dropped_total`` metric, so a long-running ``serve`` under
stress degrades visibly instead of growing without bound.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_MAX_SPANS_PER_TRACE",
    "DEFAULT_MAX_TRACES",
    "SpanRecorder",
    "default_recorder",
]

#: Traces retained by a recorder before the oldest is evicted.
DEFAULT_MAX_TRACES = 256
#: Spans retained per trace before further spans of it are dropped.
DEFAULT_MAX_SPANS_PER_TRACE = 200


class SpanRecorder:
    """A ring of recent traces: ``trace_id -> [finished span dicts]``."""

    def __init__(
        self,
        *,
        max_traces: int = DEFAULT_MAX_TRACES,
        max_spans_per_trace: int = DEFAULT_MAX_SPANS_PER_TRACE,
    ) -> None:
        if max_traces < 1 or max_spans_per_trace < 1:
            raise ValueError("recorder bounds must be at least 1")
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        self._dropped = 0
        self._sink = None
        self._sink_path: Optional[str] = None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, span: Dict[str, Any]) -> None:
        """Store one finished span (and tee it to the sink, when attached)."""
        trace_id = span.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                while len(self._traces) >= self.max_traces:
                    _evicted_id, evicted = self._traces.popitem(last=False)
                    self._dropped += len(evicted)
                spans = []
                self._traces[trace_id] = spans
            if len(spans) >= self.max_spans_per_trace:
                self._dropped += 1
            else:
                spans.append(span)
            sink = self._sink
            if sink is not None:
                sink.write(json.dumps(span, sort_keys=True) + "\n")
                sink.flush()

    def absorb(self, spans: Optional[List[Dict[str, Any]]]) -> None:
        """Merge spans recorded elsewhere (e.g. shipped back by a shard worker)."""
        for span in spans or ():
            self.record(span)

    def pop_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Remove and return one trace's spans (a worker's outbox operation)."""
        with self._lock:
            return self._traces.pop(trace_id, [])

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def trace(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """The flat span list of one trace, or ``None`` if unknown/evicted."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def tree(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """The trace as a span forest: root spans with nested ``children``.

        A span whose parent was dropped (or recorded elsewhere) becomes a
        root rather than vanishing, so a capped or cross-process trace still
        renders every retained stage.  Siblings sort by start time.
        """
        spans = self.trace(trace_id)
        if spans is None:
            return None
        by_id = {span["span_id"]: dict(span, children=[]) for span in spans}
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = by_id[span["span_id"]]
            parent = span.get("parent_id")
            if parent is not None and parent in by_id:
                by_id[parent]["children"].append(node)
            else:
                roots.append(node)
        def _sort(nodes: List[Dict[str, Any]]) -> None:
            nodes.sort(key=lambda n: (n.get("start_s", 0.0), n["span_id"]))
            for node in nodes:
                _sort(node["children"])
        _sort(roots)
        return roots

    def profile(self, trace_id: str) -> List[Dict[str, Any]]:
        """Aggregate one trace's spans by name: count / total / max duration."""
        totals: Dict[str, Dict[str, Any]] = {}
        for span in self.trace(trace_id) or ():
            row = totals.setdefault(
                span["name"], {"name": span["name"], "count": 0, "total_ms": 0.0, "max_ms": 0.0}
            )
            row["count"] += 1
            row["total_ms"] += span["duration_ms"]
            row["max_ms"] = max(row["max_ms"], span["duration_ms"])
        rows = sorted(totals.values(), key=lambda r: -r["total_ms"])
        for row in rows:
            row["total_ms"] = round(row["total_ms"], 3)
            row["max_ms"] = round(row["max_ms"], 3)
        return rows

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": sum(len(spans) for spans in self._traces.values()),
                "dropped": self._dropped,
                "max_traces": self.max_traces,
                "max_spans_per_trace": self.max_spans_per_trace,
            }

    # ------------------------------------------------------------------ #
    # sink / lifecycle
    # ------------------------------------------------------------------ #
    def attach_sink(self, path: Optional[str]) -> None:
        """Tee every recorded span to ``path`` as JSONL (``None`` detaches)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
                self._sink_path = None
            if path is not None:
                self._sink = open(path, "a", encoding="utf-8")
                self._sink_path = path

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    def clear(self) -> None:
        """Drop every retained trace and reset the dropped counter (tests)."""
        with self._lock:
            self._traces.clear()
            self._dropped = 0


#: The process-global recorder every service layer records into.
default_recorder = SpanRecorder()
