"""Time-versus-advice trade-offs (extension).

The paper's concluding section asks what happens to the advice requirements
when the allotted time exceeds the strict minimum ψ_Z(G) (this is the theme
of references [11] and [25] for CPPE/PPE).  This module provides the
measurement side of that question for the schemes implemented here:

* :func:`selection_advice_vs_time` -- the Theorem 2.2 oracle generalised to an
  arbitrary allotted time t >= ψ_S(G): it encodes the chosen node's view at
  depth t, so the advice *grows* with t for this particular scheme (the view
  gets bigger) -- illustrating that more time does not automatically mean less
  advice for a fixed scheme;
* :func:`map_advice_vs_time` -- the trivially time-independent baseline: the
  full map always suffices at ψ_Z(G) rounds, for every Z.

Both return table rows used by the E15 ablation bench and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..advice.map_advice import map_advice_bits
from ..advice.selection_advice import measured_selection_advice_bits
from ..core.election_index import selection_index
from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement

__all__ = ["TradeoffRow", "selection_advice_vs_time", "map_advice_vs_time"]


@dataclass
class TradeoffRow:
    """One point of a time-versus-advice curve."""

    graph_name: str
    allotted_time: int
    minimum_time: int
    advice_bits: int
    scheme: str


def selection_advice_vs_time(
    graph: PortLabeledGraph,
    extra_rounds: Iterable[int] = (0, 1, 2, 3),
    *,
    refinement: Optional[ViewRefinement] = None,
) -> List[TradeoffRow]:
    """Measured advice of the view-comparison Selection scheme at time ψ_S(G) + extra."""
    refinement = refinement or ViewRefinement(graph)
    minimum = selection_index(graph, refinement=refinement)
    if minimum is None:
        raise ValueError("graph is infeasible")
    rows: List[TradeoffRow] = []
    for extra in extra_rounds:
        depth = minimum + extra
        bits = measured_selection_advice_bits(graph, depth)
        rows.append(
            TradeoffRow(
                graph_name=graph.name or f"n={graph.num_nodes}",
                allotted_time=depth,
                minimum_time=minimum,
                advice_bits=bits,
                scheme="theorem-2.2-view-comparison",
            )
        )
    return rows


def map_advice_vs_time(graph: PortLabeledGraph) -> TradeoffRow:
    """The map-advice baseline: time-independent advice of |map| bits."""
    minimum = selection_index(graph)
    if minimum is None:
        raise ValueError("graph is infeasible")
    return TradeoffRow(
        graph_name=graph.name or f"n={graph.num_nodes}",
        allotted_time=minimum,
        minimum_time=minimum,
        advice_bits=map_advice_bits(graph),
        scheme="full-map",
    )
