"""Per-node anonymity profiles (extension).

The election index ψ_S(G) is a *global* quantity: the first depth at which
*some* node becomes unique.  For understanding and for designing algorithms
it is often more informative to know, per node, how much of the network it
must see before it stops having twins -- its *anonymity depth* -- and how the
number of distinct views grows with depth.  These profiles also explain the
constructions of the paper at a glance: in G_{Δ,k} every node except
r_{i,2} has anonymity depth strictly greater than k (most of them infinite:
they have twins forever), while r_{i,2}'s is exactly k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement

__all__ = ["AnonymityProfile", "anonymity_depths", "anonymity_profile"]


@dataclass
class AnonymityProfile:
    """Summary of how quickly a network de-anonymises with view depth."""

    #: anonymity depth per node: smallest h with a unique B^h, or None if the node has a twin forever
    depths: Dict[int, Optional[int]]
    #: number of distinct views at each depth 0..stable
    classes_by_depth: List[int]
    #: ψ_S(G): the smallest per-node anonymity depth (None if the graph is infeasible)
    selection_index: Optional[int]
    #: depth at which the view partition stops refining
    stable_depth: int

    @property
    def forever_anonymous(self) -> List[int]:
        """Nodes that share their view with some other node at every depth."""
        return [v for v, depth in self.depths.items() if depth is None]

    @property
    def max_finite_depth(self) -> Optional[int]:
        finite = [d for d in self.depths.values() if d is not None]
        return max(finite) if finite else None


def anonymity_depths(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> Dict[int, Optional[int]]:
    """For every node, the smallest depth at which its view becomes unique (None if never)."""
    refinement = refinement or ViewRefinement(graph)
    stable = refinement.ensure_stable()
    depths: Dict[int, Optional[int]] = {v: None for v in graph.nodes()}
    remaining = set(graph.nodes())
    for depth in range(stable + 1):
        if not remaining:
            break
        for v in list(remaining):
            if refinement.has_unique_view(v, depth):
                depths[v] = depth
                remaining.discard(v)
    return depths


def anonymity_profile(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> AnonymityProfile:
    """The full anonymity profile of a network."""
    refinement = refinement or ViewRefinement(graph)
    stable = refinement.ensure_stable()
    depths = anonymity_depths(graph, refinement=refinement)
    finite = [d for d in depths.values() if d is not None]
    return AnonymityProfile(
        depths=depths,
        classes_by_depth=[refinement.num_classes(d) for d in range(stable + 1)],
        selection_index=min(finite) if finite else None,
        stable_depth=stable,
    )
