"""Analysis utilities: lemma verification, advice-separation tables, statistics."""

from .anonymity import AnonymityProfile, anonymity_depths, anonymity_profile
from .indistinguishability import (
    corresponding_views_equal,
    every_node_has_twin_at_depth,
    lemma_4_3_holds,
    lemma_4_10_statement_2,
    only_unique_view_nodes,
)
from .separation import (
    SelectionAdviceRow,
    SeparationRow,
    pe_lower_bound_rows,
    ppe_cppe_lower_bound_rows,
    selection_advice_table,
    selection_lower_bound_rows,
)
from .statistics import GraphSummary, format_table, summarize_graph, view_class_profile
from .tradeoff import TradeoffRow, map_advice_vs_time, selection_advice_vs_time

__all__ = [
    "AnonymityProfile",
    "anonymity_depths",
    "anonymity_profile",
    "only_unique_view_nodes",
    "every_node_has_twin_at_depth",
    "corresponding_views_equal",
    "lemma_4_3_holds",
    "lemma_4_10_statement_2",
    "SelectionAdviceRow",
    "selection_advice_table",
    "SeparationRow",
    "selection_lower_bound_rows",
    "pe_lower_bound_rows",
    "ppe_cppe_lower_bound_rows",
    "TradeoffRow",
    "selection_advice_vs_time",
    "map_advice_vs_time",
    "GraphSummary",
    "summarize_graph",
    "view_class_profile",
    "format_table",
]
