"""Descriptive statistics of port-labeled graphs and of election instances.

Used by the examples and the benchmark harness to print compact summaries
(node/edge counts, degree histograms, view-class counts per depth, election
indices) of the graphs under study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.election_index import selection_index
from ..core.feasibility import is_feasible
from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement

__all__ = ["GraphSummary", "summarize_graph", "view_class_profile", "format_table"]


@dataclass
class GraphSummary:
    """Compact description of one graph instance."""

    name: str
    num_nodes: int
    num_edges: int
    max_degree: int
    min_degree: int
    degree_histogram: Dict[int, int]
    feasible: bool
    selection_index: Optional[int]
    view_classes_by_depth: List[int] = field(default_factory=list)


def _shared_refinement(graph: PortLabeledGraph) -> ViewRefinement:
    # Lazy import: repro.runner.results imports format_table from this module.
    from ..runner.cache import shared_refinement

    return shared_refinement(graph)


def summarize_graph(graph: PortLabeledGraph, *, max_depth: Optional[int] = None) -> GraphSummary:
    """Summarise a graph: size, degrees, feasibility, ψ_S, view-class growth."""
    refinement = _shared_refinement(graph)
    feasible = is_feasible(graph, refinement=refinement)
    index = selection_index(graph, refinement=refinement)
    stable = refinement.ensure_stable()
    depth_limit = stable if max_depth is None else min(max_depth, stable)
    profile = [refinement.num_classes(depth) for depth in range(depth_limit + 1)]
    return GraphSummary(
        name=graph.name or f"graph-{graph.num_nodes}",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        min_degree=graph.min_degree,
        degree_histogram=graph.degree_histogram(),
        feasible=feasible,
        selection_index=index,
        view_classes_by_depth=profile,
    )


def view_class_profile(graph: PortLabeledGraph, max_depth: int) -> List[int]:
    """Number of distinct views at every depth 0..max_depth."""
    refinement = _shared_refinement(graph)
    return [refinement.num_classes(depth) for depth in range(max_depth + 1)]


def format_table(headers: List[str], rows: List[List[object]]) -> str:
    """Plain-text table formatting used by the examples and the bench harness output."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
