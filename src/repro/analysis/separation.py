"""Advice-separation studies: the quantitative heart of the paper.

The headline result is a separation: Selection in minimum time needs advice
polynomial in Δ (Theorem 2.2), while each of PE, PPE, CPPE in minimum time
needs advice exponential in Δ on a suitable class (Theorems 2.9, 3.11,
4.11/4.12).  The functions here produce the rows of the tables the benchmark
harness prints: measured advice sizes of the constructive upper bound, the
exact class sizes, and the pigeonhole thresholds those class sizes imply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..advice.counting import min_advice_bits_to_distinguish, pigeonhole_forces_collision
from ..advice.selection_advice import measured_selection_advice_bits
from ..advice.size_bounds import (
    pe_advice_lower_bound_bits,
    selection_advice_upper_bound_bits,
)
from ..core.election_index import selection_index
from ..families.counting import fact_2_3_class_size, fact_3_1_class_size
from ..portgraph.graph import PortLabeledGraph

__all__ = [
    "SelectionAdviceRow",
    "selection_advice_table",
    "SeparationRow",
    "selection_lower_bound_rows",
    "pe_lower_bound_rows",
    "ppe_cppe_lower_bound_rows",
]


@dataclass
class SelectionAdviceRow:
    """One row of the Theorem 2.2 table: measured vs bounded advice for Selection."""

    graph_name: str
    num_nodes: int
    max_degree: int
    selection_index: int
    measured_bits: int
    bound_bits: int

    @property
    def within_bound(self) -> bool:
        return self.measured_bits <= self.bound_bits


def selection_advice_table(graphs: Iterable[PortLabeledGraph]) -> List[SelectionAdviceRow]:
    """Measured Theorem 2.2 advice size next to the explicit upper bound, per graph."""
    rows: List[SelectionAdviceRow] = []
    for graph in graphs:
        index = selection_index(graph)
        if index is None:
            continue
        measured = measured_selection_advice_bits(graph)
        bound = selection_advice_upper_bound_bits(graph.max_degree, index)
        rows.append(
            SelectionAdviceRow(
                graph_name=graph.name or f"n={graph.num_nodes}",
                num_nodes=graph.num_nodes,
                max_degree=graph.max_degree,
                selection_index=index,
                measured_bits=measured,
                bound_bits=bound,
            )
        )
    return rows


@dataclass
class SeparationRow:
    """One row of a lower-bound table: class size vs the advice it forces.

    Class sizes that are astronomically large powers of two (the J_{µ,k}
    family at the paper's parameters) are carried as ``class_size_log2``
    instead of as explicit integers.
    """

    family: str
    delta: int
    k: int
    #: advice length (bits) below which the Pigeonhole Principle forces a collision
    pigeonhole_bits: int
    class_size: Optional[int] = None
    class_size_log2: Optional[int] = None
    #: the paper's stated insufficient advice budget for these parameters (bits), if defined
    paper_budget_bits: Optional[float] = None
    #: the Theorem 2.2 Selection budget for the same parameters (the "cheap" side of the separation)
    selection_budget_bits: Optional[int] = None

    @property
    def collision_at_paper_budget(self) -> Optional[bool]:
        """Whether the paper's stated (insufficient) budget indeed forces an advice collision."""
        if self.paper_budget_bits is None:
            return None
        budget = int(self.paper_budget_bits)
        if self.class_size is not None:
            return pigeonhole_forces_collision(self.class_size, budget)
        assert self.class_size_log2 is not None
        # the class size is 2^log2: it exceeds 2^{budget+1} - 1 iff log2 >= budget + 1
        return self.class_size_log2 >= budget + 1


def selection_lower_bound_rows(parameters: Sequence[tuple]) -> List[SeparationRow]:
    """Theorem 2.9 rows: |G_{Δ,k}| and the advice its size forces, for (Δ, k) pairs."""
    rows = []
    for delta, k in parameters:
        size = fact_2_3_class_size(delta, k)
        rows.append(
            SeparationRow(
                family="G_{Δ,k}",
                delta=delta,
                k=k,
                class_size=size,
                pigeonhole_bits=min_advice_bits_to_distinguish(size),
                paper_budget_bits=((delta - 1) ** k) / 8 * _log2(delta) if delta >= 5 else None,
                selection_budget_bits=selection_advice_upper_bound_bits(delta, k),
            )
        )
    return rows


def _power_of_two_pigeonhole_bits(exponent: int) -> int:
    """min_advice_bits_to_distinguish(2^exponent) without building the huge integer.

    2^{L+1} - 1 >= 2^E holds iff L >= E, so the answer is exactly E (for E >= 1).
    """
    return max(0, exponent)


def pe_lower_bound_rows(parameters: Sequence[tuple]) -> List[SeparationRow]:
    """Theorem 3.11 rows: |U_{Δ,k}| and the advice its size forces."""
    rows = []
    for delta, k in parameters:
        size = fact_3_1_class_size(delta, k)
        rows.append(
            SeparationRow(
                family="U_{Δ,k}",
                delta=delta,
                k=k,
                class_size=size,
                pigeonhole_bits=min_advice_bits_to_distinguish(size),
                paper_budget_bits=float(pe_advice_lower_bound_bits(delta, k)),
                selection_budget_bits=selection_advice_upper_bound_bits(2 * delta - 1, k),
            )
        )
    return rows


def ppe_cppe_lower_bound_rows(parameters: Sequence[tuple]) -> List[SeparationRow]:
    """Theorem 4.11/4.12 rows: |J_{µ,k}| and the advice its size forces, for (µ, k) pairs.

    |J_{µ,k}| = 2^{2^{z-1}} can be far too large to materialise (already
    ~2^{2^105} at the theorem's smallest parameters), so the rows carry the
    exact exponent instead of the integer.
    """
    from ..families.jmuk import jmuk_border_count

    rows = []
    for mu, k in parameters:
        z = jmuk_border_count(mu, k)
        class_log2 = 2 ** (z - 1)
        paper_budget: Optional[float]
        if k >= 6:
            exponent = (4 * mu) ** (k / 6)
            paper_budget = float(2**int(exponent)) if exponent == int(exponent) else 2.0**exponent
        else:
            paper_budget = None
        rows.append(
            SeparationRow(
                family="J_{µ,k}",
                delta=4 * mu,
                k=k,
                class_size_log2=class_log2,
                pigeonhole_bits=_power_of_two_pigeonhole_bits(class_log2),
                paper_budget_bits=paper_budget,
                selection_budget_bits=selection_advice_upper_bound_bits(4 * mu, k),
            )
        )
    return rows


def _log2(value: int) -> float:
    import math

    return math.log2(value)
