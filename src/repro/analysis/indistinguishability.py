"""Computational verification of the paper's indistinguishability lemmas.

The lower bounds all rest on statements of the form "these two nodes (in the
same graph, or in two different graphs of the class) have exactly the same
augmented truncated view at depth k".  This module provides the generic
checkers the per-lemma tests and benches use:

* within one graph -- twin existence (Lemmas 2.5/2.6, 3.6, 4.6) and
  uniqueness of distinguished nodes (Lemma 2.6, Lemma 3.8);
* across two graphs -- equality of views of corresponding nodes
  (Lemma 2.8, Proposition 2.4, Lemma 4.10(1));
* Lemma 4.3 -- for every node of a component, some border pair is invisible
  at depth k-1;
* Lemma 4.10(2) -- a fixed port sequence cannot lead into the right half of
  two different members of J_{µ,k}.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..families.component import ComponentHandles
from ..families.jmuk import JmukMember
from ..portgraph.graph import PortLabeledGraph
from ..portgraph.paths import bfs_distances, follow_ports, is_simple_node_sequence
from ..views.refinement import ViewRefinement
from ..views.view_tree import augmented_view

__all__ = [
    "only_unique_view_nodes",
    "every_node_has_twin_at_depth",
    "corresponding_views_equal",
    "lemma_4_3_holds",
    "lemma_4_10_statement_2",
]


def only_unique_view_nodes(
    graph: PortLabeledGraph, depth: int, *, refinement: Optional[ViewRefinement] = None
) -> List[int]:
    """The nodes whose depth-``depth`` view is unique (Lemma 2.6 / Lemma 3.8 checks)."""
    refinement = refinement or ViewRefinement(graph)
    return refinement.unique_nodes(depth)


def every_node_has_twin_at_depth(
    graph: PortLabeledGraph, depth: int, *, refinement: Optional[ViewRefinement] = None
) -> bool:
    """Whether no node has a unique view at ``depth`` (the ψ_S >= depth+1 direction)."""
    refinement = refinement or ViewRefinement(graph)
    return not refinement.unique_nodes(depth)


def corresponding_views_equal(
    first: PortLabeledGraph,
    second: PortLabeledGraph,
    pairs: Iterable[Tuple[int, int]],
    depth: int,
) -> bool:
    """Whether B^depth of every paired node agrees across the two graphs.

    This is the shape of Lemma 2.8 (roots r_{j,b} across G_α and G_β),
    Proposition 2.4 (roots across the trees T_{j,b}) and Lemma 4.10(1)
    (the w_{1,1} node of H_L of gadget 0 across members of J_{µ,k}).
    """
    for node_first, node_second in pairs:
        key_first = augmented_view(first, node_first, depth).canonical_key()
        key_second = augmented_view(second, node_second, depth).canonical_key()
        if key_first != key_second:
            return False
    return True


def lemma_4_3_holds(graph: PortLabeledGraph, component: ComponentHandles) -> bool:
    """Lemma 4.3: every node of the component misses some border pair at depth k-1.

    For every node v there must exist an index ℓ such that both w_{ℓ,1} and
    w_{ℓ,2} are at distance >= k from v.
    """
    k = component.k
    for v in component.all_nodes():
        dist = bfs_distances(graph, v)
        if not any(
            dist[w1] >= k and dist[w2] >= k for (w1, w2) in component.border
        ):
            return False
    return True


def lemma_4_10_statement_2(
    first: JmukMember,
    second: JmukMember,
    port_sequence: Sequence[int],
) -> bool:
    """Lemma 4.10(2): if a port sequence reaches the right half of ``first`` simply, it fails in ``second``.

    ``port_sequence`` is followed from the node w_{1,1} of H_L of gadget 0 in
    both members.  The statement holds if, whenever the walk in ``first`` is a
    simple path containing a node of a right-half gadget, the walk in
    ``second`` is either not simple or never leaves the left half.
    """
    half = first.num_gadgets // 2

    def classify(member: JmukMember) -> Tuple[bool, bool]:
        start = member.border_node(0, "L", 1, 1)
        nodes = follow_ports(member.graph, start, port_sequence)
        if nodes is None:
            return False, False
        simple = is_simple_node_sequence(nodes)
        reaches_right = any(member.gadget_of_node(v) >= half for v in nodes)
        return simple, reaches_right

    simple_first, right_first = classify(first)
    if not (simple_first and right_first):
        # the hypothesis of the statement is not met; nothing to check
        return True
    simple_second, right_second = classify(second)
    return (not simple_second) or (not right_second)
