"""Command-line interface: quick access to the main pieces of the reproduction.

Examples
--------
Summarise a built-in generator graph and compute its election indices::

    repro-leader-election indices --generator asymmetric-cycle --size 8

Construct a member of one of the paper's families and print its statistics::

    repro-leader-election family gdk --delta 4 --k 1 --index 3
    repro-leader-election family udk --delta 4 --k 1
    repro-leader-election family jmuk --mu 2 --k 4

Print the counting facts for a parameter triple::

    repro-leader-election counts --delta 5 --k 2 --mu 2

Run a batched experiment sweep through the experiment runner (shared
refinement cache, optional multiprocessing fan-out, deterministic tables,
optional persistent artifact store)::

    repro-leader-election bench --generator asymmetric-cycle --sizes 5,6,7,8
    repro-leader-election bench --graph gdk:delta=4,k=1,index=2 --graph star:leaves=5 \
        --tasks S,PE --workers 4 --format csv --output results.csv
    repro-leader-election bench --spec sweep.json --repeat 2 --cache-stats
    repro-leader-election bench --generator complete --sizes 5,6,7 --store artifacts/
    repro-leader-election bench --generator random-regular --sizes 6,8,10 --batch

Run a seeded scenario-corpus sweep, streaming NDJSON records as they
complete (locally through the runner fan-out, or against a running batch
service with ``--url``)::

    repro-leader-election sweep --corpus mixed --count 200 --seed 7 --workers 4
    repro-leader-election sweep --corpus mixed --count 200 --seed 7 \
        --url http://localhost:8765

Precompute a corpus into the artifact store before serving -- resumable,
multiprocess, sharing its sweep id and progress record with the batch
service (``GET /sweeps/<id>``)::

    repro-leader-election warm --store artifacts/ --corpus mixed --count 200 --jobs 4
    repro-leader-election warm --store artifacts/ --spec sweep.json --compact

Serve the election pipeline over HTTP (asyncio, request coalescing, warm
starts from the artifact store, batch/streaming sweeps)::

    repro-leader-election serve --port 8765 --store artifacts/
    repro-leader-election serve --backend process --shards 4 --store artifacts/
    repro-leader-election serve --port 0 --port-file /tmp/repro.port
    curl -s localhost:8765/stats
    curl -s localhost:8765/metrics
    curl -sN localhost:8765/elections \
        -d '{"sweep": {"corpus": "mixed", "count": 50, "seed": 7}}'

Model-check the service's concurrency protocols (exhaustive within the
bounds; fails if any invariant breaks, any run can deadlock, or the
seeded known-bad mutants go undetected)::

    repro-leader-election verify --all
    repro-leader-election verify --protocol batch --items 6 --window 3 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.statistics import format_table, summarize_graph
from .core import Task, all_election_indices
from .families import (
    build_gdk_member,
    build_jmuk_member,
    build_jmuk_template,
    build_udk_member,
    build_udk_template,
    family_summary,
    jmuk_border_count,
    udk_tree_count,
)
from .runner.spec import sized_graph_kinds

__all__ = ["main", "build_parser"]

#: kind -> size parameter name, for every generator parameterised by one
#: size.  Derived from the runner's graph-kind registry (the single source
#: of builders), so the ``indices`` subcommand and ``--generator`` sweeps
#: automatically offer every registered one-parameter generator.
_SIZE_PARAM = sized_graph_kinds()

#: Generators offered by the ``indices`` subcommand and ``--generator``.
_INDICES_GENERATORS = tuple(sorted(_SIZE_PARAM))


def _generator_spec(name: str, size: int):
    """The runner spec for one named generator at one size."""
    from .runner import GraphSpec

    if name == "random":
        # historical `indices` semantics: a mildly dense random graph
        return GraphSpec.make("random", n=size, extra_edges=size // 2, seed=0)
    return GraphSpec.make(name, **{_SIZE_PARAM.get(name, "n"): size})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-leader-election",
        description="Reproduction of 'Four Shades of Deterministic Leader Election in Anonymous Networks'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    indices = sub.add_parser("indices", help="compute ψ_S, ψ_PE, ψ_PPE, ψ_CPPE of a generator graph")
    indices.add_argument("--generator", choices=_INDICES_GENERATORS, default="asymmetric-cycle")
    indices.add_argument("--size", type=int, default=6)

    family = sub.add_parser("family", help="construct a member of one of the paper's graph families")
    family.add_argument("name", choices=["gdk", "udk", "jmuk"])
    family.add_argument("--delta", type=int, default=4)
    family.add_argument("--k", type=int, default=1)
    family.add_argument("--mu", type=int, default=2)
    family.add_argument("--index", type=int, default=1, help="G_i index for gdk")
    family.add_argument("--template", action="store_true", help="build the template (udk / jmuk)")

    counts = sub.add_parser("counts", help="print the counting facts (Facts 2.3, 3.1, 4.1, 4.2)")
    counts.add_argument("--delta", type=int, default=5)
    counts.add_argument("--k", type=int, default=2)
    counts.add_argument("--mu", type=int, default=2)

    bench = sub.add_parser(
        "bench",
        help="run a batched sweep (graphs x tasks) through the experiment runner",
    )
    bench.add_argument("--spec", metavar="FILE", help="load a SweepSpec from a JSON file")
    bench.add_argument(
        "--generator",
        action="append",
        default=[],
        metavar="NAME",
        help="sweep a generator over --sizes (repeatable)",
    )
    bench.add_argument("--sizes", default="6,8", help="comma-separated sizes for --generator sweeps")
    bench.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="KIND:key=val,...",
        help="add one graph spec, e.g. gdk:delta=4,k=1,index=2 (repeatable)",
    )
    bench.add_argument("--tasks", default="S,PE,PPE,CPPE", help="comma-separated task codes")
    bench.add_argument(
        "--profile-depths",
        default="",
        help="comma-separated depths at which to record view-class profiles",
    )
    bench.add_argument("--max-depth", type=int, default=None)
    bench.add_argument("--max-states", type=int, default=200_000)
    bench.add_argument("--workers", type=int, default=1, help="worker processes (1 = in-process)")
    bench.add_argument("--chunk-size", type=int, default=None, help="jobs per worker chunk")
    bench.add_argument("--repeat", type=int, default=1, help="run the sweep this many times (cache demo)")
    bench.add_argument("--format", choices=["text", "json", "csv"], default="text")
    bench.add_argument("--output", default="-", help="write the table here ('-' = stdout)")
    bench.add_argument("--cache-stats", action="store_true", help="print refinement-cache stats to stderr")
    bench.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent artifact store: warm-start from DIR and write results through",
    )
    bench.add_argument(
        "--batch",
        action="store_true",
        help="stream NDJSON records as graphs complete instead of a final table",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="trace the run (one span per stage/graph) and print a per-stage "
        "profile table to stderr when it finishes",
    )
    bench.add_argument(
        "--kernel-backend",
        choices=["auto", "python", "numpy"],
        default=None,
        help=(
            "force the kernel compute backend for this run (and its worker "
            "processes); default honours REPRO_KERNEL_BACKEND, then 'auto' "
            "(numpy when installed).  Results are byte-identical either way."
        ),
    )

    sweep = sub.add_parser(
        "sweep",
        help="stream a seeded scenario-corpus sweep as NDJSON (locally or via --url)",
    )
    sweep.add_argument(
        "--corpus",
        default="mixed",
        help="named scenario corpus to expand (see repro.scenarios)",
    )
    sweep.add_argument("--count", type=int, default=50, help="number of corpus graphs")
    sweep.add_argument("--seed", type=int, default=0, help="corpus expansion seed")
    sweep.add_argument("--spec", metavar="FILE", help="load a SweepSpec JSON instead of a corpus")
    sweep.add_argument("--tasks", default="S,PE,PPE,CPPE", help="comma-separated task codes")
    sweep.add_argument("--max-depth", type=int, default=None)
    sweep.add_argument("--max-states", type=int, default=200_000)
    sweep.add_argument("--workers", type=int, default=1, help="worker processes (local mode)")
    sweep.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="artifact store to warm-start from and write through (local mode)",
    )
    sweep.add_argument(
        "--url",
        default=None,
        metavar="BASE",
        help="POST the sweep to a running service (e.g. http://localhost:8765) "
        "and stream its NDJSON response instead of computing locally",
    )
    sweep.add_argument(
        "--window", type=int, default=None, help="service in-flight window (--url mode)"
    )
    sweep.add_argument("--output", default="-", help="write NDJSON here ('-' = stdout)")
    sweep.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="append the sweep's spans to FILE as JSONL (local mode only)",
    )
    sweep.add_argument(
        "--mutate",
        action="store_true",
        help="dynamic-graph mode: expand each corpus graph into seeded "
        "cumulative mutation streams and sweep the {base, delta} items "
        "(delta-replayed against the base instead of recomputed cold)",
    )
    sweep.add_argument(
        "--mutations-per-graph",
        type=int,
        default=3,
        metavar="N",
        help="--mutate: edit-script steps per corpus graph (default 3)",
    )
    sweep.add_argument(
        "--mutation-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="--mutate: mutation-stream seed (defaults to --seed)",
    )

    warm = sub.add_parser(
        "warm",
        help="precompute a corpus (or sweep spec) into the artifact store, "
        "resumably, with the runner's multiprocessing fan-out",
    )
    warm.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="artifact store to warm (created if missing)",
    )
    warm.add_argument(
        "--corpus",
        default="mixed",
        help="named scenario corpus to expand (see repro.scenarios)",
    )
    warm.add_argument("--count", type=int, default=50, help="number of corpus graphs")
    warm.add_argument("--seed", type=int, default=0, help="corpus expansion seed")
    warm.add_argument("--spec", metavar="FILE", help="load a SweepSpec JSON instead of a corpus")
    warm.add_argument("--tasks", default="S,PE,PPE,CPPE", help="comma-separated task codes")
    warm.add_argument("--max-depth", type=int, default=None)
    warm.add_argument("--max-states", type=int, default=200_000)
    warm.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the fan-out"
    )
    warm.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every item even if a previous run finished some",
    )
    warm.add_argument(
        "--compact",
        action="store_true",
        help="compact the store (GC quarantined/superseded objects) afterwards",
    )
    warm.add_argument(
        "--quiet", action="store_true", help="suppress per-item progress output"
    )

    serve = sub.add_parser(
        "serve",
        help="serve feasibility / ψ_Z indices / advice over HTTP (asyncio)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent artifact store backing the service (created if missing)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="bounded compute worker pool size"
    )
    serve.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        help="default PPE/CPPE search budget for queries that do not set one",
    )
    serve.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="compute backend: GIL-bound thread pool, or hash-sharded "
        "persistent worker processes (one core each)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="process-backend worker count (defaults to --workers)",
    )
    serve.add_argument(
        "--recycle-after",
        type=int,
        default=None,
        help="process-backend: retire a shard worker after this many tasks",
    )
    serve.add_argument(
        "--port-file",
        metavar="FILE",
        default=None,
        help="write the bound port here once listening (use with --port 0 "
        "for a kernel-assigned, collision-free port)",
    )
    serve.add_argument(
        "--hot-tier-mb",
        type=int,
        default=64,
        help="in-process hot tier of mmap'd store records per serving "
        "process, in MiB (0 disables; requires --store)",
    )
    serve.add_argument(
        "--slow-request-s",
        type=float,
        default=None,
        help="log requests slower than this many seconds to stderr with "
        "their trace id (default 1.0; env REPRO_SLOW_REQUEST_S)",
    )
    serve.add_argument(
        "--compact-interval-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="compact the store (GC quarantined/superseded objects, under "
        "the manifest flock) every SECONDS while serving; requires --store. "
        "Runs surface as repro_store_events{event=\"compactions\"} on /metrics",
    )

    verify = sub.add_parser(
        "verify",
        help="model-check the service's concurrency protocols exhaustively",
    )
    verify.add_argument(
        "--all",
        action="store_true",
        help="check every protocol plus the seeded known-bad mutants "
        "(the default when no --protocol is given)",
    )
    verify.add_argument(
        "--protocol",
        action="append",
        default=[],
        choices=["batch", "worker", "delta"],
        help="check only this protocol (repeatable; skips the mutant gate)",
    )
    verify.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        help="state-space exploration bound (a hit bound fails the run)",
    )
    verify.add_argument(
        "--max-depth",
        type=int,
        default=10_000,
        help="exploration depth bound (a hit bound fails the run)",
    )
    verify.add_argument(
        "--items", type=int, default=4, help="batch model: items per sweep"
    )
    verify.add_argument(
        "--window", type=int, default=2, help="batch model: in-flight window"
    )
    verify.add_argument(
        "--jobs", type=int, default=3, help="worker model: jobs to dispatch"
    )
    verify.add_argument(
        "--recycle-after",
        type=int,
        default=2,
        help="worker model: recycle threshold",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    return parser


def _print_summary(graph) -> None:
    summary = summarize_graph(graph, max_depth=6)
    rows = [
        ["name", summary.name],
        ["nodes", summary.num_nodes],
        ["edges", summary.num_edges],
        ["max degree", summary.max_degree],
        ["feasible", summary.feasible],
        ["selection index ψ_S", summary.selection_index],
        ["view classes by depth", summary.view_classes_by_depth],
    ]
    print(format_table(["property", "value"], rows))


def _command_indices(args: argparse.Namespace) -> int:
    graph = _generator_spec(args.generator, args.size).build()
    _print_summary(graph)
    indices = all_election_indices(graph)
    rows = [[task.value, task.full_name, indices[task]] for task in Task.ordered()]
    print()
    print(format_table(["task", "name", "ψ_Z(G)"], rows))
    return 0


def _command_family(args: argparse.Namespace) -> int:
    if args.name == "gdk":
        member = build_gdk_member(args.delta, args.k, args.index)
        graph = member.graph
    elif args.name == "udk":
        if args.template:
            member = build_udk_template(args.delta, args.k)
        else:
            sigma = tuple(1 for _ in range(udk_tree_count(args.delta, args.k)))
            member = build_udk_member(args.delta, args.k, sigma)
        graph = member.graph
    else:
        if args.k < 4:
            print("J_{µ,k} requires k >= 4", file=sys.stderr)
            return 2
        if args.template:
            member = build_jmuk_template(args.mu, args.k)
        else:
            z = jmuk_border_count(args.mu, args.k)
            member = build_jmuk_member(args.mu, args.k, tuple(0 for _ in range(2 ** (z - 1))))
        graph = member.graph
    _print_summary(graph)
    return 0


def _parse_int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _parse_graph_option(option: str):
    """Parse ``kind:key=val,key=val`` into a :class:`~repro.runner.GraphSpec`."""
    from .runner import GraphSpec

    kind, _, rest = option.partition(":")
    params = {}
    for item in filter(None, rest.split(",")):
        key, eq, value = item.partition("=")
        if not eq:
            raise ValueError(f"malformed --graph parameter {item!r} (expected key=value)")
        params[key.strip()] = int(value)
    return GraphSpec.make(kind.strip(), **params)


def _build_sweep(args: argparse.Namespace):
    from .runner import GraphSpec, SweepSpec

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            return SweepSpec.from_json(handle.read())
    graphs = []
    sizes = _parse_int_list(args.sizes)
    for name in args.generator:
        param = _SIZE_PARAM.get(name, "n")
        graphs.extend(GraphSpec.make(name, **{param: size}) for size in sizes)
    graphs.extend(_parse_graph_option(option) for option in args.graph)
    if not graphs:
        raise ValueError("no graphs to sweep: pass --spec, --generator or --graph")
    return SweepSpec.make(
        graphs,
        tasks=[Task(code.strip()) for code in args.tasks.split(",") if code.strip()],
        max_depth=args.max_depth,
        max_states=args.max_states,
        profile_depths=_parse_int_list(args.profile_depths),
    )


def _command_bench(args: argparse.Namespace) -> int:
    from .runner import ExperimentRunner, refinement_cache

    if args.kernel_backend is not None:
        from .kernel import set_backend

        try:
            # pins the backend in-process and exports REPRO_KERNEL_BACKEND so
            # pool worker processes resolve the same choice
            set_backend(args.kernel_backend)
        except RuntimeError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2
    try:
        sweep = _build_sweep(args)
    except (ValueError, OSError) as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("bench: --repeat must be at least 1", file=sys.stderr)
        return 2
    try:
        runner = ExperimentRunner(
            workers=args.workers, chunk_size=args.chunk_size, store_path=args.store
        )
    except ValueError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2
    if args.profile:
        from .obs import new_trace_id
        from .obs import span as obs_span

        if args.workers > 1:
            print(
                "bench --profile: spans cover the parent process only with "
                "--workers > 1 (pool workers do not ship spans back)",
                file=sys.stderr,
            )
        profile_trace = new_trace_id("bench")
        with obs_span("bench", trace_id=profile_trace):
            code = _run_bench(args, sweep, runner, refinement_cache)
        _print_profile(profile_trace)
        return code
    return _run_bench(args, sweep, runner, refinement_cache)


def _run_bench(args: argparse.Namespace, sweep, runner, refinement_cache) -> int:
    if args.batch:
        try:
            written = _stream_ndjson(runner, sweep, args.output)
        except ValueError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2
        print(f"bench --batch: streamed {written} records", file=sys.stderr)
        return 0
    report = None
    for run_number in range(1, args.repeat + 1):
        before = refinement_cache.stats()
        try:
            report = runner.run(sweep)
        except ValueError as error:
            # bad graph parameters surface here: specs are only built inside
            # the runner (possibly in a worker process)
            print(f"bench: {error}", file=sys.stderr)
            return 2
        if args.cache_stats:
            after = report.cache_stats
            fresh_passes = after["refinement_passes"] - before["refinement_passes"]
            store_note = ""
            if report.store_stats is not None:
                store_note = (
                    f", store records={report.store_stats['records']} "
                    f"hits={after['store_hits']}"
                )
            print(
                f"[run {run_number}/{args.repeat}] {len(sweep.graphs)} graphs in "
                f"{report.elapsed:.3f}s, workers={report.workers}, "
                f"cache hits={after['hits']} misses={after['misses']} "
                f"new refinement passes={fresh_passes}{store_note}",
                file=sys.stderr,
            )
    rendered = report.table.render(args.format)
    if args.output == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.output, "w", encoding="utf-8", newline="") as handle:
            handle.write(rendered)
    return 0


def _print_profile(trace_id: str) -> None:
    """Print a bench trace's per-stage aggregate table to stderr."""
    from .obs import default_recorder

    rows = default_recorder.profile(trace_id)
    print(f"bench --profile: trace {trace_id}", file=sys.stderr)
    print(f"{'stage':<20}{'count':>8}{'total_ms':>14}{'max_ms':>12}", file=sys.stderr)
    for row in rows:
        print(
            f"{row['name']:<20}{row['count']:>8}"
            f"{row['total_ms']:>14.3f}{row['max_ms']:>12.3f}",
            file=sys.stderr,
        )


def _stream_ndjson(runner, sweep, output: str) -> int:
    """Stream a sweep through the runner as NDJSON lines; returns the line count."""
    handle = sys.stdout if output == "-" else open(output, "w", encoding="utf-8")
    written = 0
    try:
        for index, status, payload in runner.stream(sweep):
            line = {"index": index, "status": status}
            if status == "ok":
                line.update(payload)
            else:
                line["error"] = payload
            handle.write(json.dumps(line, sort_keys=True) + "\n")
            handle.flush()
            written += 1
    finally:
        if handle is not sys.stdout:
            handle.close()
    return written


def _command_sweep(args: argparse.Namespace) -> int:
    from .core import Task

    try:
        tasks = [Task(code.strip()) for code in args.tasks.split(",") if code.strip()]
    except ValueError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    if args.mutate:
        if args.spec:
            print(
                "sweep: --mutate expands a named corpus into mutation streams; "
                "it cannot be combined with --spec",
                file=sys.stderr,
            )
            return 2
        if args.trace_out is not None:
            print("sweep: --mutate cannot be combined with --trace-out", file=sys.stderr)
            return 2
        return _sweep_mutate(args, tasks)
    if args.url is not None:
        if args.trace_out is not None:
            print(
                "sweep: --trace-out records local spans; it cannot be combined "
                "with --url (the service keeps its own traces -- see GET /trace/<id>)",
                file=sys.stderr,
            )
            return 2
        return _sweep_remote(args, [task.value for task in tasks])
    from .runner import ExperimentRunner, SweepSpec
    from .scenarios import corpus_specs

    try:
        if args.spec:
            with open(args.spec, "r", encoding="utf-8") as handle:
                sweep = SweepSpec.from_json(handle.read())
        else:
            sweep = SweepSpec.make(
                corpus_specs(args.count, seed=args.seed, corpus=args.corpus),
                tasks=tasks,
                max_depth=args.max_depth,
                max_states=args.max_states,
            )
        runner = ExperimentRunner(workers=args.workers, store_path=args.store)
        if args.trace_out is not None:
            from .obs import default_recorder, new_trace_id
            from .obs import span as obs_span

            if args.workers > 1:
                print(
                    "sweep --trace-out: spans cover the parent process only "
                    "with --workers > 1",
                    file=sys.stderr,
                )
            sweep_trace = new_trace_id("sweep")
            default_recorder.attach_sink(args.trace_out)
            try:
                with obs_span(
                    "sweep", trace_id=sweep_trace, tags={"corpus": args.corpus}
                ):
                    written = _stream_ndjson(runner, sweep, args.output)
            finally:
                default_recorder.attach_sink(None)
            print(
                f"sweep: appended trace {sweep_trace} spans to {args.trace_out}",
                file=sys.stderr,
            )
        else:
            written = _stream_ndjson(runner, sweep, args.output)
    except (ValueError, OSError) as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    print(f"sweep: streamed {written} records", file=sys.stderr)
    return 0


def _sweep_mutate(args: argparse.Namespace, tasks) -> int:
    """``sweep --mutate``: stream a dynamic-graph sweep of ``{base, delta}`` items.

    Expands the corpus, generates seeded cumulative mutation streams per
    graph, and evaluates each item through the service's delta path --
    locally via :func:`~repro.service.service.compute_election` (the exact
    worker-side code a server would run, so results are byte-identical), or
    remotely by POSTing the items to a running ``/elections`` endpoint.
    """
    from .scenarios import corpus_specs, mutation_sweep_items

    if args.mutations_per_graph < 1:
        print("sweep: --mutations-per-graph must be at least 1", file=sys.stderr)
        return 2
    mutation_seed = args.mutation_seed if args.mutation_seed is not None else args.seed
    try:
        specs = corpus_specs(args.count, seed=args.seed, corpus=args.corpus)
        items = mutation_sweep_items(
            specs, seed=mutation_seed, per_graph=args.mutations_per_graph
        )
    except ValueError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    shared = {"tasks": [task.value for task in tasks], "max_states": args.max_states}
    if args.max_depth is not None:
        shared["max_depth"] = args.max_depth
    payload_items = [dict(shared, **item) for item in items]
    if args.url is not None:
        body = {"items": payload_items}
        if args.window is not None:
            body["window"] = args.window
        return _relay_batch(args, body)
    from .runner import refinement_cache
    from .service.service import ServiceError, compute_election, deterministic_response

    prior_store = refinement_cache.store
    if args.store is not None:
        from .store import ArtifactStore

        refinement_cache.attach_store(ArtifactStore(args.store))
    handle = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    written = errors = 0
    try:
        for index, item in enumerate(payload_items):
            parsed = {
                "graph": None,
                "spec": None,
                "base": item["base"],
                "delta": item["delta"],
                "tasks": tasks,
                "max_depth": args.max_depth,
                "max_states": args.max_states,
                "advice": False,
            }
            try:
                response = compute_election(parsed)
                line = dict(deterministic_response(response), index=index, status="ok")
            except ServiceError as error:
                line = {"index": index, "status": "error", "error": error.message}
                errors += 1
            handle.write(json.dumps(line, sort_keys=True) + "\n")
            handle.flush()
            written += 1
    finally:
        if handle is not sys.stdout:
            handle.close()
        if args.store is not None:
            refinement_cache.attach_store(prior_store)
    print(
        f"sweep --mutate: streamed {written} delta records "
        f"({len(specs)} bases x {args.mutations_per_graph} steps, "
        f"{errors} errors)",
        file=sys.stderr,
    )
    return 0 if errors == 0 else 1


def _relay_batch(args: argparse.Namespace, body: dict) -> int:
    """POST ``body`` to a running batch service and relay its NDJSON stream."""
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        f"{args.url.rstrip('/')}/elections",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    handle = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    written = 0
    try:
        with urllib.request.urlopen(request) as response:
            for raw_line in response:
                handle.write(raw_line.decode("utf-8"))
                handle.flush()
                written += 1
    except urllib.error.HTTPError as error:
        print(f"sweep: service rejected the batch: {error.read().decode()}", file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError) as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    finally:
        if handle is not sys.stdout:
            handle.close()
    print(f"sweep: relayed {written} stream lines from {args.url}", file=sys.stderr)
    return 0


def _sweep_remote(args: argparse.Namespace, task_codes: List[str]) -> int:
    """POST the sweep to a running batch service and relay its NDJSON stream."""
    if args.spec:
        from .runner import SweepSpec

        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                sweep = SweepSpec.from_json(handle.read())
        except (ValueError, OSError) as error:
            print(f"sweep: {error}", file=sys.stderr)
            return 2
        body = {
            "items": [
                {
                    "spec": spec.to_dict(),
                    "tasks": [task.value for task in sweep.tasks],
                    "max_depth": sweep.max_depth,
                    "max_states": sweep.max_states,
                }
                for spec in sweep.graphs
            ]
        }
    else:
        declarative = {
            "corpus": args.corpus,
            "count": args.count,
            "seed": args.seed,
            "tasks": task_codes,
            "max_states": args.max_states,
        }
        if args.max_depth is not None:
            declarative["max_depth"] = args.max_depth
        body = {"sweep": declarative}
    if args.window is not None:
        body["window"] = args.window
    return _relay_batch(args, body)


def _command_warm(args: argparse.Namespace) -> int:
    from .core import Task
    from .runner import SweepSpec, warm_sweep
    from .scenarios import corpus_specs

    try:
        tasks = [Task(code.strip()) for code in args.tasks.split(",") if code.strip()]
        if args.spec:
            with open(args.spec, "r", encoding="utf-8") as handle:
                sweep = SweepSpec.from_json(handle.read())
            shared = {
                "tasks": [task.value for task in sweep.tasks],
                "max_depth": sweep.max_depth,
                "max_states": sweep.max_states,
            }
        else:
            sweep = SweepSpec.make(
                corpus_specs(args.count, seed=args.seed, corpus=args.corpus),
                tasks=tasks,
                max_depth=args.max_depth,
                max_states=args.max_states,
            )
            # the shared keys a declarative service sweep of this corpus
            # would carry -- keeps the sweep id (and progress record) equal
            shared = {
                "tasks": [task.value for task in tasks],
                "max_states": args.max_states,
            }
            if args.max_depth is not None:
                shared["max_depth"] = args.max_depth

        def progress(done: int, total: int, label: str, status: str) -> None:
            if not args.quiet:
                mark = "ok" if status == "ok" else "ERROR"
                print(f"warm [{done}/{total}] {label}: {mark}", file=sys.stderr)

        report = warm_sweep(
            sweep,
            args.store,
            shared=shared,
            jobs=args.jobs,
            resume=not args.no_resume,
            compact=args.compact,
            progress=progress,
        )
    except (ValueError, OSError) as error:
        print(f"warm: {error}", file=sys.stderr)
        return 2
    stats = report.store_stats
    print(
        f"warm: sweep {report.sweep_id}: {report.warmed} warmed, "
        f"{report.skipped} resumed, {report.errors} errors "
        f"({report.total} items, jobs={report.jobs}, {report.elapsed:.3f}s); "
        f"store holds {stats['records']} records",
        file=sys.stderr,
    )
    if report.compaction is not None:
        compaction = report.compaction
        removed = sum(v for k, v in compaction.items() if k.startswith("removed_"))
        print(
            f"warm: compacted store (generation {compaction['generation']}): "
            f"{removed} objects reclaimed, {compaction['live_records']} live",
            file=sys.stderr,
        )
    print(report.sweep_id)
    return 0 if report.errors == 0 else 1


def _command_serve(args: argparse.Namespace) -> int:
    from .service import run_server

    try:
        run_server(
            host=args.host,
            port=args.port,
            store_path=args.store,
            workers=args.workers,
            max_states=args.max_states,
            backend=args.backend,
            shards=args.shards,
            recycle_after=args.recycle_after,
            port_file=args.port_file,
            slow_request_s=args.slow_request_s,
            hot_tier_bytes=args.hot_tier_mb * 1024 * 1024,
            compact_interval_s=args.compact_interval_s,
        )
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from .verify import run_verification

    protocols = args.protocol or None
    include_mutants = args.all or not args.protocol
    report = run_verification(
        protocols,
        max_states=args.max_states,
        max_depth=args.max_depth,
        include_mutants=include_mutants,
        batch_items=args.items,
        batch_window=args.window,
        worker_jobs=args.jobs,
        worker_recycle_after=args.recycle_after,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for entry in report["models"]:
            verdict = "ok" if entry["ok"] and entry["complete"] else "FAILED"
            bound_note = "" if entry["complete"] else " (bound hit: incomplete)"
            print(
                f"verify {entry['model']}: {verdict} -- {entry['states']} states, "
                f"{entry['transitions']} transitions, depth {entry['depth']}"
                f"{bound_note}"
            )
            for violation in entry["violations"]:
                print(f"  {violation['kind']}: {violation['message']}")
                for event, state in violation["trace"]:
                    print(f"    {event:>14}  {state}")
        for entry in report["mutants"]:
            verdict = "caught" if entry["caught"] else "MISSED (vacuous checker!)"
            print(
                f"verify {entry['model']}: {verdict} "
                f"(expected {entry['expected_kind']}; {entry['states']} states)"
            )
    return 0 if report["ok"] else 1


def _command_counts(args: argparse.Namespace) -> int:
    from .families import format_count

    summary = family_summary(args.delta, args.k, args.mu)
    print(json.dumps({key: format_count(value) for key, value in summary.items()}, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "indices":
        return _command_indices(args)
    if args.command == "family":
        return _command_family(args)
    if args.command == "counts":
        return _command_counts(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "warm":
        return _command_warm(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "verify":
        return _command_verify(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
