"""Command-line interface: quick access to the main pieces of the reproduction.

Examples
--------
Summarise a built-in generator graph and compute its election indices::

    repro-leader-election indices --generator asymmetric-cycle --size 8

Construct a member of one of the paper's families and print its statistics::

    repro-leader-election family gdk --delta 4 --k 1 --index 3
    repro-leader-election family udk --delta 4 --k 1
    repro-leader-election family jmuk --mu 2 --k 4

Print the counting facts for a parameter triple::

    repro-leader-election counts --delta 5 --k 2 --mu 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.statistics import format_table, summarize_graph
from .core import Task, all_election_indices
from .families import (
    build_gdk_member,
    build_jmuk_member,
    build_jmuk_template,
    build_udk_member,
    build_udk_template,
    family_summary,
    jmuk_border_count,
    udk_tree_count,
)
from .portgraph import generators

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "path": lambda n: generators.path_graph(n),
    "cycle": lambda n: generators.cycle_graph(n),
    "asymmetric-cycle": lambda n: generators.asymmetric_cycle(n),
    "star": lambda n: generators.star_graph(n),
    "complete": lambda n: generators.complete_graph(n),
    "rotational-complete": lambda n: generators.rotational_complete_graph(n),
    "random": lambda n: generators.random_connected_graph(n, extra_edges=n // 2, seed=0),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-leader-election",
        description="Reproduction of 'Four Shades of Deterministic Leader Election in Anonymous Networks'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    indices = sub.add_parser("indices", help="compute ψ_S, ψ_PE, ψ_PPE, ψ_CPPE of a generator graph")
    indices.add_argument("--generator", choices=sorted(_GENERATORS), default="asymmetric-cycle")
    indices.add_argument("--size", type=int, default=6)

    family = sub.add_parser("family", help="construct a member of one of the paper's graph families")
    family.add_argument("name", choices=["gdk", "udk", "jmuk"])
    family.add_argument("--delta", type=int, default=4)
    family.add_argument("--k", type=int, default=1)
    family.add_argument("--mu", type=int, default=2)
    family.add_argument("--index", type=int, default=1, help="G_i index for gdk")
    family.add_argument("--template", action="store_true", help="build the template (udk / jmuk)")

    counts = sub.add_parser("counts", help="print the counting facts (Facts 2.3, 3.1, 4.1, 4.2)")
    counts.add_argument("--delta", type=int, default=5)
    counts.add_argument("--k", type=int, default=2)
    counts.add_argument("--mu", type=int, default=2)

    return parser


def _print_summary(graph) -> None:
    summary = summarize_graph(graph, max_depth=6)
    rows = [
        ["name", summary.name],
        ["nodes", summary.num_nodes],
        ["edges", summary.num_edges],
        ["max degree", summary.max_degree],
        ["feasible", summary.feasible],
        ["selection index ψ_S", summary.selection_index],
        ["view classes by depth", summary.view_classes_by_depth],
    ]
    print(format_table(["property", "value"], rows))


def _command_indices(args: argparse.Namespace) -> int:
    graph = _GENERATORS[args.generator](args.size)
    _print_summary(graph)
    indices = all_election_indices(graph)
    rows = [[task.value, task.full_name, indices[task]] for task in Task.ordered()]
    print()
    print(format_table(["task", "name", "ψ_Z(G)"], rows))
    return 0


def _command_family(args: argparse.Namespace) -> int:
    if args.name == "gdk":
        member = build_gdk_member(args.delta, args.k, args.index)
        graph = member.graph
    elif args.name == "udk":
        if args.template:
            member = build_udk_template(args.delta, args.k)
        else:
            sigma = tuple(1 for _ in range(udk_tree_count(args.delta, args.k)))
            member = build_udk_member(args.delta, args.k, sigma)
        graph = member.graph
    else:
        if args.k < 4:
            print("J_{µ,k} requires k >= 4", file=sys.stderr)
            return 2
        if args.template:
            member = build_jmuk_template(args.mu, args.k)
        else:
            z = jmuk_border_count(args.mu, args.k)
            member = build_jmuk_member(args.mu, args.k, tuple(0 for _ in range(2 ** (z - 1))))
        graph = member.graph
    _print_summary(graph)
    return 0


def _command_counts(args: argparse.Namespace) -> int:
    from .families import format_count

    summary = family_summary(args.delta, args.k, args.mu)
    print(json.dumps({key: format_count(value) for key, value in summary.items()}, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "indices":
        return _command_indices(args)
    if args.command == "family":
        return _command_family(args)
    if args.command == "counts":
        return _command_counts(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
