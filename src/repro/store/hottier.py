"""In-process read-only hot tier of mmap'd artifact records.

Under sustained zipf-shaped traffic a handful of popular fingerprints
dominate the request mix, and every :meth:`ArtifactStore.get` of one of them
pays the same open + read + deserialize tax.  The hot tier removes that tax
for residents: an admitted object is an ``mmap`` of its immutable ``.rple``
file plus the lazily decoded :class:`~repro.store.record.ArtifactRecord`,
so a repeat lookup returns the already-decoded record without touching the
filesystem at all.  Decoding works directly on the mapped buffer -- the
record format reads integers by indexing and copies slices on access, the
same zero-copy discipline as the kernel's ``frombuffer`` CSR views -- so
admission itself never re-reads the payload either.

Consistency model
-----------------
Records are immutable values and writes are atomic (``os.replace``), so a
mapped buffer can never observe a torn write: it pins the inode it was
admitted from, and a concurrent re-put of the same fingerprint replaces the
*directory entry*, not the mapped bytes.  The only way a resident goes
stale is a local :meth:`ArtifactStore.put` or compaction through the same
handle, both of which invalidate the key.  Staleness across *processes* is
benign by construction -- two objects with one fingerprint decode to
records of the same graph, differing at most in memo coverage, and a
lagging memo only costs a recompute (which writes through and re-admits).

Admission is frequency-observing: a key is admitted on its *second*
observed request (a doorkeeper counts first touches), so one-hit sweep
traffic cannot evict hot residents.  Residency is bounded by a byte budget
with LRU eviction; evicting closes the mmap.  Records decoded from a
resident stay valid after eviction or :meth:`HotTier.close` because decode
copies every array out of the buffer -- nothing retains a view into the
map, so closing never raises ``BufferError`` and callers never hold a
dangling buffer.
"""

from __future__ import annotations

import mmap
import threading
from collections import OrderedDict
from typing import Dict, Optional

from .record import ArtifactRecord

__all__ = ["HotTier", "DEFAULT_HOT_TIER_BYTES"]

#: Default residency budget when a hot tier is enabled without a size.
DEFAULT_HOT_TIER_BYTES = 64 * 1024 * 1024

#: Touches a key must accumulate before it is admitted.
_ADMIT_TOUCHES = 2

#: Doorkeeper capacity: first-touch counts tracked at once.  Bounded FIFO --
#: under a scan workload old one-touch keys age out instead of growing the
#: map without limit.
_DOORKEEPER_MAX = 4096


class _HotObject:
    """One resident: the mapped bytes and the lazily decoded record."""

    __slots__ = ("key", "data", "size", "_record")

    def __init__(self, key: str, data: mmap.mmap, size: int) -> None:
        self.key = key
        self.data = data
        self.size = size
        self._record: Optional[ArtifactRecord] = None

    def record(self) -> ArtifactRecord:
        """The decoded record, deserialized at most once per residency."""
        if self._record is None:
            self._record = ArtifactRecord.from_bytes(self.data)
        return self._record

    def seed_record(self, record: ArtifactRecord) -> None:
        self._record = record

    def close(self) -> None:
        try:
            self.data.close()
        except (BufferError, ValueError):  # pragma: no cover - defensive
            pass


class HotTier:
    """A byte-budgeted LRU of mmap'd records with admit-on-second-touch."""

    def __init__(self, max_bytes: int = DEFAULT_HOT_TIER_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self._max_bytes = max_bytes
        self._lock = threading.Lock()
        self._residents: "OrderedDict[str, _HotObject]" = OrderedDict()
        self._doorkeeper: "OrderedDict[str, int]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._admissions = 0
        self._evictions = 0
        self._invalidations = 0

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._residents)

    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[ArtifactRecord]:
        """The resident record of ``key``, or ``None`` (counts the touch)."""
        with self._lock:
            resident = self._residents.get(key)
            if resident is not None:
                self._residents.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if resident is None:
            return None
        return resident.record()

    def offer(self, key: str, path: str, record: Optional[ArtifactRecord] = None) -> bool:
        """Observe a cold read of ``key``; admit on the second observation.

        Called by the store *after* it has read and validated the object, so
        ``record`` (when given) seeds the resident's decoded form and a bad
        object can never be admitted.  Returns whether ``key`` is resident
        on return.
        """
        with self._lock:
            if key in self._residents:
                return True
            touches = self._doorkeeper.pop(key, 0) + 1
            if touches < _ADMIT_TOUCHES:
                self._doorkeeper[key] = touches
                while len(self._doorkeeper) > _DOORKEEPER_MAX:
                    self._doorkeeper.popitem(last=False)
                return False
        # map outside the lock: admission does filesystem work
        try:
            with open(path, "rb") as handle:
                data = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            return False
        resident = _HotObject(key, data, len(data))
        if record is not None:
            resident.seed_record(record)
        evicted = []
        with self._lock:
            if key in self._residents:  # racing admitter won
                evicted.append(resident)
            else:
                self._residents[key] = resident
                self._bytes += resident.size
                self._admissions += 1
                while self._bytes > self._max_bytes and len(self._residents) > 1:
                    _old_key, old = self._residents.popitem(last=False)
                    self._bytes -= old.size
                    self._evictions += 1
                    evicted.append(old)
        for stale in evicted:
            stale.close()
        return True

    def invalidate(self, key: str) -> None:
        """Drop ``key`` (resident or doorkeeper state) after a local rewrite."""
        with self._lock:
            resident = self._residents.pop(key, None)
            if resident is not None:
                self._bytes -= resident.size
                self._invalidations += 1
            self._doorkeeper.pop(key, None)
        if resident is not None:
            resident.close()

    def close(self) -> None:
        """Release every mapped buffer (records already decoded stay valid)."""
        with self._lock:
            residents = list(self._residents.values())
            self._residents.clear()
            self._doorkeeper.clear()
            self._bytes = 0
        for resident in residents:
            resident.close()

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """Counters under ``hot_``-prefixed keys, ready to fold into
        :meth:`ArtifactStore.stats` (and from there into ``/metrics``)."""
        with self._lock:
            return {
                "hot_hits": self._hits,
                "hot_misses": self._misses,
                "hot_admissions": self._admissions,
                "hot_evictions": self._evictions,
                "hot_invalidations": self._invalidations,
                "hot_bytes": self._bytes,
                "hot_entries": len(self._residents),
            }
