"""Versioned binary artifact records: everything the pipeline knows about one graph.

An :class:`ArtifactRecord` is the unit the on-disk store
(:mod:`repro.store.store`) persists -- a pure function of a port-labeled
graph and of the (deterministic) computations performed on it:

* the compact binary graph encoding (:func:`repro.portgraph.io.graph_to_bytes`)
  and its CSR arrays, so a reader rebuilds the flat kernel view without
  re-deriving it;
* the canonical view-refinement colour tables for every materialised depth
  plus the fixpoint (``stable_depth``), which
  :meth:`repro.kernel.refine.CSRPartitionRefinement.from_stored` re-installs
  so a cold process serves depth queries with **zero refinement passes**;
* feasibility and the computed ψ_Z outcomes, keyed exactly like the runner
  cache's memo (task, ``max_depth``, ``max_states``) so a warm sweep also
  skips the PPE/CPPE joint searches;
* bit-exact advice strings (the full-map advice of Theorem 2.4's universal
  scheme by default).

The byte encoding (format version 2) is canonical: unsigned-LEB128 varints
and length-prefixed UTF-8, sections in a fixed order, ψ entries and advice
sorted -- so ``encode(decode(b)) == b`` and two processes that computed the
same things about equal graphs produce identical record bytes.  That is what
makes the store content-addressed *and* lets write-through skip rewrites.
Version 2 appends the delta lineage section -- ``parent_fingerprint`` and
``delta_digest``, naming the base record and edit script a delta-derived
record was replayed from -- after the version-1 sections, so version-1
records still decode (with empty lineage) and re-encode as version 2.
Volatile observations (wall times, cumulative search-statistics snapshots)
deliberately live in the store manifest, not in the record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..kernel.csr import CSRGraph
from ..portgraph.graph import PortLabeledGraph
from ..portgraph.io import graph_from_bytes, graph_to_bytes, read_uvarint, write_uvarint

__all__ = ["ArtifactRecord", "FORMAT_VERSION", "MAGIC"]

MAGIC = b"RPLE"
FORMAT_VERSION = 2
#: Versions :meth:`ArtifactRecord.from_bytes` accepts (v1 = no lineage).
_DECODABLE_VERSIONS = (1, 2)

#: One computed ψ_Z outcome: (task code, max_depth, max_states, status, value)
#: with status ``"ok"`` or ``"limited"`` (search budget exceeded).
PsiEntry = Tuple[str, Optional[int], int, str, Optional[int]]

#: One advice string: (scheme name, bit string of '0'/'1').
AdviceEntry = Tuple[str, str]


def _write_str(out: bytearray, text: str) -> None:
    payload = text.encode("utf-8")
    write_uvarint(out, len(payload))
    out.extend(payload)


def _read_str(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = read_uvarint(data, offset)
    return data[offset : offset + length].decode("utf-8"), offset + length


def _write_optional(out: bytearray, value: Optional[int]) -> None:
    # None <-> 0, v <-> v + 1 (values here are small non-negative ints)
    write_uvarint(out, 0 if value is None else value + 1)


def _read_optional(data: bytes, offset: int) -> Tuple[Optional[int], int]:
    raw, offset = read_uvarint(data, offset)
    return (None if raw == 0 else raw - 1), offset


def _pack_bits(bits: str) -> bytes:
    out = bytearray()
    for start in range(0, len(bits), 8):
        chunk = bits[start : start + 8]
        out.append(int(chunk.ljust(8, "0"), 2))
    return bytes(out)


def _unpack_bits(payload: bytes, bit_length: int) -> str:
    bits = "".join(f"{byte:08b}" for byte in payload)
    return bits[:bit_length]


@dataclass(frozen=True)
class ArtifactRecord:
    """The persisted artifact of one graph (see the module docstring)."""

    fingerprint: str
    cache_key: str
    graph: PortLabeledGraph
    stable_depth: int
    color_tables: Tuple[Tuple[int, ...], ...]
    feasible: bool
    psi: Tuple[PsiEntry, ...]
    advice: Tuple[AdviceEntry, ...]
    #: Delta lineage (format v2): the fingerprint of the base graph this
    #: record was replayed from and the edit script's content digest; empty
    #: strings for records computed cold.  Provenance only -- every result
    #: section is a pure function of ``graph`` regardless of how it was
    #: computed (the delta path is certified byte-identical).
    parent_fingerprint: str = ""
    delta_digest: str = ""

    # ------------------------------------------------------------------ #
    # construction from live state
    # ------------------------------------------------------------------ #
    @classmethod
    def from_computed(
        cls,
        graph: PortLabeledGraph,
        *,
        memo: Optional[Mapping[tuple, object]] = None,
        include_advice: bool = True,
        parent_fingerprint: str = "",
        delta_digest: str = "",
    ) -> "ArtifactRecord":
        """Snapshot a (possibly warm) graph into a record.

        Refines to the fixpoint if that has not happened yet; ``memo`` is the
        runner cache entry's memo dict, whose ``("psi", ...)`` and
        ``("feasible",)`` entries become the record's result sections.
        ``parent_fingerprint`` / ``delta_digest`` record delta lineage when
        the graph's tables were replayed from a base record.
        """
        fingerprint = graph.fingerprint()
        engine = graph.refinement_engine()
        stable = engine.ensure_stable()
        tables = tuple(tuple(table) for table in engine.canonical_tables())
        memo = memo or {}
        feasible = memo.get(("feasible",))
        if feasible is None:
            feasible = engine.num_classes_at(stable) == graph.num_nodes
        psi = []
        for key, outcome in memo.items():
            if key and key[0] == "psi":
                _tag, task_code, max_depth, max_states = key
                status, value = outcome
                psi.append((task_code, max_depth, max_states, status, value))
        psi.sort(key=lambda e: (e[0], -1 if e[1] is None else e[1], e[2]))
        advice: list = []
        if include_advice:
            from ..advice.map_advice import encode_map_advice  # lazy: advice sits above store

            advice.append(("map", encode_map_advice(graph)))
        return cls(
            fingerprint=fingerprint,
            cache_key=graph.cache_key(),
            graph=graph,
            stable_depth=stable,
            color_tables=tables,
            feasible=bool(feasible),
            psi=tuple(psi),
            advice=tuple(sorted(advice)),
            parent_fingerprint=parent_fingerprint,
            delta_digest=delta_digest,
        )

    def merged_with(self, other: "ArtifactRecord") -> "ArtifactRecord":
        """Union of two records of the same *labeled* graph (ψ entries, advice).

        Both inputs are pure functions of the graph, so entries with equal
        keys are interchangeable; the union simply accumulates what different
        sweeps computed under different search parameters.  Equal
        fingerprints are **not** sufficient: the fingerprint is
        relabeling-invariant (and only as discriminating as colour
        refinement), while colour tables and ψ memos are tied to the node
        numbering -- merging across labelings would graft one labeling's
        node-indexed tables onto the other's graph.
        """
        if other.fingerprint != self.fingerprint or other.graph != self.graph:
            raise ValueError("cannot merge records of different labeled graphs")
        psi = {entry[:3]: entry for entry in other.psi}
        psi.update({entry[:3]: entry for entry in self.psi})
        advice = {name: (name, bits) for name, bits in other.advice}
        advice.update({name: (name, bits) for name, bits in self.advice})
        merged_psi = tuple(
            sorted(psi.values(), key=lambda e: (e[0], -1 if e[1] is None else e[1], e[2]))
        )
        deeper = self if len(self.color_tables) >= len(other.color_tables) else other
        return ArtifactRecord(
            fingerprint=self.fingerprint,
            cache_key=self.cache_key,
            graph=self.graph,
            stable_depth=deeper.stable_depth,
            color_tables=deeper.color_tables,
            feasible=self.feasible,
            psi=merged_psi,
            advice=tuple(sorted(advice.values())),
            # lineage is provenance: keep the freshest known ancestry
            parent_fingerprint=self.parent_fingerprint or other.parent_fingerprint,
            delta_digest=self.delta_digest or other.delta_digest,
        )

    # ------------------------------------------------------------------ #
    # restoration onto live objects
    # ------------------------------------------------------------------ #
    def memo_entries(self) -> Dict[tuple, object]:
        """The runner-cache memo dict this record warms (feasibility + ψ)."""
        memo: Dict[tuple, object] = {("feasible",): self.feasible}
        for task_code, max_depth, max_states, status, value in self.psi:
            memo[("psi", task_code, max_depth, max_states)] = (status, value)
        return memo

    def adopt_onto(self, graph: PortLabeledGraph) -> None:
        """Warm-start ``graph`` (an equal labeled graph) from this record.

        Seeds the memoised fingerprint and installs the stored partitions so
        no consumer of ``graph`` ever refines; a no-op for state the instance
        already computed itself.
        """
        graph.adopt_fingerprint(self.fingerprint)
        graph.adopt_refinement_tables(self.color_tables, self.stable_depth)

    def advice_bits(self, name: str) -> Optional[str]:
        """The stored advice bit string of scheme ``name`` (or ``None``)."""
        for scheme, bits in self.advice:
            if scheme == name:
                return bits
        return None

    # ------------------------------------------------------------------ #
    # binary encoding
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        write_uvarint(out, FORMAT_VERSION)
        _write_str(out, self.fingerprint)
        _write_str(out, self.cache_key)
        out.extend(graph_to_bytes(self.graph))
        csr = self.graph.csr()
        for arr in (csr.offsets, csr.neighbors, csr.reverse_ports):
            write_uvarint(out, len(arr))
            for value in arr:
                write_uvarint(out, value)
        write_uvarint(out, self.stable_depth)
        write_uvarint(out, len(self.color_tables))
        for table in self.color_tables:
            for color in table:
                write_uvarint(out, color)
        out.append(1 if self.feasible else 0)
        write_uvarint(out, len(self.psi))
        for task_code, max_depth, max_states, status, value in self.psi:
            _write_str(out, task_code)
            _write_optional(out, max_depth)
            write_uvarint(out, max_states)
            out.append(0 if status == "ok" else 1)
            _write_optional(out, value)
        write_uvarint(out, len(self.advice))
        for name, bits in self.advice:
            _write_str(out, name)
            write_uvarint(out, len(bits))
            packed = _pack_bits(bits)
            write_uvarint(out, len(packed))
            out.extend(packed)
        # format v2: the delta lineage section sits after every v1 section
        _write_str(out, self.parent_fingerprint)
        _write_str(out, self.delta_digest)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArtifactRecord":
        if data[: len(MAGIC)] != MAGIC:
            raise ValueError("not an artifact record (bad magic)")
        offset = len(MAGIC)
        version, offset = read_uvarint(data, offset)
        if version not in _DECODABLE_VERSIONS:
            raise ValueError(f"unsupported record format version {version}")
        fingerprint, offset = _read_str(data, offset)
        cache_key, offset = _read_str(data, offset)
        graph, offset = graph_from_bytes(data, offset=offset, validate=False)
        arrays = []
        for _ in range(3):
            length, offset = read_uvarint(data, offset)
            values = []
            for _i in range(length):
                value, offset = read_uvarint(data, offset)
                values.append(value)
            arrays.append(values)
        offsets, neighbors, reverse_ports = arrays
        graph.adopt_csr(
            CSRGraph(
                graph.num_nodes,
                graph.num_edges,
                _as_int_array(offsets),
                _as_int_array(neighbors),
                _as_int_array(reverse_ports),
            )
        )
        stable_depth, offset = read_uvarint(data, offset)
        num_tables, offset = read_uvarint(data, offset)
        n = graph.num_nodes
        tables = []
        for _ in range(num_tables):
            table = []
            for _v in range(n):
                color, offset = read_uvarint(data, offset)
                table.append(color)
            tables.append(tuple(table))
        feasible = bool(data[offset])
        offset += 1
        num_psi, offset = read_uvarint(data, offset)
        psi = []
        for _ in range(num_psi):
            task_code, offset = _read_str(data, offset)
            max_depth, offset = _read_optional(data, offset)
            max_states, offset = read_uvarint(data, offset)
            status = "ok" if data[offset] == 0 else "limited"
            offset += 1
            value, offset = _read_optional(data, offset)
            psi.append((task_code, max_depth, max_states, status, value))
        num_advice, offset = read_uvarint(data, offset)
        advice = []
        for _ in range(num_advice):
            name, offset = _read_str(data, offset)
            bit_length, offset = read_uvarint(data, offset)
            packed_length, offset = read_uvarint(data, offset)
            packed = data[offset : offset + packed_length]
            offset += packed_length
            advice.append((name, _unpack_bits(packed, bit_length)))
        parent_fingerprint = delta_digest = ""
        if version >= 2:
            parent_fingerprint, offset = _read_str(data, offset)
            delta_digest, offset = _read_str(data, offset)
        record = cls(
            fingerprint=fingerprint,
            cache_key=cache_key,
            graph=graph,
            stable_depth=stable_depth,
            color_tables=tuple(tables),
            feasible=feasible,
            psi=tuple(psi),
            advice=tuple(advice),
            parent_fingerprint=parent_fingerprint,
            delta_digest=delta_digest,
        )
        record.adopt_onto(graph)
        return record


def _as_int_array(values: Iterable[int]):
    from array import array

    from ..kernel.csr import INT_TYPECODE

    return array(INT_TYPECODE, values)
