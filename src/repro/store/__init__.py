"""Persistent, content-addressed artifact store for the election pipeline.

Everything the pipeline computes -- feasibility, the four ψ_Z election
indices, refinement partitions, advice strings -- is a pure function of the
port-labeled graph, so it only ever needs to be computed once *anywhere*.
This package is the durable layer that makes that true across processes:

* :mod:`repro.store.record` -- the versioned compact-binary
  :class:`ArtifactRecord`: graph + CSR arrays, canonical colour tables per
  depth up to the refinement fixpoint, ψ_Z outcomes keyed like the runner
  cache's memo, and bit-exact advice strings.  Encoding is canonical
  (``encode(decode(b)) == b``), which is what makes content addressing and
  skip-identical write-through work.
* :mod:`repro.store.store` -- the :class:`ArtifactStore` directory:
  fingerprint-addressed objects written atomically (temp file +
  ``os.replace``), a rebuildable manifest indexed by the shallow
  ``cache_key`` for refinement-free lookup, and safe concurrent
  readers/writers across processes.

The runner's :class:`~repro.runner.cache.RefinementCache` reads and writes
through this store when one is attached (see
:meth:`~repro.runner.cache.RefinementCache.attach_store`), which is how the
CLI, the benchmarks and the ``repro-leader-election serve`` service all
warm-start from disk: a cold process pointed at a populated store replays a
sweep with zero refinement passes.
"""

from .hottier import DEFAULT_HOT_TIER_BYTES, HotTier
from .record import FORMAT_VERSION, ArtifactRecord
from .store import ArtifactStore

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "DEFAULT_HOT_TIER_BYTES",
    "FORMAT_VERSION",
    "HotTier",
]
