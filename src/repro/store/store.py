"""Content-addressed on-disk store of :class:`~repro.store.record.ArtifactRecord`.

Layout under one root directory::

    <root>/
      manifest.json            # index + per-record metadata (rebuildable)
      manifest.lock            # flock'd during manifest read-modify-write
      objects/<fp[:2]>/<fp>.rple   # one record, named by its fingerprint

Consistency model
-----------------
* **Records are immutable values.**  A record's path is derived from the
  graph fingerprint, and its bytes are a pure function of the graph and the
  (deterministic) results it carries, so concurrent writers of the same
  fingerprint race only between identical byte strings.
* **Writes are atomic.**  Every write goes to a unique temp file in the same
  directory followed by ``os.replace``; a reader either sees a complete
  record or no record, never a torn one.  Re-putting unchanged content is
  detected by byte comparison and skipped.
* **The manifest is an index, not a source of truth.**  It maps storage keys
  to metadata (graph label, sizes, the shallow ``cache_key`` used for
  read-through lookups, observed compute cost) and is rewritten atomically
  under an ``flock``; if it is lost or stale it can be rebuilt from the
  objects directory with :meth:`ArtifactStore.rebuild_manifest`.  Readers
  never need it to resolve a known fingerprint.
* **Colliding labelings spill.**  The fingerprint is relabeling-invariant
  and only as discriminating as colour refinement, so two *different*
  labeled graphs can share one fingerprint (relabeled copies; or genuinely
  different view-symmetric graphs, e.g. a torus and a twisted torus of the
  same size).  The first writer owns the primary object
  ``<fp>.rple``; a later put of a different labeled graph behind the same
  fingerprint goes to a spill object ``<fp>~<labeling-digest>.rple``
  (deterministic, so concurrent writers of the same labeling still race
  only between identical bytes).  ``load_for_graph`` resolves by exact
  labeled equality over all candidates, so every labeling warm-starts.

Read-through by graph (not by fingerprint) is the hot path of the runner
cache: computing a fingerprint requires refining the graph, which is exactly
the work a warm start wants to avoid.  :meth:`ArtifactStore.load_for_graph`
therefore looks up candidates by the O(n + m) shallow
:meth:`~repro.portgraph.graph.PortLabeledGraph.cache_key` recorded in the
manifest and resolves collisions by exact labeled-graph equality, so a cold
process finds its record without a single refinement pass.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..portgraph.graph import PortLabeledGraph
from ..portgraph.io import graph_to_bytes
from .hottier import DEFAULT_HOT_TIER_BYTES, HotTier
from .record import FORMAT_VERSION, ArtifactRecord

__all__ = ["ArtifactStore"]

_MANIFEST_NAME = "manifest.json"
_LOCK_NAME = "manifest.lock"
_OBJECT_SUFFIX = ".rple"
_QUARANTINE_SUFFIX = ".quarantine"
#: Separates the fingerprint from the labeling digest in a spill key
#: (not a hex character, so primary and spill keys cannot collide).
_SPILL_SEPARATOR = "~"
#: Errors that mean "this object does not decode": truncation trips either
#: an explicit format check (``ValueError``) or an out-of-range varint read
#: (``IndexError``).
_DECODE_ERRORS = (ValueError, IndexError)

_logger = logging.getLogger(__name__)


class ArtifactStore:
    """A directory of persisted artifacts, safe for concurrent processes."""

    def __init__(self, root: str, *, create: bool = True, hot_tier_bytes: int = 0) -> None:
        self._root = os.path.abspath(root)
        self._objects = os.path.join(self._root, "objects")
        self._manifest_path = os.path.join(self._root, _MANIFEST_NAME)
        self._lock_path = os.path.join(self._root, _LOCK_NAME)
        if create:
            os.makedirs(self._objects, exist_ok=True)
        elif not os.path.isdir(self._objects):
            raise FileNotFoundError(f"no artifact store at {self._root}")
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._put_skips = 0
        self._put_spills = 0
        self._bytes_read = 0
        self._bytes_written = 0
        self._manifest_rebuilds = 0
        self._corrupt_objects = 0
        self._compactions = 0
        self._compacted_objects = 0
        self._hot: Optional[HotTier] = None
        # manifest cache, keyed by the full stat triple (mtime_ns, size,
        # inode) of the manifest file.  mtime alone is not enough: two
        # rewrites within one filesystem timestamp tick would serve the
        # first rewrite's index forever.  Every manifest write is an
        # ``os.replace`` of a fresh temp file, so the inode changes on
        # *every* rewrite even when mtime and size do not.
        self._manifest_cache: Optional[
            Tuple[Tuple[int, int, int], dict, Dict[str, List[str]]]
        ] = None
        if hot_tier_bytes:
            self.enable_hot_tier(hot_tier_bytes)

    # ------------------------------------------------------------------ #
    @property
    def root(self) -> str:
        return self._root

    def _object_path(self, fingerprint: str) -> str:
        return os.path.join(self._objects, fingerprint[:2], fingerprint + _OBJECT_SUFFIX)

    # ------------------------------------------------------------------ #
    # hot tier
    # ------------------------------------------------------------------ #
    @property
    def hot_tier(self) -> Optional[HotTier]:
        """The attached in-process hot tier, if one is enabled."""
        return self._hot

    def enable_hot_tier(self, max_bytes: int = DEFAULT_HOT_TIER_BYTES) -> None:
        """Serve repeat :meth:`get` lookups from mmap'd, pre-decoded residents.

        Idempotent: enabling an already-hot store keeps the existing tier
        (and its residents).  See :mod:`repro.store.hottier` for the
        admission and consistency model.
        """
        if self._hot is None:
            self._hot = HotTier(max_bytes)

    def close(self) -> None:
        """Release the hot tier's mapped buffers; the store stays usable cold.

        Records already decoded from residents remain valid -- decode copies
        every array out of the mapped buffer -- so in-flight results never
        dangle.
        """
        hot = self._hot
        self._hot = None
        if hot is not None:
            hot.close()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def contains(self, fingerprint: str) -> bool:
        return os.path.exists(self._object_path(fingerprint))

    def get_bytes(self, fingerprint: str) -> Optional[bytes]:
        try:
            with open(self._object_path(fingerprint), "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            with self._counter_lock:
                self._misses += 1
            return None
        except OSError as error:
            # any other read failure (permissions clamped mid-deploy, a
            # directory squatting on the object path, EIO) is a miss for
            # the caller to recompute past, not a 500 from the service
            _logger.warning("store object %s unreadable, treating as miss: %s",
                            fingerprint, error)
            with self._counter_lock:
                self._misses += 1
            return None
        with self._counter_lock:
            self._hits += 1
            self._bytes_read += len(payload)
        return payload

    def _quarantine(self, key: str, error: Exception) -> None:
        """Move a corrupt object off the read path and re-book its hit as a miss.

        Only called after :meth:`get_bytes` counted a hit for ``key``; the
        renamed ``*.quarantine`` file keeps the bytes around for forensics
        and is reclaimed by :meth:`compact`.
        """
        path = self._object_path(key)
        try:
            os.replace(path, path + _QUARANTINE_SUFFIX)
        except OSError:  # a racing writer may have replaced it already
            pass
        with self._counter_lock:
            self._hits -= 1
            self._misses += 1
            self._corrupt_objects += 1
        if self._hot is not None:
            self._hot.invalidate(key)
        _logger.warning("quarantined corrupt store object %s: %s", key, error)

    def get(self, key: str) -> Optional[ArtifactRecord]:
        """The record stored under ``key`` (a fingerprint or spill key), or ``None``.

        A torn or misplaced object -- bytes that fail to decode, or decode
        to a record whose fingerprint contradicts the key -- is counted as
        a miss (``corrupt_objects``), quarantined, and reported as ``None``
        so the caller recomputes and writes a fresh object through.  With a
        hot tier enabled, a resident key skips the filesystem entirely.
        """
        hot = self._hot
        if hot is not None:
            record = hot.lookup(key)
            if record is not None:
                with self._counter_lock:
                    self._hits += 1
                return record
        payload = self.get_bytes(key)
        if payload is None:
            return None
        try:
            record = ArtifactRecord.from_bytes(payload)
        except _DECODE_ERRORS as error:
            self._quarantine(key, error)
            return None
        if record.fingerprint != key.partition(_SPILL_SEPARATOR)[0]:
            self._quarantine(
                key,
                ValueError(f"object decodes to fingerprint {record.fingerprint}"),
            )
            return None
        if hot is not None:
            hot.offer(key, self._object_path(key), record)
        return record

    def load_for_graph(self, graph: PortLabeledGraph) -> Optional[ArtifactRecord]:
        """The record of an exactly equal labeled graph, found without refining.

        This is the warm-start hot path, so it degrades to a miss rather
        than an error: a candidate object that is corrupt, written by an
        unsupported format version, or misfiled is quarantined and skipped
        -- the caller recomputes (and its write-through replaces the bad
        object), instead of every lookup of that graph failing forever.
        """
        candidates = self._index().get(graph.cache_key(), ())
        for fingerprint in candidates:
            record = self.get(fingerprint)
            if record is not None and record.graph == graph:
                return record
        return None

    def fingerprints(self) -> List[str]:
        """All stored object keys (fingerprints, plus ``fp~digest`` spill keys),
        from the objects directory (not the manifest)."""
        found: List[str] = []
        if not os.path.isdir(self._objects):
            return found
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(_OBJECT_SUFFIX):
                    found.append(name[: -len(_OBJECT_SUFFIX)])
        return found

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _spill_key(record: ArtifactRecord) -> str:
        """The deterministic secondary key of a colliding labeling."""
        digest = hashlib.blake2b(graph_to_bytes(record.graph), digest_size=8).hexdigest()
        return f"{record.fingerprint}{_SPILL_SEPARATOR}{digest}"

    def put(self, record: ArtifactRecord, *, cost: Optional[Dict[str, float]] = None) -> bool:
        """Persist ``record`` atomically; returns whether bytes were written.

        Unchanged content is never rewritten (records are values), but the
        manifest entry is still ensured, so a rebuilt or lagging index heals
        on the next write-through.  ``cost`` is optional volatile metadata
        (e.g. cold compute seconds) recorded in the manifest only.

        The fingerprint is relabeling-invariant, so two *different* labeled
        graphs can address the same primary object.  The first writer owns
        it; a later put of a different labeled graph spills to the key of
        :meth:`_spill_key`, which is a pure function of the labeled graph --
        so the primary never churns, every labeling has exactly one home,
        and concurrent writers of one labeling still race only between
        identical byte strings.
        """
        payload = record.to_bytes()
        key = record.fingerprint
        path = self._object_path(key)
        wrote = False
        try:
            with open(path, "rb") as handle:
                existing = handle.read()
        except FileNotFoundError:
            existing = None
        if existing is not None and existing != payload:
            try:
                incumbent = ArtifactRecord.from_bytes(existing)
            except ValueError:
                incumbent = None  # corrupt incumbent: replace it
            if incumbent is not None and incumbent.graph != record.graph:
                key = self._spill_key(record)
                path = self._object_path(key)
                try:
                    with open(path, "rb") as handle:
                        existing = handle.read()
                except FileNotFoundError:
                    existing = None
                with self._counter_lock:
                    self._put_spills += 1
        if existing != payload:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp_path, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
            wrote = True
            with self._counter_lock:
                self._puts += 1
                self._bytes_written += len(payload)
            if self._hot is not None:
                # a resident maps the replaced inode; drop it so the next
                # read observes the merged record
                self._hot.invalidate(key)
        else:
            with self._counter_lock:
                self._put_skips += 1
        meta = self._record_meta(record, len(payload))
        if cost:
            meta["cost"] = cost
        self._ensure_manifest_entry(key, meta, force=wrote)
        return wrote

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    def _empty_manifest(self) -> dict:
        return {"format_version": FORMAT_VERSION, "generation": 0, "records": {}}

    def _load_manifest_file(self) -> Optional[dict]:
        """Parse the manifest file: an empty manifest if absent, ``None`` if
        the file is *present but corrupt* (truncated write, garbage bytes,
        wrong shape) -- the two cases recover differently."""
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return self._empty_manifest()
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None
        if not isinstance(manifest, dict) or not isinstance(manifest.get("records"), dict):
            return None
        # manifests written before compaction existed carry no generation
        if not isinstance(manifest.get("generation"), int):
            manifest["generation"] = 0
        return manifest

    def _read_manifest(self) -> dict:
        # used under the manifest lock (read-modify-write): never recurses
        # into a rebuild, a corrupt manifest just starts the rewrite empty
        manifest = self._load_manifest_file()
        return manifest if manifest is not None else self._empty_manifest()

    def _manifest_stat(self) -> Tuple[int, int, int]:
        """The cache key of the manifest file: ``(mtime_ns, size, inode)``.

        Every manifest rewrite is an ``os.replace`` of a fresh temp file,
        which allocates a new inode -- so this triple changes on *every*
        rewrite, including a same-size rewrite that lands within one mtime
        tick (the stale-index bug mtime-only keying had).  The manifest's
        ``generation`` field tracks the same thing logically, but reading
        it would cost the very parse the cache exists to avoid; the inode
        is the zero-cost stand-in and strictly more sensitive (it also
        advances on record writes, not just compactions).
        """
        try:
            stat = os.stat(self._manifest_path)
        except FileNotFoundError:
            return (-1, -1, -1)
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def manifest(self) -> dict:
        """The current manifest, cached by the file's stat triple.  Treat as
        read-only.

        A corrupt-but-present manifest (a torn write, garbage bytes) is not
        an empty store: the objects directory is the source of truth, so the
        index is rebuilt from it in place -- lookups after recovery are
        byte-identical to lookups before the corruption.
        """
        stat_key = self._manifest_stat()
        cached = self._manifest_cache
        if cached is not None and cached[0] == stat_key:
            return cached[1]
        manifest = self._load_manifest_file()
        if manifest is None:
            with self._counter_lock:
                self._manifest_rebuilds += 1
            self.rebuild_manifest()
            manifest = self._load_manifest_file() or self._empty_manifest()
            stat_key = self._manifest_stat()
        index: Dict[str, List[str]] = {}
        for fingerprint, meta in manifest["records"].items():
            cache_key = meta.get("cache_key")
            if cache_key:
                index.setdefault(cache_key, []).append(fingerprint)
        self._manifest_cache = (stat_key, manifest, index)
        return manifest

    def generation(self) -> int:
        """The manifest generation: bumped by every compaction and rebuild."""
        return int(self.manifest().get("generation", 0))

    def _index(self) -> Dict[str, List[str]]:
        self.manifest()
        cached = self._manifest_cache
        return cached[2] if cached is not None else {}

    def _write_manifest(self, manifest: dict) -> None:
        tmp_path = f"{self._manifest_path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self._manifest_path)
        self._manifest_cache = None

    def _ensure_manifest_entry(self, fingerprint: str, meta: dict, *, force: bool) -> None:
        if not force:
            existing = self.manifest()["records"].get(fingerprint)
            if existing is not None and existing.get("bytes") == meta.get("bytes"):
                return
        with self._manifest_lock():
            manifest = self._read_manifest()
            manifest["records"][fingerprint] = meta
            self._write_manifest(manifest)

    def _manifest_lock(self, timeout: float = 10.0):
        """An exclusive cross-process lock around manifest read-modify-write."""
        return _FileLock(self._lock_path, timeout=timeout)

    @staticmethod
    def _record_meta(record: ArtifactRecord, payload_size: int) -> dict:
        meta = {
            "cache_key": record.cache_key,
            "name": record.graph.name,
            "n": record.graph.num_nodes,
            "m": record.graph.num_edges,
            "bytes": payload_size,
            "stable_depth": record.stable_depth,
            "psi_entries": len(record.psi),
        }
        if record.parent_fingerprint:
            # delta lineage: which base record this one was replayed from
            meta["parent"] = record.parent_fingerprint
            meta["delta"] = record.delta_digest
        return meta

    def rebuild_manifest(self) -> int:
        """Regenerate the manifest by decoding every object; returns the count.

        The rewritten manifest carries ``generation + 1``, so every other
        handle's stat-keyed cache notices the new index.
        """
        records = {}
        for fingerprint in self.fingerprints():
            payload = self.get_bytes(fingerprint)
            if payload is None:
                continue
            try:
                record = ArtifactRecord.from_bytes(payload)
            except _DECODE_ERRORS:
                continue  # a corrupt object must not block recovering the rest
            records[fingerprint] = self._record_meta(record, len(payload))
        with self._manifest_lock():
            current = self._load_manifest_file()
            manifest = self._empty_manifest()
            manifest["generation"] = (current or {}).get("generation", 0) + 1
            manifest["records"] = records
            self._write_manifest(manifest)
        return len(records)

    # ------------------------------------------------------------------ #
    # compaction / GC
    # ------------------------------------------------------------------ #
    def compact(self, *, tmp_grace_seconds: float = 60.0) -> Dict[str, int]:
        """Garbage-collect the objects directory; rewrite the manifest index.

        Removes, under the manifest flock (so no concurrent compaction or
        manifest rewrite interleaves):

        * quarantined objects (``*.quarantine``) -- already off the read
          path, kept only for forensics;
        * temp files older than ``tmp_grace_seconds`` (writers that died
          between ``write`` and ``os.replace``);
        * objects that no longer decode or decode to the wrong fingerprint
          (torn writes that predate the quarantine path);
        * spill objects *superseded* by their primary: a spill whose
          labeled graph is exactly the primary's carries no identity of its
          own -- its memo entries are merged into the primary first, so no
          computed result is ever dropped.

        Valid primaries, and spills holding genuinely different labeled
        graphs, are never touched.  Survivors are re-indexed into a fresh
        manifest with ``generation + 1``.  Returns a summary of what was
        removed.
        """
        removed = {"quarantined": 0, "tmp": 0, "corrupt": 0, "spills": 0}
        now = time.time()
        decoded: Dict[str, ArtifactRecord] = {}
        sizes: Dict[str, int] = {}
        with self._manifest_lock():
            shards = sorted(os.listdir(self._objects)) if os.path.isdir(self._objects) else []
            for shard in shards:
                shard_dir = os.path.join(self._objects, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    path = os.path.join(shard_dir, name)
                    if name.endswith(_QUARANTINE_SUFFIX):
                        if self._remove_quietly(path):
                            removed["quarantined"] += 1
                        continue
                    if ".tmp." in name:
                        try:
                            age = now - os.stat(path).st_mtime
                        except OSError:
                            continue
                        if age > tmp_grace_seconds and self._remove_quietly(path):
                            removed["tmp"] += 1
                        continue
                    if not name.endswith(_OBJECT_SUFFIX):
                        continue
                    key = name[: -len(_OBJECT_SUFFIX)]
                    try:
                        with open(path, "rb") as handle:
                            payload = handle.read()
                        record = ArtifactRecord.from_bytes(payload)
                        if record.fingerprint != key.partition(_SPILL_SEPARATOR)[0]:
                            raise ValueError("fingerprint mismatch")
                    except (OSError, *_DECODE_ERRORS):
                        if self._remove_quietly(path):
                            removed["corrupt"] += 1
                            if self._hot is not None:
                                self._hot.invalidate(key)
                        continue
                    decoded[key] = record
                    sizes[key] = len(payload)
            # drop spills whose labeled graph the primary already holds,
            # folding their memo entries into the primary so nothing is lost
            for key in [k for k in decoded if _SPILL_SEPARATOR in k]:
                primary_key = key.partition(_SPILL_SEPARATOR)[0]
                primary = decoded.get(primary_key)
                spill = decoded[key]
                if primary is None or primary.graph != spill.graph:
                    continue
                merged = primary.merged_with(spill)
                merged_payload = merged.to_bytes()
                primary_path = self._object_path(primary_key)
                if merged_payload != primary.to_bytes():
                    tmp_path = f"{primary_path}.tmp.{os.getpid()}.{threading.get_ident()}"
                    with open(tmp_path, "wb") as handle:
                        handle.write(merged_payload)
                    os.replace(tmp_path, primary_path)
                    with self._counter_lock:
                        self._puts += 1
                        self._bytes_written += len(merged_payload)
                    if self._hot is not None:
                        self._hot.invalidate(primary_key)
                decoded[primary_key] = merged
                sizes[primary_key] = len(merged_payload)
                if self._remove_quietly(self._object_path(key)):
                    removed["spills"] += 1
                    if self._hot is not None:
                        self._hot.invalidate(key)
                del decoded[key]
            records = {
                key: self._record_meta(record, sizes[key])
                for key, record in decoded.items()
            }
            current = self._load_manifest_file()
            manifest = self._empty_manifest()
            manifest["generation"] = (current or {}).get("generation", 0) + 1
            manifest["records"] = records
            self._write_manifest(manifest)
        with self._counter_lock:
            self._compactions += 1
            self._compacted_objects += sum(removed.values())
        summary = {f"removed_{kind}": count for kind, count in removed.items()}
        summary["live_records"] = len(records)
        summary["generation"] = manifest["generation"]
        return summary

    @staticmethod
    def _remove_quietly(path: str) -> bool:
        try:
            os.unlink(path)
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------ #
    def io_counters(self) -> Dict[str, int]:
        """This handle's counters only -- no manifest read, so cheap enough
        to snapshot before/after a single evaluation (span profiling)."""
        with self._counter_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "bytes_read": self._bytes_read,
                "bytes_written": self._bytes_written,
            }

    def stats(self) -> Dict[str, int]:
        """Counters of this handle plus the on-disk record count.

        With a hot tier enabled its ``hot_*`` counters are folded in, which
        is how they reach ``/stats`` and the ``repro_store_events`` metrics
        family without any extra service wiring.
        """
        # read the manifest before taking the counter lock: a corrupt
        # manifest triggers a rebuild, which bumps a counter itself
        records = len(self.manifest()["records"])
        with self._counter_lock:
            snapshot = {
                "records": records,
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "put_skips": self._put_skips,
                "put_spills": self._put_spills,
                "bytes_read": self._bytes_read,
                "bytes_written": self._bytes_written,
                "manifest_rebuilds": self._manifest_rebuilds,
                "corrupt_objects": self._corrupt_objects,
                "compactions": self._compactions,
                "compacted_objects": self._compacted_objects,
            }
        hot = self._hot
        if hot is not None:
            snapshot.update(hot.counters())
        return snapshot


class _FileLock:
    """A small blocking ``flock`` wrapper with a timeout (POSIX; no-op elsewhere)."""

    def __init__(self, path: str, *, timeout: float) -> None:
        self._path = path
        self._timeout = timeout
        self._handle = None

    def __enter__(self) -> "_FileLock":
        try:
            import fcntl
        except ImportError:  # non-POSIX: fall back to atomic-replace-only safety
            return self
        handle = open(self._path, "a+b")
        deadline = time.monotonic() + self._timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._handle = handle
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    handle.close()
                    raise TimeoutError(f"could not lock {self._path} within {self._timeout}s")
                time.sleep(0.01)

    def __exit__(self, *exc_info) -> None:
        if self._handle is not None:
            import fcntl

            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
