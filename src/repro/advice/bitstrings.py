"""Bit-string encoding utilities.

Advice in the paper is a single binary string whose *length in bits* is the
measure of interest, so the oracles here produce actual ``'0'``/``'1'``
strings and the library always reports exact bit counts.  The main encoder
turns a sequence of non-negative integer symbols (e.g. the flattened view of
Theorem 2.2, or a UTF-8 byte stream for map advice) into a self-delimiting
bit string:

* the symbol width ``w`` (Elias-gamma coded),
* the number of symbols (Elias-gamma coded),
* the symbols themselves, each in ``w`` fixed-width bits.

For symbols bounded by the maximum degree Δ this costs
``len(symbols) * ceil(log2(Δ+1)) + O(log)`` bits, matching the
O((Δ-1)^k log Δ) accounting of Theorem 2.2.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "BitWriter",
    "BitReader",
    "elias_gamma_encode",
    "encode_unsigned",
    "encode_symbols",
    "decode_symbols",
    "bits_from_bytes",
    "bytes_from_bits",
]


class BitWriter:
    """Accumulates bits into a string."""

    def __init__(self) -> None:
        self._chunks: List[str] = []

    def write_bit(self, bit: int) -> None:
        self._chunks.append("1" if bit else "0")

    def write_unsigned(self, value: int, width: int) -> None:
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._chunks.append(format(value, f"0{width}b") if width > 0 else "")

    def write_elias_gamma(self, value: int) -> None:
        """Elias gamma code of a *positive* integer."""
        if value < 1:
            raise ValueError("Elias gamma encodes positive integers only")
        binary = bin(value)[2:]
        self._chunks.append("0" * (len(binary) - 1) + binary)

    def getvalue(self) -> str:
        return "".join(self._chunks)

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)


class BitReader:
    """Sequential reader over a bit string."""

    def __init__(self, bits: str) -> None:
        if any(c not in "01" for c in bits):
            raise ValueError("bit strings may only contain '0' and '1'")
        self._bits = bits
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise ValueError("read past the end of the bit string")
        bit = self._bits[self._pos]
        self._pos += 1
        return 1 if bit == "1" else 0

    def read_unsigned(self, width: int) -> int:
        if width == 0:
            return 0
        if self._pos + width > len(self._bits):
            raise ValueError("read past the end of the bit string")
        value = int(self._bits[self._pos : self._pos + width], 2)
        self._pos += width
        return value

    def read_elias_gamma(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.read_bit()
        return value


def elias_gamma_encode(value: int) -> str:
    """Elias gamma code of a positive integer, as a bit string."""
    writer = BitWriter()
    writer.write_elias_gamma(value)
    return writer.getvalue()


def encode_unsigned(value: int, width: int) -> str:
    """Fixed-width binary encoding."""
    writer = BitWriter()
    writer.write_unsigned(value, width)
    return writer.getvalue()


def encode_symbols(symbols: Sequence[int]) -> str:
    """Encode a sequence of non-negative integers as a self-delimiting bit string."""
    symbols = list(symbols)
    max_symbol = max(symbols, default=0)
    width = max(1, max_symbol.bit_length())
    writer = BitWriter()
    writer.write_elias_gamma(width)
    writer.write_elias_gamma(len(symbols) + 1)
    for symbol in symbols:
        if symbol < 0:
            raise ValueError("symbols must be non-negative")
        writer.write_unsigned(symbol, width)
    return writer.getvalue()


def decode_symbols(bits: str) -> Tuple[int, ...]:
    """Inverse of :func:`encode_symbols`."""
    reader = BitReader(bits)
    width = reader.read_elias_gamma()
    count = reader.read_elias_gamma() - 1
    return tuple(reader.read_unsigned(width) for _ in range(count))


def bits_from_bytes(payload: bytes) -> str:
    """Bit-string view of a byte string (big-endian per byte)."""
    return "".join(format(byte, "08b") for byte in payload)


def bytes_from_bits(bits: str) -> bytes:
    """Inverse of :func:`bits_from_bytes` (length must be a multiple of 8)."""
    if len(bits) % 8 != 0:
        raise ValueError("bit string length must be a multiple of 8")
    return bytes(int(bits[i : i + 8], 2) for i in range(0, len(bits), 8))
