"""Exact counting for the Pigeonhole-Principle lower-bound arguments.

Every lower bound of the paper (Theorems 2.9, 3.11, 4.11) has the same shape:
the constructed class contains more graphs than there are advice strings of
the allowed length, so some two graphs receive the same advice, and an
indistinguishability lemma then produces an incorrect execution.  This module
provides the exact (big-integer) counting side of those arguments.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "num_advice_strings_up_to",
    "min_advice_bits_to_distinguish",
    "pigeonhole_forces_collision",
]


def num_advice_strings_up_to(length_bits: int) -> int:
    """Number of distinct binary strings of length at most ``length_bits`` (including the empty one)."""
    if length_bits < 0:
        raise ValueError("length must be non-negative")
    return (1 << (length_bits + 1)) - 1


def pigeonhole_forces_collision(num_graphs: int, advice_bits: int) -> bool:
    """Whether *every* oracle limited to ``advice_bits`` bits must repeat advice on the class.

    True iff the number of graphs exceeds the number of advice strings of
    length at most ``advice_bits`` -- the exact hypothesis of the paper's
    Pigeonhole steps.
    """
    if num_graphs < 0:
        raise ValueError("number of graphs must be non-negative")
    return num_graphs > num_advice_strings_up_to(advice_bits)


def min_advice_bits_to_distinguish(num_graphs: int) -> int:
    """Smallest advice length (in bits) for which an oracle *could* give distinct advice to each graph.

    Equivalently, one less than the smallest L with 2^{L+1} - 1 >= num_graphs;
    any algorithm solving the task on the whole class with per-graph-distinct
    outputs (as in the paper's lower bounds) needs at least this much advice.
    """
    if num_graphs <= 0:
        raise ValueError("number of graphs must be positive")
    # Smallest L with 2^{L+1} - 1 >= num_graphs; start from the bit length and
    # adjust (num_graphs can be astronomically large -- e.g. |J_{µ,k}| -- so a
    # linear search is out of the question).
    bits = max(0, num_graphs.bit_length() - 1)
    while bits > 0 and num_advice_strings_up_to(bits - 1) >= num_graphs:
        bits -= 1
    while num_advice_strings_up_to(bits) < num_graphs:
        bits += 1
    return bits
