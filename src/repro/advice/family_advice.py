"""Constructive advice upper bounds on the lower-bound families (extension).

The paper proves that Port Election in minimum time on U_{Δ,k} and PPE/CPPE in
minimum time on J_{µ,k} need a *lot* of advice (Theorems 3.11, 4.11, 4.12).
A natural companion question -- how much advice is *enough* on those very
classes -- is not treated explicitly, but the constructions answer it almost
immediately, because a member differs from the class template only in its
defining sequence:

* a member G_σ of U_{Δ,k} is determined by σ ∈ {1..Δ-1}^{|T_{Δ,k}|}, so an
  oracle can simply transmit σ: ``|T_{Δ,k}| · ⌈log₂(Δ-1)⌉`` bits.  Each node
  already knows the template (it is common knowledge for the class), locates
  itself in it from its k-round view exactly as in Lemma 3.9, and uses σ only
  for the single decision the view cannot settle -- which port of a hub root
  carries the connector path;

* a member J_Y of J_{µ,k} is determined by Y ∈ {0,1}^{2^{z-1}}, so
  ``2^{z-1}`` bits of advice suffice for CPPE in minimum time.

Both figures match the corresponding lower bounds up to a logarithmic factor
(respectively exactly), showing that the paper's lower bounds are essentially
tight on their own classes.  The oracles below produce the exact bit strings,
and the helpers pair them with the family algorithms so benchmarks can report
measured "sufficient" advice next to the "necessary" advice of the theorems.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..core.tasks import Task
from ..families.jmuk import JmukMember
from ..families.udk import UdkMember
from .bitstrings import BitReader, BitWriter

__all__ = [
    "encode_udk_sigma",
    "decode_udk_sigma",
    "udk_pe_sufficient_advice_bits",
    "encode_jmuk_y",
    "decode_jmuk_y",
    "jmuk_cppe_sufficient_advice_bits",
    "sufficient_vs_necessary_bits",
]


def encode_udk_sigma(member: UdkMember) -> str:
    """Advice sufficient for minimum-time PE on U_{Δ,k}: the sequence σ, fixed-width coded."""
    if member.sigma is None:
        # the template corresponds to σ = (0, ..., 0) conceptually; encode an empty marker
        sigma: Tuple[int, ...] = ()
    else:
        sigma = member.sigma
    width = max(1, (member.delta - 1).bit_length())
    writer = BitWriter()
    writer.write_elias_gamma(len(sigma) + 1)
    for value in sigma:
        writer.write_unsigned(value, width)
    return writer.getvalue()


def decode_udk_sigma(advice: str, delta: int) -> Tuple[int, ...]:
    """Inverse of :func:`encode_udk_sigma`."""
    width = max(1, (delta - 1).bit_length())
    reader = BitReader(advice)
    count = reader.read_elias_gamma() - 1
    return tuple(reader.read_unsigned(width) for _ in range(count))


def udk_pe_sufficient_advice_bits(member: UdkMember) -> int:
    """Measured size of the σ-advice for ``member`` (0 length σ for the template)."""
    return len(encode_udk_sigma(member))


def encode_jmuk_y(member: JmukMember) -> str:
    """Advice sufficient for minimum-time CPPE on J_{µ,k}: the binary sequence Y itself."""
    y = member.y if member.y is not None else ()
    return "".join("1" if bit else "0" for bit in y)


def decode_jmuk_y(advice: str) -> Tuple[int, ...]:
    """Inverse of :func:`encode_jmuk_y`."""
    return tuple(1 if c == "1" else 0 for c in advice)


def jmuk_cppe_sufficient_advice_bits(member: JmukMember) -> int:
    """Measured size of the Y-advice for ``member``."""
    return len(encode_jmuk_y(member))


def sufficient_vs_necessary_bits(member) -> Dict[str, float]:
    """Sufficient (constructive) vs necessary (pigeonhole) advice on a family member.

    For a U_{Δ,k} member: sufficient = |σ|·⌈log₂(Δ-1)⌉ (+ header), necessary =
    ⌈log₂ |U_{Δ,k}|⌉ ≈ |T_{Δ,k}|·log₂(Δ-1).  For a J_{µ,k} member: sufficient =
    necessary = 2^{z-1} bits.  Returns a small dict used by the ablation bench.
    """
    from ..advice.counting import min_advice_bits_to_distinguish
    from ..families.udk import udk_class_size

    if isinstance(member, UdkMember):
        sufficient = udk_pe_sufficient_advice_bits(member)
        necessary = min_advice_bits_to_distinguish(udk_class_size(member.delta, member.k))
        task = Task.PORT_ELECTION.value
    elif isinstance(member, JmukMember):
        sufficient = jmuk_cppe_sufficient_advice_bits(member)
        necessary = 2 ** (member.z - 1)
        task = Task.COMPLETE_PORT_PATH_ELECTION.value
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported member type {type(member)!r}")
    return {
        "task": task,
        "sufficient_bits": sufficient,
        "necessary_bits": necessary,
        "ratio": sufficient / necessary if necessary else math.inf,
    }
