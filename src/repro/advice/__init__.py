"""Algorithms with advice: oracles, bit-exact advice strings, bounds and counting."""

from .bitstrings import (
    BitReader,
    BitWriter,
    bits_from_bytes,
    bytes_from_bits,
    decode_symbols,
    elias_gamma_encode,
    encode_symbols,
    encode_unsigned,
)
from .family_advice import (
    decode_jmuk_y,
    decode_udk_sigma,
    encode_jmuk_y,
    encode_udk_sigma,
    jmuk_cppe_sufficient_advice_bits,
    sufficient_vs_necessary_bits,
    udk_pe_sufficient_advice_bits,
)
from .counting import (
    min_advice_bits_to_distinguish,
    num_advice_strings_up_to,
    pigeonhole_forces_collision,
)
from .map_advice import (
    MapAdviceOracle,
    UniversalMapAlgorithm,
    decode_map_advice,
    encode_map_advice,
    map_advice_bits,
    universal_scheme,
)
from .oracle import AdvisedScheme, NoAdviceOracle, Oracle
from .selection_advice import (
    SelectionAdviceOracle,
    SelectionFromViewAdvice,
    decode_view_advice,
    encode_view_advice,
    measured_selection_advice_bits,
    selection_with_advice_scheme,
)
from .size_bounds import (
    augmented_tree_family_size,
    pe_advice_lower_bound_bits,
    ppe_cppe_advice_lower_bound_bits,
    selection_advice_lower_bound_bits,
    selection_advice_upper_bound_bits,
    tree_leaf_count,
)

__all__ = [
    "BitWriter",
    "BitReader",
    "encode_symbols",
    "decode_symbols",
    "encode_unsigned",
    "elias_gamma_encode",
    "bits_from_bytes",
    "bytes_from_bits",
    "Oracle",
    "NoAdviceOracle",
    "AdvisedScheme",
    "SelectionAdviceOracle",
    "SelectionFromViewAdvice",
    "selection_with_advice_scheme",
    "encode_view_advice",
    "decode_view_advice",
    "measured_selection_advice_bits",
    "MapAdviceOracle",
    "UniversalMapAlgorithm",
    "universal_scheme",
    "encode_map_advice",
    "decode_map_advice",
    "map_advice_bits",
    "selection_advice_upper_bound_bits",
    "selection_advice_lower_bound_bits",
    "pe_advice_lower_bound_bits",
    "ppe_cppe_advice_lower_bound_bits",
    "tree_leaf_count",
    "augmented_tree_family_size",
    "encode_udk_sigma",
    "decode_udk_sigma",
    "udk_pe_sufficient_advice_bits",
    "encode_jmuk_y",
    "decode_jmuk_y",
    "jmuk_cppe_sufficient_advice_bits",
    "sufficient_vs_necessary_bits",
    "num_advice_strings_up_to",
    "min_advice_bits_to_distinguish",
    "pigeonhole_forces_collision",
]
