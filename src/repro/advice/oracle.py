"""The algorithms-with-advice framework.

Following the framework used by the paper (and by [11, 25, 36]), an *oracle*
knows the entire network and provides the same binary string -- the advice --
to every node before the computation starts.  A distributed algorithm then
runs in the LOCAL model; its decisions may depend only on the node's view and
on the advice.  The *size of advice* is the length of the string in bits.

An :class:`AdvisedScheme` bundles an oracle with the node-algorithm factory
that consumes its advice, so tests and benchmarks can run the whole
oracle-then-distributed pipeline in one call and account for both resources
(rounds and advice bits).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.tasks import ElectionOutcome, Task
from ..portgraph.graph import PortLabeledGraph
from ..sim.engine import run_synchronous
from ..sim.model import Advice, NodeAlgorithm

__all__ = ["Oracle", "NoAdviceOracle", "AdvisedScheme"]


class Oracle(abc.ABC):
    """An all-knowing oracle that maps a network to an advice bit string."""

    @abc.abstractmethod
    def advise(self, graph: PortLabeledGraph) -> Advice:
        """The advice string for ``graph`` (``None`` for "no advice")."""

    def advice_size(self, graph: PortLabeledGraph) -> int:
        """Length of the advice in bits."""
        advice = self.advise(graph)
        return 0 if advice is None else len(advice)


class NoAdviceOracle(Oracle):
    """The trivial oracle providing no information."""

    def advise(self, graph: PortLabeledGraph) -> Advice:
        return None


@dataclass
class AdvisedScheme:
    """An oracle together with the distributed algorithm consuming its advice."""

    task: Task
    oracle: Oracle
    algorithm_factory: Callable[[], NodeAlgorithm]
    name: str = ""

    def run(
        self,
        graph: PortLabeledGraph,
        *,
        rounds: Optional[int] = None,
    ) -> ElectionOutcome:
        """Compute the advice for ``graph``, run the distributed algorithm, collect outputs."""
        advice = self.oracle.advise(graph)
        result = run_synchronous(
            graph, self.algorithm_factory, rounds=rounds, advice=advice
        )
        return ElectionOutcome(
            task=self.task,
            outputs=result.outputs,
            rounds=result.trace.rounds,
            advice_bits=0 if advice is None else len(advice),
            metadata={"scheme": self.name or type(self.oracle).__name__},
        )
