"""Theorem 2.2: Selection in minimum time with O((Δ-1)^{ψ_S} log Δ) advice.

The oracle knows the whole graph.  It computes ψ_S(G), picks -- among all
nodes whose augmented truncated view at depth ψ_S(G) is unique (Proposition
2.1 guarantees at least one) -- the node ``u`` whose view is
lexicographically smallest, and encodes ``B^{ψ_S(G)}(u)`` as a binary string.

The distributed algorithm is oblivious to the graph: each node decodes the
advice into a view, reads off its height ``h``, gathers its own ``B^h`` in
``h`` communication rounds, and outputs ``leader`` iff its own view equals
the advice view.  Exactly one node matches, so Selection is solved in
ψ_S(G) rounds.
"""

from __future__ import annotations

from typing import Optional

from ..core.tasks import LEADER, NON_LEADER, Task
from ..portgraph.graph import PortLabeledGraph
from ..sim.algorithm import ViewGatheringAlgorithm
from ..sim.model import Advice
from ..views.encoding import view_from_symbols, view_to_symbols
from ..views.refinement import ViewRefinement
from ..views.view_tree import ViewNode, augmented_view
from .bitstrings import decode_symbols, encode_symbols
from .oracle import AdvisedScheme, Oracle

__all__ = [
    "encode_view_advice",
    "decode_view_advice",
    "SelectionAdviceOracle",
    "SelectionFromViewAdvice",
    "selection_with_advice_scheme",
    "measured_selection_advice_bits",
]


def encode_view_advice(view: ViewNode) -> str:
    """Encode an augmented truncated view as an advice bit string."""
    return encode_symbols(view_to_symbols(view))


def decode_view_advice(advice: str) -> ViewNode:
    """Decode an advice bit string back into the view it encodes."""
    return view_from_symbols(decode_symbols(advice))


class SelectionAdviceOracle(Oracle):
    """The oracle of Theorem 2.2.

    Parameters
    ----------
    depth:
        Override the view depth to encode.  By default the oracle uses
        ψ_S(G), the minimum time; passing a larger depth models "more time,
        same advice scheme".
    """

    def __init__(self, depth: Optional[int] = None) -> None:
        self._depth = depth

    def advise(self, graph: PortLabeledGraph) -> Advice:
        refinement = ViewRefinement(graph)
        depth = self._depth
        if depth is None:
            depth = refinement.first_depth_with_unique_node()
            if depth is None:
                raise ValueError(
                    "graph is infeasible: no node ever has a unique view, "
                    "so Selection cannot be solved at all"
                )
        unique = refinement.unique_nodes(depth)
        if not unique:
            raise ValueError(f"no node has a unique view at depth {depth}")
        views = {v: augmented_view(graph, v, depth) for v in unique}
        chosen = min(unique, key=lambda v: views[v].canonical_key())
        return encode_view_advice(views[chosen])


class SelectionFromViewAdvice(ViewGatheringAlgorithm):
    """The distributed algorithm of Theorem 2.2 (view comparison against the advice)."""

    def __init__(self) -> None:
        super().__init__()
        self._advice_view: Optional[ViewNode] = None

    def setup(self, degree: int, advice: Advice) -> None:
        super().setup(degree, advice)
        if advice is None:
            raise ValueError("the Theorem 2.2 algorithm requires advice")
        self._advice_view = decode_view_advice(advice)

    def rounds_needed(self) -> Optional[int]:
        assert self._advice_view is not None
        return self._advice_view.height

    def decide(self, view: ViewNode) -> str:
        assert self._advice_view is not None
        if view == self._advice_view:
            return LEADER
        return NON_LEADER


def selection_with_advice_scheme(depth: Optional[int] = None) -> AdvisedScheme:
    """The full Theorem 2.2 oracle/algorithm pair as an :class:`AdvisedScheme`."""
    return AdvisedScheme(
        task=Task.SELECTION,
        oracle=SelectionAdviceOracle(depth),
        algorithm_factory=SelectionFromViewAdvice,
        name="theorem-2.2-selection",
    )


def measured_selection_advice_bits(graph: PortLabeledGraph, depth: Optional[int] = None) -> int:
    """The exact advice size (in bits) the Theorem 2.2 oracle uses on ``graph``."""
    return SelectionAdviceOracle(depth).advice_size(graph)
