"""Closed-form advice-size bounds from the paper's theorems.

These are the *predicted* quantities the benchmark harness prints next to the
measured ones:

* Theorem 2.2 (upper bound): Selection in time ψ_S(G) with advice
  O((Δ-1)^{ψ_S(G)} log Δ) -- we expose the explicit edge-counting bound used
  in its proof.
* Theorem 2.9 (lower bound): for the class G_{Δ,k}, advice
  (1/8)(Δ-1)^k log2 Δ bits is not enough.
* Theorem 3.11 (lower bound): for U_{Δ,k}, advice (1/4)|T_{Δ,k}| log2 Δ bits
  is not enough.
* Theorems 4.11/4.12 (lower bound): for J_{µ,k} with µ = ⌈Δ/4⌉, advice
  2^{(4µ)^{k/6}} bits is not enough.

All bounds are returned as exact integers/fractions where the paper's
expression is integral, and as floats otherwise.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

__all__ = [
    "selection_advice_upper_bound_bits",
    "selection_advice_lower_bound_bits",
    "pe_advice_lower_bound_bits",
    "ppe_cppe_advice_lower_bound_bits",
    "tree_leaf_count",
    "augmented_tree_family_size",
]

Number = Union[int, float, Fraction]


def tree_leaf_count(delta: int, k: int) -> int:
    """z = (Δ-2)·(Δ-1)^{k-1}: number of leaves of the Building Block 1 tree T."""
    if delta < 3 or k < 1:
        raise ValueError("the tree T requires Δ >= 3 and k >= 1")
    return (delta - 2) * (delta - 1) ** (k - 1)


def augmented_tree_family_size(delta: int, k: int) -> int:
    """|T_{Δ,k}| = (Δ-1)^z with z = (Δ-2)(Δ-1)^{k-1} (Building Block 2 / Fact 2.3)."""
    return (delta - 1) ** tree_leaf_count(delta, k)


def selection_advice_upper_bound_bits(delta: int, k: int) -> int:
    """Explicit Theorem 2.2-style bound on the advice for Selection in time k.

    Theorem 2.2 encodes the augmented truncated view of the chosen node at
    depth ``k = ψ_S(G)`` using O(log Δ) bits per view edge.  Our oracle
    encodes the full walk-view (every tree node of ``B^k`` has one child per
    port, including the one leading back towards the root), which has at most
    ``N = 1 + Δ + Δ² + ... + Δ^k`` tree nodes; the encoder spends one symbol
    per tree node plus two per tree edge, each of at most
    ``ceil(log2(max(Δ, k) + 1))`` bits, plus a constant-size header.  For any
    fixed k this is polynomial in Δ -- the shape Theorem 2.2 needs for the
    exponential separations -- and it dominates the measured advice of
    :class:`repro.advice.selection_advice.SelectionAdviceOracle` on every
    graph of maximum degree Δ with ψ_S(G) = k.
    """
    if delta < 1 or k < 0:
        raise ValueError("need Δ >= 1 and k >= 0")
    symbol_bits = max(1, math.ceil(math.log2(max(delta, k) + 1)))
    tree_nodes = sum(delta**i for i in range(k + 1))
    return 3 * tree_nodes * symbol_bits + 64


def selection_advice_lower_bound_bits(delta: int, k: int) -> Fraction:
    """Theorem 2.9: (1/8)·(Δ-1)^k·log2 Δ bits are insufficient on some G in G_{Δ,k}."""
    if delta < 5 or k < 1:
        raise ValueError("Theorem 2.9 is stated for Δ >= 5 and k >= 1")
    return Fraction((delta - 1) ** k, 8) * Fraction(math.log2(delta)).limit_denominator(1 << 40)


def pe_advice_lower_bound_bits(delta: int, k: int) -> Fraction:
    """Theorem 3.11: (1/4)·|T_{Δ,k}|·log2 Δ bits are insufficient on some G in U_{Δ,k}."""
    if delta < 4 or k < 1:
        raise ValueError("Theorem 3.11 is stated for Δ >= 4 and k >= 1")
    return Fraction(augmented_tree_family_size(delta, k), 4) * Fraction(
        math.log2(delta)
    ).limit_denominator(1 << 40)


def ppe_cppe_advice_lower_bound_bits(delta: int, k: int) -> Number:
    """Theorems 4.11/4.12: 2^{(4µ)^{k/6}} bits with µ = ⌈Δ/4⌉ are insufficient on some J in J_{µ,k}."""
    if delta < 16 or k < 6:
        raise ValueError("Theorems 4.11/4.12 are stated for Δ >= 16 and k >= 6")
    mu = math.ceil(delta / 4)
    exponent = (4 * mu) ** (k / 6)
    if k % 6 == 0:
        return 2 ** ((4 * mu) ** (k // 6))
    return float(2.0**exponent)
