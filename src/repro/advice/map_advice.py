"""Full-map advice and the universal minimum-time algorithms.

Several of the paper's arguments ("given a map of the graph, the nodes can
solve Z in ψ_Z(G) rounds" -- Lemma 2.7, Lemma 3.9, Lemma 4.8) assume that the
complete map of the network is available to every node.  In the advice
framework that is simply one particular -- large -- advice string: a
serialisation of the port-labeled graph.

The universal algorithm for task ``Z`` decodes the map, recomputes ψ_Z and a
decision assignment (leader plus per-view-class output) exactly as
:mod:`repro.core.election_index` does, gathers its own view for ψ_Z rounds
and looks its output up by its view.  This is a *correct minimum-time*
algorithm for every feasible graph, at the price of advice linear in the size
of the map -- the baseline against which the paper's specialised advice sizes
are compared.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.election_index import (
    path_election_assignment,
    port_election_assignment,
    selection_assignment,
    selection_index,
    port_election_index,
    port_path_election_index,
    complete_port_path_election_index,
)
from ..core.tasks import LEADER, NON_LEADER, Task
from ..portgraph.graph import PortLabeledGraph
from ..portgraph.io import graph_from_dict, graph_to_dict
from ..sim.algorithm import ViewGatheringAlgorithm
from ..sim.model import Advice
from ..views.refinement import ViewRefinement
from ..views.view_tree import ViewNode, augmented_view
from .bitstrings import bits_from_bytes, bytes_from_bits
from .oracle import AdvisedScheme, Oracle

__all__ = [
    "encode_map_advice",
    "decode_map_advice",
    "MapAdviceOracle",
    "UniversalMapAlgorithm",
    "universal_scheme",
    "map_advice_bits",
]


def encode_map_advice(graph: PortLabeledGraph) -> str:
    """Serialise a graph (its *map*) into an advice bit string."""
    payload = json.dumps(graph_to_dict(graph), separators=(",", ":")).encode("utf-8")
    return bits_from_bytes(payload)


def decode_map_advice(advice: str) -> PortLabeledGraph:
    """Recover the map from :func:`encode_map_advice` output."""
    payload = bytes_from_bits(advice)
    return graph_from_dict(json.loads(payload.decode("utf-8")), validate=False)


def map_advice_bits(graph: PortLabeledGraph) -> int:
    """Size in bits of the full-map advice for ``graph``."""
    return len(encode_map_advice(graph))


class MapAdviceOracle(Oracle):
    """The oracle that hands every node the complete map."""

    def advise(self, graph: PortLabeledGraph) -> Advice:
        return encode_map_advice(graph)


def _decision_table(
    graph: PortLabeledGraph, task: Task
) -> Tuple[int, Dict[Tuple[int, ...], Any]]:
    """(rounds, view-key -> output) decision table for ``task`` on ``graph`` in minimum time."""
    refinement = ViewRefinement(graph)
    if task is Task.SELECTION:
        depth = selection_index(graph, refinement=refinement)
        if depth is None:
            raise ValueError("graph is infeasible")
        leader = selection_assignment(graph, depth, refinement=refinement)
        table = {
            augmented_view(graph, v, depth).canonical_key(): (
                LEADER if v == leader else NON_LEADER
            )
            for v in graph.nodes()
        }
        return depth, table
    if task is Task.PORT_ELECTION:
        depth = port_election_index(graph, refinement=refinement)
        if depth is None:
            raise ValueError("graph is infeasible")
        leader, ports = port_election_assignment(graph, depth, refinement=refinement)
        table = {
            augmented_view(graph, v, depth).canonical_key(): (
                LEADER if v == leader else ports[v]
            )
            for v in graph.nodes()
        }
        return depth, table
    complete = task is Task.COMPLETE_PORT_PATH_ELECTION
    index_fn = complete_port_path_election_index if complete else port_path_election_index
    depth = index_fn(graph, refinement=refinement)
    if depth is None:
        raise ValueError("graph is infeasible")
    leader, sequences = path_election_assignment(
        graph, depth, complete=complete, refinement=refinement
    )
    table = {
        augmented_view(graph, v, depth).canonical_key(): (
            LEADER if v == leader else sequences[v]
        )
        for v in graph.nodes()
    }
    return depth, table


class UniversalMapAlgorithm(ViewGatheringAlgorithm):
    """Universal minimum-time algorithm for any task, given the map as advice.

    All nodes decode the same map and therefore compute the same decision
    table; the table is keyed by view, so equal-view nodes necessarily produce
    equal outputs, exactly as the model demands.
    """

    def __init__(self, task: Task) -> None:
        super().__init__()
        self._task = task
        self._rounds: Optional[int] = None
        self._table: Optional[Dict[Tuple[int, ...], Any]] = None

    def setup(self, degree: int, advice: Advice) -> None:
        super().setup(degree, advice)
        if advice is None:
            raise ValueError("the universal algorithm requires the map as advice")
        graph = decode_map_advice(advice)
        self._rounds, self._table = _decision_table(graph, self._task)

    def rounds_needed(self) -> Optional[int]:
        return self._rounds

    def decide(self, view: ViewNode) -> Any:
        assert self._table is not None
        key = view.canonical_key()
        try:
            return self._table[key]
        except KeyError as exc:  # pragma: no cover - defensive
            raise RuntimeError("gathered view does not appear in the advised map") from exc


def universal_scheme(task: Task) -> AdvisedScheme:
    """Map-advice scheme solving ``task`` in exactly ψ_task(G) rounds on any feasible graph."""
    return AdvisedScheme(
        task=task,
        oracle=MapAdviceOracle(),
        algorithm_factory=lambda: UniversalMapAlgorithm(task),
        name=f"universal-map-{task.value}",
    )
