"""Validation of port-labeled adjacency structures.

The network model of the paper is a simple, undirected, connected graph in
which every node of degree ``d`` labels its incident edges with distinct
*port numbers* ``0 .. d-1``.  Each edge therefore carries two port numbers,
one per endpoint, and there is no relation between the two.

This module checks that an adjacency structure (a sequence indexed by node,
mapping ports to ``(neighbour, neighbour_port)`` pairs) satisfies the model's
invariants.  Builders use it before freezing a graph, and the graph
constructor re-uses it when ``validate=True``.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence, Tuple

__all__ = [
    "PortLabelingError",
    "validate_adjacency",
    "check_connected",
]

Endpoint = Tuple[int, int]


class PortLabelingError(ValueError):
    """Raised when an adjacency structure violates the port-labeled model."""


def _iter_ports(entry) -> Mapping[int, Endpoint]:
    """Normalise a per-node adjacency entry to a ``port -> (nbr, nbr_port)`` mapping."""
    if isinstance(entry, Mapping):
        return entry
    # Sequence indexed by port.
    return {port: pair for port, pair in enumerate(entry)}


def validate_adjacency(
    adjacency: Sequence,
    *,
    require_contiguous_ports: bool = True,
    require_connected: bool = True,
    allow_empty: bool = False,
) -> None:
    """Validate a port-labeled adjacency structure.

    Parameters
    ----------
    adjacency:
        Sequence over nodes ``0..n-1``.  Entry ``v`` is either a mapping
        ``port -> (neighbour, neighbour_port)`` or a sequence of
        ``(neighbour, neighbour_port)`` pairs indexed by port.
    require_contiguous_ports:
        If true (the paper's model), the ports at a degree-``d`` node must be
        exactly ``{0, .., d-1}``.  If false, ports only need to be distinct
        non-negative integers (useful for intermediate construction states).
    require_connected:
        If true, the graph must be connected.
    allow_empty:
        Permit the zero-node graph.

    Raises
    ------
    PortLabelingError
        If any invariant is violated.
    """
    n = len(adjacency)
    if n == 0:
        if allow_empty:
            return
        raise PortLabelingError("graph has no nodes")

    for v in range(n):
        ports = _iter_ports(adjacency[v])
        degree = len(ports)
        seen_neighbours = set()
        for port, pair in ports.items():
            if not isinstance(port, int) or port < 0:
                raise PortLabelingError(f"node {v}: port {port!r} is not a non-negative integer")
            try:
                u, q = pair
            except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
                raise PortLabelingError(
                    f"node {v}, port {port}: entry {pair!r} is not a (neighbour, port) pair"
                ) from exc
            if not (0 <= u < n):
                raise PortLabelingError(f"node {v}, port {port}: neighbour {u} out of range")
            if u == v:
                raise PortLabelingError(f"node {v}: self-loop on port {port}")
            if u in seen_neighbours:
                raise PortLabelingError(f"node {v}: multiple edges to neighbour {u}")
            seen_neighbours.add(u)
            # Reciprocity: the neighbour's port q must point back to v with port `port`.
            other = _iter_ports(adjacency[u])
            if q not in other:
                raise PortLabelingError(
                    f"node {v}, port {port}: neighbour {u} has no port {q}"
                )
            back_u, back_p = other[q]
            if back_u != v or back_p != port:
                raise PortLabelingError(
                    f"edge mismatch: node {v} port {port} -> ({u}, {q}) but "
                    f"node {u} port {q} -> ({back_u}, {back_p})"
                )
        if require_contiguous_ports and set(ports) != set(range(degree)):
            raise PortLabelingError(
                f"node {v}: ports {sorted(ports)} are not contiguous 0..{degree - 1}"
            )

    if require_connected and not check_connected(adjacency):
        raise PortLabelingError("graph is not connected")


def check_connected(adjacency: Sequence) -> bool:
    """Return True iff the graph described by ``adjacency`` is connected."""
    n = len(adjacency)
    if n == 0:
        return True
    seen = bytearray(n)
    seen[0] = 1
    queue = deque([0])
    count = 1
    while queue:
        v = queue.popleft()
        for pair in _iter_ports(adjacency[v]).values():
            u = pair[0]
            if not seen[u]:
                seen[u] = 1
                count += 1
                queue.append(u)
    return count == n
