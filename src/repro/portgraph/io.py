"""Serialization of port-labeled graphs.

Graphs round-trip through a plain ``dict`` (and JSON), convert to and from
``networkx`` multigraph-free graphs carrying port attributes, and export to
Graphviz DOT for eyeballing small instances.  The dict format is also the
payload of the "full map" advice used by the universal minimum-time
algorithms (:mod:`repro.advice.map_advice`).

:func:`graph_to_bytes` / :func:`graph_from_bytes` are the *compact binary*
round-trip used by the on-disk artifact store (:mod:`repro.store`):
unsigned-LEB128 varints over the canonical ``v < u`` edge iteration order, so
the encoding of a graph is a pure function of its labeled adjacency --
byte-identical across processes and Python versions, and typically 4-6x
smaller than the JSON form.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .graph import PortLabeledGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "graph_to_bytes",
    "graph_from_bytes",
    "graph_to_networkx",
    "graph_from_networkx",
    "graph_to_dot",
]


# --------------------------------------------------------------------------- #
# varint primitives (shared with repro.store's record format)
# --------------------------------------------------------------------------- #
def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> "tuple[int, int]":
    """Read an unsigned LEB128 varint at ``offset``; return ``(value, next offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def graph_to_bytes(graph: PortLabeledGraph) -> bytes:
    """Compact, canonical binary encoding of a graph (name included).

    Layout: ``name length, name utf-8, n, m`` followed by ``m`` edges as
    ``(v, port_at_v, u, port_at_u)`` varint quadruples in the canonical
    ``v < u`` iteration order of :meth:`PortLabeledGraph.edges`.  Two equal
    labeled graphs with equal names encode to identical bytes.
    """
    out = bytearray()
    name = graph.name.encode("utf-8")
    write_uvarint(out, len(name))
    out.extend(name)
    write_uvarint(out, graph.num_nodes)
    write_uvarint(out, graph.num_edges)
    for v, pv, u, pu in graph.edges():
        write_uvarint(out, v)
        write_uvarint(out, pv)
        write_uvarint(out, u)
        write_uvarint(out, pu)
    return bytes(out)


def graph_from_bytes(
    payload: bytes, *, offset: int = 0, validate: bool = True
) -> "tuple[PortLabeledGraph, int]":
    """Inverse of :func:`graph_to_bytes`.

    Returns ``(graph, next offset)`` so callers embedding the encoding in a
    larger record (the artifact store) can keep parsing after it.  Pass
    ``validate=False`` only for trusted payloads (e.g. content-addressed
    store records, whose integrity the fingerprint certifies).
    """
    name_length, offset = read_uvarint(payload, offset)
    name = payload[offset : offset + name_length].decode("utf-8")
    offset += name_length
    num_nodes, offset = read_uvarint(payload, offset)
    num_edges, offset = read_uvarint(payload, offset)
    edges = []
    for _ in range(num_edges):
        v, offset = read_uvarint(payload, offset)
        pv, offset = read_uvarint(payload, offset)
        u, offset = read_uvarint(payload, offset)
        pu, offset = read_uvarint(payload, offset)
        edges.append((v, pv, u, pu))
    graph = PortLabeledGraph.from_edge_list(num_nodes, edges, name=name, validate=validate)
    return graph, offset


def graph_to_dict(graph: PortLabeledGraph) -> Dict[str, Any]:
    """A JSON-friendly dictionary representation of a graph."""
    return {
        "name": graph.name,
        "num_nodes": graph.num_nodes,
        "edges": [[v, pv, u, pu] for v, pv, u, pu in graph.edges()],
    }


def graph_from_dict(data: Dict[str, Any], *, validate: bool = True) -> PortLabeledGraph:
    """Inverse of :func:`graph_to_dict`."""
    return PortLabeledGraph.from_edge_list(
        data["num_nodes"],
        [tuple(edge) for edge in data["edges"]],
        name=data.get("name", ""),
        validate=validate,
    )


def graph_to_json(graph: PortLabeledGraph, *, indent: int | None = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(payload: str, *, validate: bool = True) -> PortLabeledGraph:
    """Parse a JSON string produced by :func:`graph_to_json`."""
    return graph_from_dict(json.loads(payload), validate=validate)


def graph_to_networkx(graph: PortLabeledGraph):
    """Convert to a ``networkx.Graph`` whose edges carry ``ports={node: port}`` attributes."""
    import networkx as nx

    g = nx.Graph(name=graph.name)
    g.add_nodes_from(graph.nodes())
    for v, pv, u, pu in graph.edges():
        g.add_edge(v, u, ports={v: pv, u: pu})
    return g


def graph_from_networkx(g, *, name: str = "", validate: bool = True) -> PortLabeledGraph:
    """Convert a networkx graph with ``ports`` edge attributes back to a port-labeled graph.

    Nodes may be arbitrary hashables; they are relabeled to ``0..n-1`` in
    sorted-by-insertion order.
    """
    nodes = list(g.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges: List[tuple] = []
    for u, v, data in g.edges(data=True):
        ports = data.get("ports")
        if ports is None:
            raise ValueError(f"edge ({u}, {v}) is missing a 'ports' attribute")
        edges.append((index[u], ports[u], index[v], ports[v]))
    return PortLabeledGraph.from_edge_list(
        len(nodes), edges, name=name or g.name if hasattr(g, "name") else name, validate=validate
    )


def graph_to_dot(graph: PortLabeledGraph, *, highlight: Dict[int, str] | None = None) -> str:
    """Graphviz DOT output with ports rendered as ``taillabel``/``headlabel``."""
    highlight = highlight or {}
    lines = ["graph G {", "  node [shape=circle];"]
    for v in graph.nodes():
        attrs = f' [style=filled, fillcolor="{highlight[v]}"]' if v in highlight else ""
        lines.append(f"  n{v}{attrs};")
    for v, pv, u, pu in graph.edges():
        lines.append(f'  n{v} -- n{u} [taillabel="{pv}", headlabel="{pu}"];')
    lines.append("}")
    return "\n".join(lines)
