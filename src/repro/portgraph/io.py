"""Serialization of port-labeled graphs.

Graphs round-trip through a plain ``dict`` (and JSON), convert to and from
``networkx`` multigraph-free graphs carrying port attributes, and export to
Graphviz DOT for eyeballing small instances.  The dict format is also the
payload of the "full map" advice used by the universal minimum-time
algorithms (:mod:`repro.advice.map_advice`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .graph import PortLabeledGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "graph_to_networkx",
    "graph_from_networkx",
    "graph_to_dot",
]


def graph_to_dict(graph: PortLabeledGraph) -> Dict[str, Any]:
    """A JSON-friendly dictionary representation of a graph."""
    return {
        "name": graph.name,
        "num_nodes": graph.num_nodes,
        "edges": [[v, pv, u, pu] for v, pv, u, pu in graph.edges()],
    }


def graph_from_dict(data: Dict[str, Any], *, validate: bool = True) -> PortLabeledGraph:
    """Inverse of :func:`graph_to_dict`."""
    return PortLabeledGraph.from_edge_list(
        data["num_nodes"],
        [tuple(edge) for edge in data["edges"]],
        name=data.get("name", ""),
        validate=validate,
    )


def graph_to_json(graph: PortLabeledGraph, *, indent: int | None = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(payload: str, *, validate: bool = True) -> PortLabeledGraph:
    """Parse a JSON string produced by :func:`graph_to_json`."""
    return graph_from_dict(json.loads(payload), validate=validate)


def graph_to_networkx(graph: PortLabeledGraph):
    """Convert to a ``networkx.Graph`` whose edges carry ``ports={node: port}`` attributes."""
    import networkx as nx

    g = nx.Graph(name=graph.name)
    g.add_nodes_from(graph.nodes())
    for v, pv, u, pu in graph.edges():
        g.add_edge(v, u, ports={v: pv, u: pu})
    return g


def graph_from_networkx(g, *, name: str = "", validate: bool = True) -> PortLabeledGraph:
    """Convert a networkx graph with ``ports`` edge attributes back to a port-labeled graph.

    Nodes may be arbitrary hashables; they are relabeled to ``0..n-1`` in
    sorted-by-insertion order.
    """
    nodes = list(g.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges: List[tuple] = []
    for u, v, data in g.edges(data=True):
        ports = data.get("ports")
        if ports is None:
            raise ValueError(f"edge ({u}, {v}) is missing a 'ports' attribute")
        edges.append((index[u], ports[u], index[v], ports[v]))
    return PortLabeledGraph.from_edge_list(
        len(nodes), edges, name=name or g.name if hasattr(g, "name") else name, validate=validate
    )


def graph_to_dot(graph: PortLabeledGraph, *, highlight: Dict[int, str] | None = None) -> str:
    """Graphviz DOT output with ports rendered as ``taillabel``/``headlabel``."""
    highlight = highlight or {}
    lines = ["graph G {", "  node [shape=circle];"]
    for v in graph.nodes():
        attrs = f' [style=filled, fillcolor="{highlight[v]}"]' if v in highlight else ""
        lines.append(f"  n{v}{attrs};")
    for v, pv, u, pu in graph.edges():
        lines.append(f'  n{v} -- n{u} [taillabel="{pv}", headlabel="{pu}"];')
    lines.append("}")
    return "\n".join(lines)
