"""Standard port-labeled graph generators.

These are the small, well-understood networks used throughout tests, the
examples and the benchmarks: paths, cycles (with symmetric or oriented port
labelings, which changes feasibility of leader election!), cliques, stars,
full µ-ary trees labeled the way Section 4.1 of the paper labels them, and a
seeded random connected graph generator for property-based testing.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .builder import GraphBuilder
from .graph import PortLabeledGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "rotational_complete_graph",
    "star_graph",
    "full_ary_tree",
    "two_node_graph",
    "three_node_line",
    "asymmetric_cycle",
    "hypercube_graph",
    "grid_graph",
    "complete_bipartite_graph",
    "caterpillar_graph",
    "random_connected_graph",
    "random_tree",
    "random_regular_graph",
    "erdos_renyi_graph",
    "circulant_graph",
    "torus_graph",
    "twisted_torus_graph",
    "de_bruijn_like_graph",
    "beacon_tail_graph",
]


def path_graph(n: int, *, name: str = "") -> PortLabeledGraph:
    """A path on ``n`` nodes.

    Interior nodes use port 0 towards the higher-numbered neighbour and port 1
    towards the lower-numbered one; endpoints use their only port 0.
    """
    if n < 1:
        raise ValueError("need at least one node")
    if n == 1:
        raise ValueError("a single isolated node is not a valid connected port-labeled graph "
                         "with edges; use two_node_graph() for the smallest example")
    builder = GraphBuilder(n, name=name or f"path-{n}")
    for v in range(n - 1):
        u = v + 1
        pv = 0
        pu = 0 if u == n - 1 else 1
        builder.add_edge(v, pv, u, pu)
    return builder.build()


def two_node_graph() -> PortLabeledGraph:
    """The two-node graph: the paper's canonical infeasible example."""
    builder = GraphBuilder(2, name="K2")
    builder.add_edge(0, 0, 1, 0)
    return builder.build()


def three_node_line(ports: Sequence[int] = (0, 0, 1, 0), *, name: str = "") -> PortLabeledGraph:
    """The 3-node line with given ports ``(p_left, p_mid_left, p_mid_right, p_right)``.

    With the default ports ``0, 0, 1, 0`` (left to right) this is the paper's
    example with ψ_CPPE = 1 (Section 1).
    """
    a, b, c, d = ports
    builder = GraphBuilder(3, name=name or "line-3")
    builder.add_edge(0, a, 1, b)
    builder.add_edge(1, c, 2, d)
    return builder.build()


def cycle_graph(n: int, *, oriented: bool = False, name: str = "") -> PortLabeledGraph:
    """A cycle on ``n >= 3`` nodes.

    With ``oriented=False`` ports alternate 0/1 in a rotation-symmetric way
    (every node uses port 0 clockwise and port 1 counter-clockwise), which
    makes every node's view identical -- leader election is infeasible.  The
    ``oriented=True`` labeling is the same thing (also symmetric); use
    :func:`asymmetric_cycle` for a feasible ring.
    """
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    builder = GraphBuilder(n, name=name or f"cycle-{n}")
    for v in range(n):
        u = (v + 1) % n
        builder.add_edge(v, 0, u, 1)
    return builder.build()


def asymmetric_cycle(n: int, *, name: str = "") -> PortLabeledGraph:
    """A cycle whose port labeling breaks all symmetry (feasible for election).

    Every node uses port 0 clockwise and port 1 counter-clockwise, except one
    distinguished node which uses port 1 clockwise and port 0
    counter-clockwise.  For ``n >= 4`` all views become distinct.
    """
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    builder = GraphBuilder(n, name=name or f"asym-cycle-{n}")
    for v in range(n):
        u = (v + 1) % n
        pv = 0 if v != 0 else 1
        pu = 1 if u != 0 else 0
        builder.add_edge(v, pv, u, pu)
    return builder.build()


def complete_graph(n: int, *, name: str = "") -> PortLabeledGraph:
    """The complete graph on ``n`` nodes with the canonical labeling.

    Node ``v`` assigns ports ``0..n-2`` to its neighbours in increasing order
    of handle (skipping itself).
    """
    if n < 2:
        raise ValueError("complete graph needs at least 2 nodes")
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]

    def port_at(v: int, u: int) -> int:
        return u if u < v else u - 1

    for v in range(n):
        for u in range(v + 1, n):
            adj[v][port_at(v, u)] = (u, port_at(u, v))
            adj[u][port_at(u, v)] = (v, port_at(v, u))
    return PortLabeledGraph(adj, name=name or f"K{n}")


def rotational_complete_graph(n: int, *, name: str = "") -> PortLabeledGraph:
    """The complete graph on ``n`` nodes with a rotation-symmetric port labeling.

    Node ``i`` labels the edge towards node ``(i + j + 1) mod n`` with port
    ``j``.  The rotation ``i -> i + 1`` is then a port-preserving
    automorphism, so all views coincide and leader election is infeasible --
    the natural "large clique" counterpart of the two-node example.
    """
    if n < 2:
        raise ValueError("complete graph needs at least 2 nodes")
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(n - 1):
            k = (i + j + 1) % n
            adj[i][j] = (k, (i - k - 1) % n)
    return PortLabeledGraph(adj, name=name or f"rotational-K{n}")


def star_graph(leaves: int, *, name: str = "") -> PortLabeledGraph:
    """A star with ``leaves`` degree-1 nodes around a centre (node 0)."""
    if leaves < 1:
        raise ValueError("need at least one leaf")
    builder = GraphBuilder(1 + leaves, name=name or f"star-{leaves}")
    for i in range(leaves):
        builder.add_edge(0, i, 1 + i, 0)
    return builder.build()


def full_ary_tree(arity: int, height: int, *, name: str = "") -> PortLabeledGraph:
    """The port-labeled full ``arity``-ary tree of the paper's Section 4.1.

    The root has degree ``arity`` with ports ``0..arity-1`` towards its
    children; every internal node has port ``arity`` towards its parent and
    ports ``0..arity-1`` towards its children; every leaf has port 0 towards
    its parent.  Node 0 is the root.
    """
    if arity < 1:
        raise ValueError("arity must be positive")
    if height < 0:
        raise ValueError("height must be non-negative")
    builder = GraphBuilder(1, name=name or f"T^{height}(mu={arity})")
    if height == 0:
        raise ValueError("a height-0 tree is a single node; not a valid connected graph here")
    frontier = [0]
    for level in range(height):
        next_frontier: List[int] = []
        for parent in frontier:
            for child_index in range(arity):
                child = builder.add_node()
                child_is_leaf = level == height - 1
                child_port = 0 if child_is_leaf else arity
                builder.add_edge(parent, child_index, child, child_port)
                next_frontier.append(child)
        frontier = next_frontier
    return builder.build()


def hypercube_graph(dimension: int, *, name: str = "") -> PortLabeledGraph:
    """The ``dimension``-dimensional hypercube with the natural port labeling.

    Every node labels the edge flipping bit ``i`` with port ``i``.  This
    labeling is preserved by every translation ``x -> x XOR c``, so the graph
    is vertex-transitive as a port-labeled graph: all views coincide and
    leader election is infeasible -- the classic "symmetric network" example
    beyond rings.
    """
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    n = 1 << dimension
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for v in range(n):
        for bit in range(dimension):
            adj[v][bit] = (v ^ (1 << bit), bit)
    return PortLabeledGraph(adj, name=name or f"hypercube-{dimension}")


def grid_graph(rows: int, cols: int, *, name: str = "") -> PortLabeledGraph:
    """A ``rows x cols`` grid; each node labels its ports in (up, down, left, right) order.

    Ports are compacted per node (border nodes have fewer neighbours), which
    breaks most symmetry: grids other than tiny squares are feasible.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least two nodes")
    builder = GraphBuilder(rows * cols, name=name or f"grid-{rows}x{cols}")

    def node(r: int, c: int) -> int:
        return r * cols + c

    def neighbours(r: int, c: int):
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < rows and 0 <= cc < cols:
                yield rr, cc

    port_of = {}
    for r in range(rows):
        for c in range(cols):
            for i, (rr, cc) in enumerate(neighbours(r, c)):
                port_of[(r, c, rr, cc)] = i
    for r in range(rows):
        for c in range(cols):
            for rr, cc in neighbours(r, c):
                if (rr, cc) > (r, c):
                    builder.add_edge(
                        node(r, c), port_of[(r, c, rr, cc)],
                        node(rr, cc), port_of[(rr, cc, r, c)],
                    )
    return builder.build()


def complete_bipartite_graph(left: int, right: int, *, name: str = "") -> PortLabeledGraph:
    """K_{left,right} with ports assigned in increasing order of the other side's handle."""
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one node")
    builder = GraphBuilder(left + right, name=name or f"K{left},{right}")
    for a in range(left):
        for b in range(right):
            builder.add_edge(a, b, left + b, a)
    return builder.build()


def caterpillar_graph(spine: int, legs: int, *, name: str = "") -> PortLabeledGraph:
    """A caterpillar: a path of ``spine`` nodes, each carrying ``legs`` pendant leaves.

    A convenient family of trees with many equal-view leaves at small depth,
    used in tests of view-class growth.
    """
    if spine < 2 or legs < 0:
        raise ValueError("need a spine of at least 2 nodes and a non-negative leg count")
    builder = GraphBuilder(spine, name=name or f"caterpillar-{spine}x{legs}")
    for v in range(spine - 1):
        u = v + 1
        pv = 0
        pu = 0 if u == spine - 1 else 1
        builder.add_edge(v, pv, u, pu)
    for v in range(spine):
        base = builder.degree(v)
        for leg in range(legs):
            leaf = builder.add_node()
            builder.add_edge(v, base + leg, leaf, 0)
    return builder.build()


def random_tree(n: int, *, seed: int = 0, name: str = "") -> PortLabeledGraph:
    """A random labeled tree on ``n`` nodes with ports assigned in attachment order."""
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    builder = GraphBuilder(n, name=name or f"random-tree-{n}-{seed}")
    degree = [0] * n
    for v in range(1, n):
        u = rng.randrange(v)
        builder.add_edge(v, degree[v], u, degree[u])
        degree[v] += 1
        degree[u] += 1
    return builder.build()


def random_connected_graph(
    n: int,
    extra_edges: int = 0,
    *,
    seed: int = 0,
    name: str = "",
) -> PortLabeledGraph:
    """A seeded random connected simple graph with a random port labeling.

    A random spanning tree guarantees connectivity; ``extra_edges`` additional
    distinct non-tree edges are then added (as many as fit).  Ports at each
    node are a random permutation of ``0..d-1``.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    edges = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        u = order[i]
        v = order[rng.randrange(i)]
        edges.add((min(u, v), max(u, v)))
    attempts = 0
    max_possible = n * (n - 1) // 2
    while len(edges) < min(max_possible, n - 1 + extra_edges) and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))

    incident: List[List[int]] = [[] for _ in range(n)]
    for u, v in sorted(edges):
        incident[u].append(v)
        incident[v].append(u)
    port_of: List[Dict[int, int]] = []
    for v in range(n):
        ports = list(range(len(incident[v])))
        rng.shuffle(ports)
        port_of.append({u: ports[i] for i, u in enumerate(incident[v])})

    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for u, v in edges:
        pu, pv = port_of[u][v], port_of[v][u]
        adj[u][pu] = (v, pv)
        adj[v][pv] = (u, pu)
    return PortLabeledGraph(adj, name=name or f"random-{n}-{seed}")


# --------------------------------------------------------------------------- #
# seeded scenario-corpus families (see repro.scenarios)
# --------------------------------------------------------------------------- #
def _edge_set_connected(n: int, edges: Set[Tuple[int, int]]) -> bool:
    """Whether the simple graph given by ``edges`` on ``0..n-1`` is connected."""
    neighbours: List[List[int]] = [[] for _ in range(n)]
    for u, v in edges:
        neighbours[u].append(v)
        neighbours[v].append(u)
    seen = [False] * n
    seen[0] = True
    stack = [0]
    while stack:
        x = stack.pop()
        for y in neighbours[x]:
            if not seen[y]:
                seen[y] = True
                stack.append(y)
    return all(seen)


def _randomly_ported(
    n: int, edges: Set[Tuple[int, int]], rng: random.Random, name: str
) -> PortLabeledGraph:
    """Freeze an edge set into a graph whose ports are a seeded permutation.

    Neighbours are enumerated in sorted edge order and each node draws a
    random permutation of ``0..d-1`` for its ports, so the labeling (like the
    edge set) is a deterministic function of the ``rng`` state.
    """
    incident: List[List[int]] = [[] for _ in range(n)]
    for u, v in sorted(edges):
        incident[u].append(v)
        incident[v].append(u)
    port_of: List[Dict[int, int]] = []
    for v in range(n):
        ports = list(range(len(incident[v])))
        rng.shuffle(ports)
        port_of.append({u: ports[i] for i, u in enumerate(incident[v])})
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for u, v in edges:
        pu, pv = port_of[u][v], port_of[v][u]
        adj[u][pu] = (v, pv)
        adj[v][pv] = (u, pu)
    return PortLabeledGraph(adj, name=name)


def random_regular_graph(
    n: int, degree: int = 3, *, seed: int = 0, name: str = ""
) -> PortLabeledGraph:
    """A seeded random ``degree``-regular simple connected graph on ``n`` nodes.

    Sampled by the pairing (configuration) model: stubs are shuffled and
    paired, and the attempt is rejected (deterministically retried) on
    self-loops, parallel edges or disconnectedness.  Ports at each node are a
    seeded random permutation of ``0..degree-1``, so the graph is a pure
    function of ``(n, degree, seed)``.
    """
    if n < 3:
        raise ValueError("need at least three nodes")
    if degree < 2 or degree >= n:
        raise ValueError("degree must be between 2 and n-1")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = random.Random(f"regular:{n}:{degree}:{seed}")
    for _attempt in range(500):
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges: Set[Tuple[int, int]] = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok and _edge_set_connected(n, edges):
            return _randomly_ported(n, edges, rng, name or f"regular-{n}-{degree}-{seed}")
    raise ValueError(
        f"could not sample a connected {degree}-regular simple graph on {n} nodes"
    )


def erdos_renyi_graph(
    n: int, p: Optional[float] = None, *, seed: int = 0, name: str = ""
) -> PortLabeledGraph:
    """A seeded *connected* Erdős–Rényi graph G(n, p) with random ports.

    ``p`` defaults to a value safely above the ``ln n / n`` connectivity
    threshold.  Samples are redrawn (deterministically) until connected, so
    the result is a pure function of ``(n, p, seed)``.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if p is None:
        p = min(1.0, 2.5 * math.log(max(n, 2)) / n)
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    rng = random.Random(f"gnp:{n}:{p!r}:{seed}")
    for _attempt in range(1000):
        edges = {
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < p
        }
        if edges and _edge_set_connected(n, edges):
            return _randomly_ported(n, edges, rng, name or f"gnp-{n}-{seed}")
    raise ValueError(f"G({n}, {p}) never came out connected; raise p")


def circulant_graph(
    n: int, steps: Sequence[int] = (1, 2), *, name: str = ""
) -> PortLabeledGraph:
    """The circulant graph C_n(steps) with a rotation-symmetric port labeling.

    Node ``i`` is adjacent to ``i ± s (mod n)`` for every step ``s``; the edge
    towards ``i + s`` carries port ``2t`` and the edge towards ``i - s`` port
    ``2t + 1`` (``t`` the index of ``s``), identically at every node.  The
    rotation ``i -> i + 1`` is then a port-preserving automorphism, so all
    views coincide: the whole family is infeasible for leader election -- a
    rich generalisation of the symmetric cycle.
    """
    if n < 3:
        raise ValueError("need at least three nodes")
    step_list = tuple(sorted({int(s) for s in steps}))
    if not step_list or step_list[0] < 1 or step_list[-1] > n // 2:
        raise ValueError(f"steps must be distinct integers in 1..{n // 2}")
    divisor = n
    for s in step_list:
        divisor = math.gcd(divisor, s)
    if divisor != 1:
        raise ValueError(f"C_{n}({step_list}) is disconnected (gcd {divisor})")
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for t, s in enumerate(step_list):
        if 2 * s == n:
            # antipodal chord: one edge, labeled 2t at both endpoints
            for i in range(s):
                adj[i][2 * t] = (i + s, 2 * t)
                adj[i + s][2 * t] = (i, 2 * t)
        else:
            for i in range(n):
                j = (i + s) % n
                adj[i][2 * t] = (j, 2 * t + 1)
                adj[j][2 * t + 1] = (i, 2 * t)
    label = ",".join(str(s) for s in step_list)
    return PortLabeledGraph(adj, name=name or f"circulant-{n}({label})")


def torus_graph(rows: int, cols: int, *, name: str = "") -> PortLabeledGraph:
    """The ``rows x cols`` torus (wrap-around grid), ports (up, down, left, right).

    Every node uses port 0 up, 1 down, 2 left, 3 right, so all translations
    are port-preserving automorphisms: the torus is vertex-transitive as a
    port-labeled graph and leader election is infeasible.
    """
    return _torus(rows, cols, 0, name or f"torus-{rows}x{cols}")


def twisted_torus_graph(
    rows: int, cols: int, twist: int = 1, *, name: str = ""
) -> PortLabeledGraph:
    """A torus whose horizontal wrap-around shifts by ``twist`` rows.

    The edge leaving column ``cols - 1`` to the right re-enters column 0
    ``twist`` rows down, turning the ``cols``-cycles of rightward edges into
    longer helical cycles.  All translations remain port-preserving
    automorphisms, so every view still coincides (infeasible, like the plain
    torus) -- which makes the pair a deliberate stressor: a twisted torus
    and the same-size plain torus are *different* graphs with *identical*
    refinement fingerprints, exactly the collision the cache buckets and the
    store resolve by exact labeled equality.
    """
    return _torus(rows, cols, twist % rows, name or f"twisted-torus-{rows}x{cols}+{twist % rows}")


def _torus(rows: int, cols: int, twist: int, name: str) -> PortLabeledGraph:
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows >= 3 and cols >= 3 (smaller wraps double edges)")
    up, down, left, right = 0, 1, 2, 3

    def node(r: int, c: int) -> int:
        return r * cols + c

    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(rows * cols)]
    for r in range(rows):
        for c in range(cols):
            v = node(r, c)
            adj[v][down] = (node((r + 1) % rows, c), up)
            adj[node((r + 1) % rows, c)][up] = (v, down)
            if c + 1 < cols:
                u = node(r, c + 1)
            else:
                u = node((r + twist) % rows, 0)
            adj[v][right] = (u, left)
            adj[u][left] = (v, right)
    return PortLabeledGraph(adj, name=name)


def de_bruijn_like_graph(
    dimension: int, base: int = 2, *, name: str = ""
) -> PortLabeledGraph:
    """The simple undirected graph underlying the de Bruijn graph B(base, dimension).

    Nodes are ``0 .. base**dimension - 1``; ``u`` and ``v`` are adjacent when
    one is a shift-and-append successor of the other (``v = u*base + c mod
    n``), with self-loops dropped and parallel arcs collapsed.  Ports are
    assigned in increasing neighbour order.  The collapsed self-loops and
    two-cycles make the degrees uneven, so unlike the hypercube this
    port-labeled family is asymmetric (and typically feasible).
    """
    if base < 2:
        raise ValueError("base must be at least 2")
    if dimension < 2:
        raise ValueError("dimension must be at least 2")
    n = base ** dimension
    neighbour_sets: List[Set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for c in range(base):
            v = (u * base + c) % n
            if v != u:
                neighbour_sets[u].add(v)
                neighbour_sets[v].add(u)
    port_of: List[Dict[int, int]] = [
        {u: i for i, u in enumerate(sorted(neighbour_sets[v]))} for v in range(n)
    ]
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for u in range(n):
        for v in neighbour_sets[u]:
            adj[u][port_of[u][v]] = (v, port_of[v][u])
    return PortLabeledGraph(adj, name=name or f"debruijn-{base}^{dimension}")


def beacon_tail_graph(
    blob: int, tail: int, *, degree: int = 3, seed: int = 0, name: str = ""
) -> PortLabeledGraph:
    """A random-regular *beacon* dragging a long path *tail* behind it.

    The beacon (``blob`` nodes, :func:`random_regular_graph`) is locally
    asymmetric, so colour refinement discretises it within O(log blob)
    rounds; the path tail (``tail`` nodes hung off beacon node 0) keeps the
    global fixpoint ``Theta(tail)`` rounds away, each round splitting one
    more node off the tail's shrinking middle class.  That combination makes
    the family the showcase for delta replay: a full recompute pays
    ``Theta(tail)`` refinement passes (cheap individually -- the worklist
    pass is O(splits) -- but each materialises a fresh colour table), while
    an edit inside the beacon re-conforms to the warm base partition as soon
    as the beacon discretises and fast-forwards every remaining round by
    aliasing the base tables.

    Tail node ``i`` (handles ``blob .. blob+tail-1``) uses port 0 towards
    the beacon and port 1 away; the attachment takes beacon node 0's next
    free port.  Pure function of ``(blob, tail, degree, seed)``.
    """
    if tail < 2:
        raise ValueError("need a tail of at least two nodes")
    core = random_regular_graph(blob, degree, seed=seed)
    adj: List[List[Tuple[int, int]]] = [list(core.adjacency(v)) for v in core.nodes()]
    adj[0].append((blob, 0))
    adj.append([(0, degree), (blob + 1, 0)])
    for i in range(1, tail - 1):
        adj.append([(blob + i - 1, 1), (blob + i + 1, 0)])
    adj.append([(blob + tail - 2, 1)])
    return PortLabeledGraph(
        adj, name=name or f"beacon-{blob}-{degree}-{seed}+tail-{tail}"
    )
