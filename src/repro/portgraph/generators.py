"""Standard port-labeled graph generators.

These are the small, well-understood networks used throughout tests, the
examples and the benchmarks: paths, cycles (with symmetric or oriented port
labelings, which changes feasibility of leader election!), cliques, stars,
full µ-ary trees labeled the way Section 4.1 of the paper labels them, and a
seeded random connected graph generator for property-based testing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .builder import GraphBuilder
from .graph import PortLabeledGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "rotational_complete_graph",
    "star_graph",
    "full_ary_tree",
    "two_node_graph",
    "three_node_line",
    "asymmetric_cycle",
    "hypercube_graph",
    "grid_graph",
    "complete_bipartite_graph",
    "caterpillar_graph",
    "random_connected_graph",
    "random_tree",
]


def path_graph(n: int, *, name: str = "") -> PortLabeledGraph:
    """A path on ``n`` nodes.

    Interior nodes use port 0 towards the higher-numbered neighbour and port 1
    towards the lower-numbered one; endpoints use their only port 0.
    """
    if n < 1:
        raise ValueError("need at least one node")
    if n == 1:
        raise ValueError("a single isolated node is not a valid connected port-labeled graph "
                         "with edges; use two_node_graph() for the smallest example")
    builder = GraphBuilder(n, name=name or f"path-{n}")
    for v in range(n - 1):
        u = v + 1
        pv = 0
        pu = 0 if u == n - 1 else 1
        builder.add_edge(v, pv, u, pu)
    return builder.build()


def two_node_graph() -> PortLabeledGraph:
    """The two-node graph: the paper's canonical infeasible example."""
    builder = GraphBuilder(2, name="K2")
    builder.add_edge(0, 0, 1, 0)
    return builder.build()


def three_node_line(ports: Sequence[int] = (0, 0, 1, 0), *, name: str = "") -> PortLabeledGraph:
    """The 3-node line with given ports ``(p_left, p_mid_left, p_mid_right, p_right)``.

    With the default ports ``0, 0, 1, 0`` (left to right) this is the paper's
    example with ψ_CPPE = 1 (Section 1).
    """
    a, b, c, d = ports
    builder = GraphBuilder(3, name=name or "line-3")
    builder.add_edge(0, a, 1, b)
    builder.add_edge(1, c, 2, d)
    return builder.build()


def cycle_graph(n: int, *, oriented: bool = False, name: str = "") -> PortLabeledGraph:
    """A cycle on ``n >= 3`` nodes.

    With ``oriented=False`` ports alternate 0/1 in a rotation-symmetric way
    (every node uses port 0 clockwise and port 1 counter-clockwise), which
    makes every node's view identical -- leader election is infeasible.  The
    ``oriented=True`` labeling is the same thing (also symmetric); use
    :func:`asymmetric_cycle` for a feasible ring.
    """
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    builder = GraphBuilder(n, name=name or f"cycle-{n}")
    for v in range(n):
        u = (v + 1) % n
        builder.add_edge(v, 0, u, 1)
    return builder.build()


def asymmetric_cycle(n: int, *, name: str = "") -> PortLabeledGraph:
    """A cycle whose port labeling breaks all symmetry (feasible for election).

    Every node uses port 0 clockwise and port 1 counter-clockwise, except one
    distinguished node which uses port 1 clockwise and port 0
    counter-clockwise.  For ``n >= 4`` all views become distinct.
    """
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    builder = GraphBuilder(n, name=name or f"asym-cycle-{n}")
    for v in range(n):
        u = (v + 1) % n
        pv = 0 if v != 0 else 1
        pu = 1 if u != 0 else 0
        builder.add_edge(v, pv, u, pu)
    return builder.build()


def complete_graph(n: int, *, name: str = "") -> PortLabeledGraph:
    """The complete graph on ``n`` nodes with the canonical labeling.

    Node ``v`` assigns ports ``0..n-2`` to its neighbours in increasing order
    of handle (skipping itself).
    """
    if n < 2:
        raise ValueError("complete graph needs at least 2 nodes")
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]

    def port_at(v: int, u: int) -> int:
        return u if u < v else u - 1

    for v in range(n):
        for u in range(v + 1, n):
            adj[v][port_at(v, u)] = (u, port_at(u, v))
            adj[u][port_at(u, v)] = (v, port_at(v, u))
    return PortLabeledGraph(adj, name=name or f"K{n}")


def rotational_complete_graph(n: int, *, name: str = "") -> PortLabeledGraph:
    """The complete graph on ``n`` nodes with a rotation-symmetric port labeling.

    Node ``i`` labels the edge towards node ``(i + j + 1) mod n`` with port
    ``j``.  The rotation ``i -> i + 1`` is then a port-preserving
    automorphism, so all views coincide and leader election is infeasible --
    the natural "large clique" counterpart of the two-node example.
    """
    if n < 2:
        raise ValueError("complete graph needs at least 2 nodes")
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(n - 1):
            k = (i + j + 1) % n
            adj[i][j] = (k, (i - k - 1) % n)
    return PortLabeledGraph(adj, name=name or f"rotational-K{n}")


def star_graph(leaves: int, *, name: str = "") -> PortLabeledGraph:
    """A star with ``leaves`` degree-1 nodes around a centre (node 0)."""
    if leaves < 1:
        raise ValueError("need at least one leaf")
    builder = GraphBuilder(1 + leaves, name=name or f"star-{leaves}")
    for i in range(leaves):
        builder.add_edge(0, i, 1 + i, 0)
    return builder.build()


def full_ary_tree(arity: int, height: int, *, name: str = "") -> PortLabeledGraph:
    """The port-labeled full ``arity``-ary tree of the paper's Section 4.1.

    The root has degree ``arity`` with ports ``0..arity-1`` towards its
    children; every internal node has port ``arity`` towards its parent and
    ports ``0..arity-1`` towards its children; every leaf has port 0 towards
    its parent.  Node 0 is the root.
    """
    if arity < 1:
        raise ValueError("arity must be positive")
    if height < 0:
        raise ValueError("height must be non-negative")
    builder = GraphBuilder(1, name=name or f"T^{height}(mu={arity})")
    if height == 0:
        raise ValueError("a height-0 tree is a single node; not a valid connected graph here")
    frontier = [0]
    for level in range(height):
        next_frontier: List[int] = []
        for parent in frontier:
            for child_index in range(arity):
                child = builder.add_node()
                child_is_leaf = level == height - 1
                child_port = 0 if child_is_leaf else arity
                builder.add_edge(parent, child_index, child, child_port)
                next_frontier.append(child)
        frontier = next_frontier
    return builder.build()


def hypercube_graph(dimension: int, *, name: str = "") -> PortLabeledGraph:
    """The ``dimension``-dimensional hypercube with the natural port labeling.

    Every node labels the edge flipping bit ``i`` with port ``i``.  This
    labeling is preserved by every translation ``x -> x XOR c``, so the graph
    is vertex-transitive as a port-labeled graph: all views coincide and
    leader election is infeasible -- the classic "symmetric network" example
    beyond rings.
    """
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    n = 1 << dimension
    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for v in range(n):
        for bit in range(dimension):
            adj[v][bit] = (v ^ (1 << bit), bit)
    return PortLabeledGraph(adj, name=name or f"hypercube-{dimension}")


def grid_graph(rows: int, cols: int, *, name: str = "") -> PortLabeledGraph:
    """A ``rows x cols`` grid; each node labels its ports in (up, down, left, right) order.

    Ports are compacted per node (border nodes have fewer neighbours), which
    breaks most symmetry: grids other than tiny squares are feasible.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least two nodes")
    builder = GraphBuilder(rows * cols, name=name or f"grid-{rows}x{cols}")

    def node(r: int, c: int) -> int:
        return r * cols + c

    def neighbours(r: int, c: int):
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < rows and 0 <= cc < cols:
                yield rr, cc

    port_of = {}
    for r in range(rows):
        for c in range(cols):
            for i, (rr, cc) in enumerate(neighbours(r, c)):
                port_of[(r, c, rr, cc)] = i
    for r in range(rows):
        for c in range(cols):
            for rr, cc in neighbours(r, c):
                if (rr, cc) > (r, c):
                    builder.add_edge(
                        node(r, c), port_of[(r, c, rr, cc)],
                        node(rr, cc), port_of[(rr, cc, r, c)],
                    )
    return builder.build()


def complete_bipartite_graph(left: int, right: int, *, name: str = "") -> PortLabeledGraph:
    """K_{left,right} with ports assigned in increasing order of the other side's handle."""
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one node")
    builder = GraphBuilder(left + right, name=name or f"K{left},{right}")
    for a in range(left):
        for b in range(right):
            builder.add_edge(a, b, left + b, a)
    return builder.build()


def caterpillar_graph(spine: int, legs: int, *, name: str = "") -> PortLabeledGraph:
    """A caterpillar: a path of ``spine`` nodes, each carrying ``legs`` pendant leaves.

    A convenient family of trees with many equal-view leaves at small depth,
    used in tests of view-class growth.
    """
    if spine < 2 or legs < 0:
        raise ValueError("need a spine of at least 2 nodes and a non-negative leg count")
    builder = GraphBuilder(spine, name=name or f"caterpillar-{spine}x{legs}")
    for v in range(spine - 1):
        u = v + 1
        pv = 0
        pu = 0 if u == spine - 1 else 1
        builder.add_edge(v, pv, u, pu)
    for v in range(spine):
        base = builder.degree(v)
        for leg in range(legs):
            leaf = builder.add_node()
            builder.add_edge(v, base + leg, leaf, 0)
    return builder.build()


def random_tree(n: int, *, seed: int = 0, name: str = "") -> PortLabeledGraph:
    """A random labeled tree on ``n`` nodes with ports assigned in attachment order."""
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    builder = GraphBuilder(n, name=name or f"random-tree-{n}-{seed}")
    degree = [0] * n
    for v in range(1, n):
        u = rng.randrange(v)
        builder.add_edge(v, degree[v], u, degree[u])
        degree[v] += 1
        degree[u] += 1
    return builder.build()


def random_connected_graph(
    n: int,
    extra_edges: int = 0,
    *,
    seed: int = 0,
    name: str = "",
) -> PortLabeledGraph:
    """A seeded random connected simple graph with a random port labeling.

    A random spanning tree guarantees connectivity; ``extra_edges`` additional
    distinct non-tree edges are then added (as many as fit).  Ports at each
    node are a random permutation of ``0..d-1``.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    edges = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        u = order[i]
        v = order[rng.randrange(i)]
        edges.add((min(u, v), max(u, v)))
    attempts = 0
    max_possible = n * (n - 1) // 2
    while len(edges) < min(max_possible, n - 1 + extra_edges) and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))

    incident: List[List[int]] = [[] for _ in range(n)]
    for u, v in sorted(edges):
        incident[u].append(v)
        incident[v].append(u)
    port_of: List[Dict[int, int]] = []
    for v in range(n):
        ports = list(range(len(incident[v])))
        rng.shuffle(ports)
        port_of.append({u: ports[i] for i, u in enumerate(incident[v])})

    adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
    for u, v in edges:
        pu, pv = port_of[u][v], port_of[v][u]
        adj[u][pu] = (v, pv)
        adj[v][pv] = (u, pu)
    return PortLabeledGraph(adj, name=name or f"random-{n}-{seed}")
