"""Path and port-sequence utilities on port-labeled graphs.

The strong formulations of leader election (PE / PPE / CPPE, Section 1 of the
paper) are defined in terms of *simple paths described by port numbers*:

* **PE** -- every non-leader outputs the first port of a simple path to the
  leader;
* **PPE** -- every non-leader outputs the sequence of *outgoing* ports
  ``(p1, ..., pk)`` of a simple path to the leader;
* **CPPE** -- every non-leader outputs the alternating sequence
  ``(p1, q1, ..., pk, qk)`` of outgoing and incoming ports of a simple path
  to the leader.

This module provides the machinery to follow such sequences, to check their
simplicity, to produce them from shortest paths, and to answer the question
"is port ``p`` at ``v`` the first port of *some* simple path from ``v`` to
``u``?" which is the correctness condition for PE outputs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import PortLabeledGraph

__all__ = [
    "follow_ports",
    "follow_port_pairs",
    "is_simple_node_sequence",
    "bfs_distances",
    "bfs_tree",
    "shortest_path",
    "shortest_path_via_port",
    "distance",
    "eccentricity",
    "diameter",
    "outgoing_ports_of_path",
    "complete_ports_of_path",
    "path_from_outgoing_ports",
    "path_from_complete_ports",
    "first_ports_of_simple_paths",
    "is_first_port_of_simple_path",
    "reachable_without",
]


# --------------------------------------------------------------------------- #
# following port sequences
# --------------------------------------------------------------------------- #
def follow_ports(
    graph: PortLabeledGraph, start: int, ports: Sequence[int]
) -> Optional[List[int]]:
    """Follow a sequence of outgoing ports from ``start``.

    Returns the visited node sequence ``[start, v1, ..., vk]`` or ``None`` if
    some port does not exist at the current node.
    """
    path = [start]
    current = start
    for p in ports:
        if p < 0 or p >= graph.degree(current):
            return None
        current = graph.neighbor(current, p)
        path.append(current)
    return path


def follow_port_pairs(
    graph: PortLabeledGraph, start: int, pairs: Sequence[Tuple[int, int]]
) -> Optional[List[int]]:
    """Follow a CPPE-style sequence of ``(outgoing, incoming)`` port pairs.

    Returns the visited node sequence, or ``None`` if an outgoing port does
    not exist or an incoming port does not match the traversed edge.
    """
    path = [start]
    current = start
    for p, q in pairs:
        if p < 0 or p >= graph.degree(current):
            return None
        nxt, back = graph.endpoint(current, p)
        if back != q:
            return None
        current = nxt
        path.append(current)
    return path


def is_simple_node_sequence(nodes: Sequence[int]) -> bool:
    """Whether a node sequence visits pairwise-distinct nodes."""
    return len(set(nodes)) == len(nodes)


# --------------------------------------------------------------------------- #
# shortest paths
# --------------------------------------------------------------------------- #
def bfs_distances(graph: PortLabeledGraph, source: int) -> List[int]:
    """Distances from ``source`` to every node (-1 if unreachable)."""
    dist = [-1] * graph.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def bfs_tree(graph: PortLabeledGraph, source: int) -> List[int]:
    """BFS parent array rooted at ``source`` (-1 for the source / unreachable).

    Among equidistant parents, the one reached through the smallest port at
    the parent wins, which makes the tree deterministic.
    """
    parent = [-1] * graph.num_nodes
    seen = [False] * graph.num_nodes
    seen[source] = True
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for p in graph.ports(v):
            u = graph.neighbor(v, p)
            if not seen[u]:
                seen[u] = True
                parent[u] = v
                queue.append(u)
    return parent


def shortest_path(graph: PortLabeledGraph, source: int, target: int) -> Optional[List[int]]:
    """A shortest path from ``source`` to ``target`` as a node list (or ``None``)."""
    if source == target:
        return [source]
    parent = [-2] * graph.num_nodes
    parent[source] = -1
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for p in graph.ports(v):
            u = graph.neighbor(v, p)
            if parent[u] == -2:
                parent[u] = v
                if u == target:
                    path = [u]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(u)
    return None


def shortest_path_via_port(
    graph: PortLabeledGraph, source: int, first_port: int, target: int
) -> Optional[List[int]]:
    """A shortest *simple* path from ``source`` to ``target`` whose first edge uses ``first_port``.

    Returns ``None`` if no simple path starts with that edge.  (A path through
    a fixed first neighbour ``w`` exists iff ``w == target`` or ``target`` is
    reachable from ``w`` in the graph minus ``source``.)
    """
    w = graph.neighbor(source, first_port)
    if w == target:
        return [source, target]
    sub = shortest_path_avoiding(graph, w, target, forbidden=source)
    if sub is None:
        return None
    return [source] + sub


def shortest_path_avoiding(
    graph: PortLabeledGraph, source: int, target: int, *, forbidden: int
) -> Optional[List[int]]:
    """Shortest path from ``source`` to ``target`` avoiding node ``forbidden``."""
    if source == forbidden or target == forbidden:
        return None
    if source == target:
        return [source]
    parent = [-2] * graph.num_nodes
    parent[source] = -1
    parent[forbidden] = -3
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if parent[u] == -2:
                parent[u] = v
                if u == target:
                    path = [u]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(u)
    return None


def distance(graph: PortLabeledGraph, source: int, target: int) -> int:
    """Hop distance between two nodes (-1 if disconnected)."""
    path = shortest_path(graph, source, target)
    return -1 if path is None else len(path) - 1


def eccentricity(graph: PortLabeledGraph, source: int) -> int:
    """Largest distance from ``source`` to any node."""
    return max(bfs_distances(graph, source))


def diameter(graph: PortLabeledGraph) -> int:
    """Graph diameter (exact; O(n·m))."""
    return max(eccentricity(graph, v) for v in graph.nodes())


# --------------------------------------------------------------------------- #
# converting node paths <-> port sequences
# --------------------------------------------------------------------------- #
def outgoing_ports_of_path(graph: PortLabeledGraph, nodes: Sequence[int]) -> Tuple[int, ...]:
    """The PPE-style outgoing port sequence of a node path."""
    ports = []
    for v, u in zip(nodes, nodes[1:]):
        ports.append(graph.port_to(v, u))
    return tuple(ports)


def complete_ports_of_path(graph: PortLabeledGraph, nodes: Sequence[int]) -> Tuple[int, ...]:
    """The CPPE-style alternating ``(p1, q1, ..., pk, qk)`` sequence of a node path."""
    seq: List[int] = []
    for v, u in zip(nodes, nodes[1:]):
        p, q = graph.edge_ports(v, u)
        seq.extend((p, q))
    return tuple(seq)


def path_from_outgoing_ports(
    graph: PortLabeledGraph, start: int, ports: Sequence[int]
) -> Optional[List[int]]:
    """Alias of :func:`follow_ports` (kept for symmetry with the CPPE variant)."""
    return follow_ports(graph, start, ports)


def path_from_complete_ports(
    graph: PortLabeledGraph, start: int, sequence: Sequence[int]
) -> Optional[List[int]]:
    """Follow a flat CPPE sequence ``(p1, q1, ..., pk, qk)`` from ``start``."""
    if len(sequence) % 2 != 0:
        return None
    pairs = [(sequence[i], sequence[i + 1]) for i in range(0, len(sequence), 2)]
    return follow_port_pairs(graph, start, pairs)


# --------------------------------------------------------------------------- #
# PE correctness machinery
# --------------------------------------------------------------------------- #
def reachable_without(graph: PortLabeledGraph, start: int, forbidden: int) -> List[bool]:
    """Reachability from ``start`` in the graph with node ``forbidden`` removed."""
    reach = [False] * graph.num_nodes
    if start == forbidden:
        return reach
    reach[start] = True
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u != forbidden and not reach[u]:
                reach[u] = True
                queue.append(u)
    return reach


def is_first_port_of_simple_path(
    graph: PortLabeledGraph, v: int, port: int, target: int
) -> bool:
    """Whether ``port`` at ``v`` is the first port of some simple path from ``v`` to ``target``.

    This is the PE output-correctness condition.  It holds iff the neighbour
    ``w`` reached via ``port`` equals ``target``, or ``target`` is reachable
    from ``w`` without going back through ``v``.
    """
    if v == target:
        return False
    if port < 0 or port >= graph.degree(v):
        return False
    w = graph.neighbor(v, port)
    if w == target:
        return True
    return reachable_without(graph, w, v)[target]


def first_ports_of_simple_paths(
    graph: PortLabeledGraph, v: int, target: int
) -> List[int]:
    """All ports at ``v`` that start a simple path from ``v`` to ``target``."""
    return [p for p in graph.ports(v) if is_first_port_of_simple_path(graph, v, p, target)]
