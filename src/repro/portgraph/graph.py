"""The immutable port-labeled graph used throughout the reproduction.

A :class:`PortLabeledGraph` models the paper's network: a simple, undirected,
connected graph on nodes ``0..n-1`` (the integers are *our* handles for
bookkeeping -- the nodes themselves are anonymous and distributed algorithms
in :mod:`repro.sim` never see them) where each node of degree ``d`` labels
its incident edges with distinct ports ``0..d-1``.

The canonical internal representation is a tuple (per node) of tuples (per
port) of ``(neighbour, neighbour_port)`` pairs, so ``graph.endpoint(v, p)``
is an O(1) lookup.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .validation import PortLabelingError, validate_adjacency

__all__ = ["PortLabeledGraph"]

Endpoint = Tuple[int, int]

#: Cap on the refinement depth (passes *and* per-class label-chain rounds)
#: folded into :meth:`PortLabeledGraph.fingerprint`.  The digest normally
#: stops one round past the refinement fixpoint; on adversarially
#: slow-stabilising graphs (long quasi-symmetric cycles, where the fixpoint
#: takes ~n/2 passes) the cap bounds both the time and the per-depth colour
#: arrays the memoised engine retains, at the cost of the fingerprint seeing
#: "only" 64 rounds -- still far beyond the old fixed 3.
_FINGERPRINT_LABEL_ROUNDS = 64


class PortLabeledGraph:
    """An immutable, simple, port-labeled graph.

    Parameters
    ----------
    adjacency:
        Sequence over nodes; entry ``v`` maps ports to
        ``(neighbour, neighbour_port)`` pairs (either as a mapping or as a
        sequence indexed by port).
    name:
        Optional human-readable name (used in reprs and experiment tables).
    validate:
        Validate the model invariants (contiguous ports, reciprocity,
        simplicity, connectivity).  Families that were just validated by
        their builder pass ``validate=False`` to avoid re-validating huge
        graphs twice.
    """

    __slots__ = (
        "_adj",
        "_num_edges",
        "_name",
        "_max_degree",
        "_fingerprint",
        "_cache_key",
        "_csr",
        "_engine",
    )

    def __init__(self, adjacency: Sequence, *, name: str = "", validate: bool = True) -> None:
        if validate:
            validate_adjacency(adjacency, require_contiguous_ports=True, require_connected=True)
        adj: List[Tuple[Endpoint, ...]] = []
        for entry in adjacency:
            if type(entry) is tuple and all(type(pair) is tuple for pair in entry):
                # already-canonical row (e.g. shared from another graph's
                # adjacency by the copy-on-write delta path): adopt as-is
                row = entry
            elif isinstance(entry, Mapping):
                degree = len(entry)
                row = tuple(tuple(entry[p]) for p in range(degree))
            else:
                row = tuple(tuple(pair) for pair in entry)
            adj.append(row)
        self._adj: Tuple[Tuple[Endpoint, ...], ...] = tuple(adj)
        self._num_edges = sum(len(row) for row in self._adj) // 2
        self._name = name
        self._max_degree = max((len(row) for row in self._adj), default=0)
        self._fingerprint: Optional[str] = None
        self._cache_key: Optional[str] = None
        self._csr = None
        self._engine = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable name of the graph."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges ``m``."""
        return self._num_edges

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ of the graph."""
        return self._max_degree

    @property
    def min_degree(self) -> int:
        """Minimum degree of the graph."""
        return min((len(row) for row in self._adj), default=0)

    def nodes(self) -> range:
        """Iterate over node handles ``0..n-1``."""
        return range(len(self._adj))

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self._adj[v])

    def degree_sequence(self) -> Tuple[int, ...]:
        """Degrees of all nodes, indexed by node handle."""
        return tuple(len(row) for row in self._adj)

    def endpoint(self, v: int, port: int) -> Endpoint:
        """Return ``(u, q)``: the neighbour reached from ``v`` via ``port`` and the port back."""
        return self._adj[v][port]

    def neighbor(self, v: int, port: int) -> int:
        """The neighbour reached from ``v`` by taking ``port``."""
        return self._adj[v][port][0]

    def ports(self, v: int) -> range:
        """The ports available at node ``v`` (always ``0..deg(v)-1``)."""
        return range(len(self._adj[v]))

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbours of ``v`` in port order."""
        return tuple(pair[0] for pair in self._adj[v])

    def port_to(self, v: int, u: int) -> int:
        """The port at ``v`` whose edge leads to ``u``.

        Raises ``KeyError`` if ``u`` is not a neighbour of ``v``.
        """
        for port, (w, _q) in enumerate(self._adj[v]):
            if w == u:
                return port
        raise KeyError(f"{u} is not a neighbour of {v}")

    def has_edge(self, v: int, u: int) -> bool:
        """Whether ``{v, u}`` is an edge."""
        return any(w == u for w, _q in self._adj[v])

    def edge_ports(self, v: int, u: int) -> Tuple[int, int]:
        """The pair ``(port at v, port at u)`` of the edge ``{v, u}``."""
        p = self.port_to(v, u)
        return p, self._adj[v][p][1]

    def adjacency(self, v: int) -> Tuple[Endpoint, ...]:
        """The full port table of ``v`` (tuple indexed by port)."""
        return self._adj[v]

    def edges(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate over edges as ``(v, port_at_v, u, port_at_u)`` with ``v < u``."""
        for v, row in enumerate(self._adj):
            for p, (u, q) in enumerate(row):
                if v < u:
                    yield v, p, u, q

    def csr(self):
        """The flat-array (CSR) view of the graph, built lazily and memoised.

        Returns a :class:`repro.kernel.csr.CSRGraph`: four int arrays
        (``offsets`` / ``neighbors`` / ``ports`` / ``reverse_ports``) that the
        compute kernel (refinement, block-cut tree, BFS, message routing)
        walks instead of the tuple-of-tuples port tables.  The view is
        immutable and shared by every consumer of this graph instance.
        """
        if self._csr is None:
            from ..kernel.csr import build_csr  # lazy: keeps graph construction import-light

            self._csr = build_csr(self)
        return self._csr

    def refinement_engine(self):
        """The graph's partition-refinement engine, memoised.

        Returns the engine shared by every consumer of this instance:
        :meth:`fingerprint` (which refines to the fixpoint),
        :class:`repro.views.refinement.ViewRefinement` (the query facade) and
        the runner's cache, so the graph is refined at most once per instance
        no matter who asks first.  Built by
        :func:`repro.kernel.refine.make_refinement`, which picks the
        incremental python engine or its byte-identical vectorised numpy twin
        per the active kernel backend; the binding is per instance.
        """
        if self._engine is None:
            from ..kernel.refine import make_refinement  # lazy, as in csr()

            self._engine = make_refinement(self.csr())
        return self._engine

    def adopt_fingerprint(self, fingerprint: str) -> None:
        """Install a precomputed :meth:`fingerprint` value without refining.

        Used by the artifact store when restoring a graph whose fingerprint
        is already certified by its content address: seeding it here means a
        cold process never pays the refine-to-fixpoint cost just to *name*
        a graph it is about to warm-start anyway.  Refuses to overwrite a
        fingerprint that was already computed (or adopted) differently.
        """
        if self._fingerprint is not None and self._fingerprint != fingerprint:
            raise ValueError("adopted fingerprint contradicts the computed one")
        self._fingerprint = fingerprint

    def adopt_csr(self, csr) -> bool:
        """Install a prebuilt CSR view instead of deriving one lazily.

        Used by the artifact store when decoding a record that carries the
        flat arrays; a no-op (returning ``False``) if this instance already
        built its own view.  The caller guarantees the arrays describe this
        exact adjacency -- for store records the content address does.
        """
        if self._csr is not None:
            return False
        self._csr = csr
        return True

    def adopt_refinement_tables(self, tables: Sequence[Sequence[int]], stable_depth: int) -> bool:
        """Install precomputed view-refinement partitions without refining.

        ``tables`` are the canonical per-depth colour tables (depth 0 up to
        at least ``stable_depth``) exactly as
        :meth:`repro.views.refinement.ViewRefinement.colors` would return
        them; ``stable_depth`` is the refinement fixpoint.  On success the
        graph's memoised :meth:`refinement_engine` serves every depth query
        from the installed tables with **zero refinement passes**, which is
        how a store-warm process replays sweeps without refining.

        Returns ``False`` (and installs nothing) if this instance already
        built its engine -- the live engine's state is at least as deep.
        """
        if self._engine is not None:
            return False
        from ..kernel.refine import refinement_from_stored  # lazy, as in csr()

        self._engine = refinement_from_stored(self.csr(), tables, stable_depth)
        return True

    def adopt_engine(self, engine) -> bool:
        """Install a live refinement engine built elsewhere for this graph.

        Used by the delta recompute path: the engine returned by
        :func:`repro.kernel.refine.refinement_delta` already holds the
        mutated graph's per-depth partitions, so installing it here (instead
        of letting :meth:`refinement_engine` build a cold one) is what makes
        every later depth query replay-priced.  The engine must be bound to
        this instance's CSR view — the caller pairs :meth:`adopt_csr` with
        this.  Returns ``False`` (installing nothing) if an engine already
        exists.
        """
        if self._engine is not None:
            return False
        if engine.csr is not self.csr():
            raise ValueError("adopted engine is not bound to this graph's CSR view")
        self._engine = engine
        return True

    # ------------------------------------------------------------------ #
    # structural helpers
    # ------------------------------------------------------------------ #
    def relabeled(self, mapping: Mapping[int, int] | Sequence[int], *, name: str | None = None) -> "PortLabeledGraph":
        """Return a copy with node handles renamed by ``mapping`` (a bijection)."""
        n = self.num_nodes
        if isinstance(mapping, Mapping):
            perm = [mapping[v] for v in range(n)]
        else:
            perm = list(mapping)
        if sorted(perm) != list(range(n)):
            raise ValueError("relabeling must be a bijection on node handles")
        new_adj: List[Dict[int, Endpoint]] = [dict() for _ in range(n)]
        for v, row in enumerate(self._adj):
            for p, (u, q) in enumerate(row):
                new_adj[perm[v]][p] = (perm[u], q)
        return PortLabeledGraph(new_adj, name=self._name if name is None else name, validate=False)

    def fingerprint(self) -> str:
        """A canonical structural fingerprint of the graph (hex digest).

        The fingerprint is invariant under relabeling of the node handles:
        ``g.fingerprint() == g.relabeled(perm).fingerprint()`` for every
        permutation ``perm``, because it hashes the *sorted multiset* of
        port-aware colour-refinement signatures rather than anything indexed
        by handle.  It is sensitive to everything a handle-blind observer can
        see -- node/edge counts, degrees, and the port numbers on both sides
        of every edge, refined *to the fixpoint* of port-aware colour
        refinement -- which makes it the cache key used by
        :mod:`repro.runner.cache` to share :class:`~repro.views.refinement.ViewRefinement`
        instances across repeated sweeps.  (Graphs that colour refinement
        cannot tell apart share a fingerprint; consumers that need exact
        identity additionally compare adjacency, as the runner cache does.)

        Refinement runs until the class-count sequence stabilises, capped at
        :data:`_FINGERPRINT_LABEL_ROUNDS` rounds (the cap bounds both the
        passes of the shared incremental engine and the per-class label
        chain, so fingerprinting stays fast even on graphs whose fixpoint
        takes ~n/2 passes); the digest folds in the materialised class-count
        sequence plus the sorted multiset of ``(class label, class size)``
        pairs one round *past* stabilisation (or at the cap).
        An earlier scheme truncated at a fixed 3 refinement rounds, which
        aliased structurally different graphs whose refinements only diverge
        at depth >= 4 -- see ``tests/test_portgraph_fingerprint.py`` for an
        explicit colliding pair and the regression test.

        The digest is stable across processes and Python versions: it is
        computed with BLAKE2b over an explicit byte encoding, never with the
        salted built-in ``hash``.  The result is memoised on the instance.
        """
        if self._fingerprint is not None:
            return self._fingerprint

        def _digest(payload: str) -> int:
            return int.from_bytes(
                hashlib.blake2b(payload.encode("ascii"), digest_size=8).digest(), "big"
            )

        engine = self.refinement_engine()
        # Refine to the fixpoint, but never past the round cap: the cap keeps
        # fingerprinting O(cap · work-per-pass) in time and O(cap · n) in
        # retained colour arrays even on graphs whose fixpoint takes ~n/2
        # passes.  One round past stabilisation is folded in: the partition no
        # longer splits there, but the label chain still deepens by one
        # neighbourhood radius, which is what separates graphs whose
        # *partitions* agree while their signature structures differ (the old
        # 3-round aliasing families).
        engine.ensure_depth(_FINGERPRINT_LABEL_ROUNDS)
        stable = engine.stable_depth
        final_depth = min(
            engine.computed_depth,
            _FINGERPRINT_LABEL_ROUNDS if stable is None else stable + 1,
        )
        csr = self.csr()
        # Invariant label chain, one value per class per depth: the label of a
        # class is the digest of its (port-ordered) signature over the labels
        # of the previous depth, read off any representative member -- all
        # members share that signature by definition of the partition.
        labels: List[int] = [
            len(self._adj[group[0]]) for group in engine.members_at(0)
        ]
        for depth in range(1, final_depth + 1):
            previous_colors = engine.colors_at(depth - 1)
            new_labels: List[int] = []
            for group in engine.members_at(depth):
                rep = group[0]
                base = csr.offsets[rep]
                signature = (
                    labels[previous_colors[rep]],
                    tuple(
                        (csr.reverse_ports[i], labels[previous_colors[csr.neighbors[i]]])
                        for i in range(base, csr.offsets[rep + 1])
                    ),
                )
                new_labels.append(_digest(repr(signature)))
            labels = new_labels
        final_members = engine.members_at(final_depth)
        summary = (
            self.num_nodes,
            self.num_edges,
            tuple(sorted(self.degree_histogram().items())),
            engine.class_counts,
            tuple(sorted((labels[c], len(final_members[c])) for c in range(len(labels)))),
        )
        self._fingerprint = hashlib.sha256(repr(summary).encode("ascii")).hexdigest()
        return self._fingerprint

    def cache_key(self) -> str:
        """A fast, relabeling-invariant *bucket* key (hex digest).

        Three port-aware colour-refinement hash rounds over the adjacency --
        O(n + m), no partition engine involved.  Unlike :meth:`fingerprint`
        it may alias structurally different graphs whose refinements only
        diverge at depth >= 4; that is fine for its one consumer, the
        runner's :class:`~repro.runner.cache.RefinementCache`, which resolves
        every bucket by exact labeled-graph equality anyway.  Keeping the
        bucket key shallow means a warm cache lookup costs O(n + m), not a
        refinement to the fixpoint.
        """
        if self._cache_key is not None:
            return self._cache_key

        def _digest(payload: str) -> int:
            return int.from_bytes(
                hashlib.blake2b(payload.encode("ascii"), digest_size=8).digest(), "big"
            )

        colors: List[int] = [len(row) for row in self._adj]
        for _ in range(3):
            colors = [
                _digest(repr((colors[v], tuple((q, colors[u]) for u, q in row))))
                for v, row in enumerate(self._adj)
            ]
        summary = (
            self.num_nodes,
            self.num_edges,
            tuple(sorted(self.degree_histogram().items())),
            tuple(sorted(colors)),
        )
        self._cache_key = hashlib.sha256(repr(summary).encode("ascii")).hexdigest()
        return self._cache_key

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping ``degree -> number of nodes of that degree``."""
        hist: Dict[int, int] = {}
        for row in self._adj:
            hist[len(row)] = hist.get(len(row), 0) + 1
        return hist

    def nodes_of_degree(self, d: int) -> List[int]:
        """Node handles with degree exactly ``d``."""
        return [v for v in self.nodes() if len(self._adj[v]) == d]

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        """Exact labeled equality: same node handles, same ports, same edges."""
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:
        return hash(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<PortLabeledGraph{label} n={self.num_nodes} m={self.num_edges} "
            f"Δ={self.max_degree}>"
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_list(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int, int, int]],
        *,
        name: str = "",
        validate: bool = True,
    ) -> "PortLabeledGraph":
        """Build a graph from ``(v, port_at_v, u, port_at_u)`` tuples."""
        adj: List[Dict[int, Endpoint]] = [dict() for _ in range(num_nodes)]
        for v, pv, u, pu in edges:
            if pv in adj[v]:
                raise PortLabelingError(f"duplicate port {pv} at node {v}")
            if pu in adj[u]:
                raise PortLabelingError(f"duplicate port {pu} at node {u}")
            adj[v][pv] = (u, pu)
            adj[u][pu] = (v, pv)
        return cls(adj, name=name, validate=validate)
