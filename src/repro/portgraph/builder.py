"""Mutable builder for port-labeled graphs.

The family constructions of the paper (Sections 2.2.1, 3.1, 4.1) assemble
graphs incrementally: trees are built, copies of whole subgraphs are glued
onto cycles or chains, specific ports are added with specific labels, and
finally some ports are *swapped* to derive a class of graphs from a template.
:class:`GraphBuilder` supports exactly these operations:

* ``add_node`` / ``add_nodes``
* ``add_edge(u, pu, v, pv)`` with explicit, possibly non-contiguous ports
  (the model's ``0..d-1`` contiguity is enforced only at :meth:`build` time)
* ``add_graph`` -- disjoint union of an existing graph or builder, returning
  the handle offset so callers can address the copied nodes
* ``swap_ports`` / ``relabel_port`` -- the "port swapping" steps used to turn
  a template into the members of a class
* ``merge_nodes`` -- identification of nodes (used when gluing the four
  component copies of a gadget at the common node ρ).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from .graph import PortLabeledGraph
from .validation import PortLabelingError, validate_adjacency

__all__ = ["GraphBuilder"]

Endpoint = Tuple[int, int]


class GraphBuilder:
    """Incrementally construct a :class:`PortLabeledGraph`."""

    def __init__(self, num_nodes: int = 0, *, name: str = "") -> None:
        self._adj: List[Dict[int, Endpoint]] = [dict() for _ in range(num_nodes)]
        self.name = name

    # ------------------------------------------------------------------ #
    # nodes
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(row) for row in self._adj) // 2

    def add_node(self) -> int:
        """Add a node and return its handle."""
        self._adj.append({})
        return len(self._adj) - 1

    def add_nodes(self, count: int) -> List[int]:
        """Add ``count`` nodes and return their handles."""
        start = len(self._adj)
        self._adj.extend({} for _ in range(count))
        return list(range(start, start + count))

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def ports(self, v: int) -> List[int]:
        return sorted(self._adj[v])

    def has_port(self, v: int, port: int) -> bool:
        return port in self._adj[v]

    def endpoint(self, v: int, port: int) -> Endpoint:
        return self._adj[v][port]

    def neighbors(self, v: int) -> List[int]:
        return [self._adj[v][p][0] for p in sorted(self._adj[v])]

    def has_edge(self, v: int, u: int) -> bool:
        return any(pair[0] == u for pair in self._adj[v].values())

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, port_u: int, v: int, port_v: int) -> None:
        """Add the edge ``{u, v}`` with port ``port_u`` at ``u`` and ``port_v`` at ``v``."""
        if u == v:
            raise PortLabelingError(f"self-loop at node {u}")
        if port_u in self._adj[u]:
            raise PortLabelingError(f"node {u} already uses port {port_u}")
        if port_v in self._adj[v]:
            raise PortLabelingError(f"node {v} already uses port {port_v}")
        if self.has_edge(u, v):
            raise PortLabelingError(f"edge {{{u}, {v}}} already exists (graph must be simple)")
        self._adj[u][port_u] = (v, port_v)
        self._adj[v][port_v] = (u, port_u)

    def add_path(
        self,
        endpoints: Tuple[int, int],
        length: int,
        *,
        port_at_first: int,
        port_at_last: int,
        forward_port: int = 0,
        backward_port: int = 1,
    ) -> List[int]:
        """Add a path of ``length`` edges between two existing nodes.

        ``length - 1`` fresh internal nodes are created.  The first endpoint
        uses ``port_at_first`` on its new edge and the last endpoint uses
        ``port_at_last``.  Every internal node uses ``backward_port`` towards
        the first endpoint and ``forward_port`` towards the last endpoint.

        Returns the list of internal node handles (in order from the first
        endpoint towards the last).
        """
        first, last = endpoints
        if length < 1:
            raise ValueError("path length must be at least 1")
        if length == 1:
            self.add_edge(first, port_at_first, last, port_at_last)
            return []
        internal = self.add_nodes(length - 1)
        self.add_edge(first, port_at_first, internal[0], backward_port)
        for a, b in zip(internal, internal[1:]):
            self.add_edge(a, forward_port, b, backward_port)
        self.add_edge(internal[-1], forward_port, last, port_at_last)
        return internal

    def add_pendant_path(
        self,
        anchor: int,
        length: int,
        *,
        port_at_anchor: int,
        toward_anchor_port: int = 1,
        away_port: int = 0,
    ) -> List[int]:
        """Attach a fresh path of ``length`` edges hanging off ``anchor``.

        The new nodes each use ``toward_anchor_port`` on the edge towards the
        anchor and ``away_port`` on the edge away from it; the final node of
        the path only has the ``toward_anchor_port``... unless that would make
        its single port non-zero, in which case callers typically pass
        ``toward_anchor_port=0``.  Returns the new node handles in order of
        increasing distance from ``anchor``.
        """
        if length < 1:
            raise ValueError("path length must be at least 1")
        nodes = self.add_nodes(length)
        self.add_edge(anchor, port_at_anchor, nodes[0], toward_anchor_port)
        for a, b in zip(nodes, nodes[1:]):
            self.add_edge(a, away_port, b, toward_anchor_port)
        return nodes

    # ------------------------------------------------------------------ #
    # port manipulation (template -> class members)
    # ------------------------------------------------------------------ #
    def swap_ports(self, v: int, port_a: int, port_b: int) -> None:
        """Exchange two port labels at node ``v`` (both must exist)."""
        if port_a == port_b:
            return
        row = self._adj[v]
        if port_a not in row or port_b not in row:
            raise PortLabelingError(f"node {v} lacks port {port_a} or {port_b}")
        ua, qa = row[port_a]
        ub, qb = row[port_b]
        row[port_a], row[port_b] = (ub, qb), (ua, qa)
        self._adj[ua][qa] = (v, port_b)
        self._adj[ub][qb] = (v, port_a)

    def relabel_port(self, v: int, old_port: int, new_port: int) -> None:
        """Move the edge on ``old_port`` at ``v`` to the unused ``new_port``."""
        if old_port == new_port:
            return
        row = self._adj[v]
        if old_port not in row:
            raise PortLabelingError(f"node {v} has no port {old_port}")
        if new_port in row:
            raise PortLabelingError(f"node {v} already uses port {new_port}")
        u, q = row.pop(old_port)
        row[new_port] = (u, q)
        self._adj[u][q] = (v, new_port)

    def shift_ports(self, v: int, delta: int) -> None:
        """Add ``delta`` to every port label at node ``v``."""
        row = self._adj[v]
        items = list(row.items())
        row.clear()
        for port, (u, q) in items:
            row[port + delta] = (u, q)
            self._adj[u][q] = (v, port + delta)

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def add_graph(self, other: Union[PortLabeledGraph, "GraphBuilder"]) -> int:
        """Disjoint union: copy ``other`` into this builder.

        Returns the offset ``off`` such that node ``v`` of ``other`` becomes
        node ``off + v`` here.
        """
        off = len(self._adj)
        if isinstance(other, GraphBuilder):
            rows: Iterable[Dict[int, Endpoint]] = other._adj
        else:
            rows = (
                {p: other.endpoint(v, p) for p in other.ports(v)} for v in other.nodes()
            )
        for row in rows:
            self._adj.append({p: (u + off, q) for p, (u, q) in row.items()})
        return off

    def merge_nodes(self, keep: int, absorb: int) -> None:
        """Identify node ``absorb`` with node ``keep``.

        All edges of ``absorb`` are re-attached to ``keep`` (ports must not
        clash), ``absorb`` becomes an isolated placeholder which is removed.
        Node handles above ``absorb`` shift down by one.
        """
        if keep == absorb:
            raise ValueError("cannot merge a node with itself")
        for port, (u, q) in list(self._adj[absorb].items()):
            if port in self._adj[keep]:
                raise PortLabelingError(
                    f"cannot merge {absorb} into {keep}: both use port {port}"
                )
            if u == keep:
                raise PortLabelingError("merging adjacent nodes would create a self-loop")
            if self.has_edge(keep, u):
                raise PortLabelingError(
                    f"cannot merge {absorb} into {keep}: both adjacent to {u}"
                )
            self._adj[keep][port] = (u, q)
            self._adj[u][q] = (keep, port)
            del self._adj[absorb][port]
        self._remove_isolated(absorb)

    def _remove_isolated(self, v: int) -> None:
        if self._adj[v]:
            raise PortLabelingError(f"node {v} is not isolated")
        del self._adj[v]
        # Shift handles above v down by one.
        for row in self._adj:
            for port, (u, q) in list(row.items()):
                if u > v:
                    row[port] = (u - 1, q)

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def compact_ports(self) -> None:
        """Renumber the ports of every node to ``0..d-1`` preserving their order.

        Only used for graphs whose construction naturally leaves gaps; the
        paper's families do not need it.
        """
        for v, row in enumerate(self._adj):
            old_ports = sorted(row)
            for new, old in enumerate(old_ports):
                if new != old:
                    self.relabel_port(v, old, new)

    def validate(self, *, require_contiguous_ports: bool = True, require_connected: bool = True) -> None:
        """Validate without building."""
        validate_adjacency(
            self._adj,
            require_contiguous_ports=require_contiguous_ports,
            require_connected=require_connected,
        )

    def build(
        self,
        *,
        name: Optional[str] = None,
        require_connected: bool = True,
    ) -> PortLabeledGraph:
        """Validate and freeze the builder into a :class:`PortLabeledGraph`.

        Ports must be contiguous ``0..d-1`` at every node (the frozen graph
        stores port tables indexed by port); call :meth:`compact_ports` first
        if the construction left gaps.
        """
        self.validate(
            require_contiguous_ports=True,
            require_connected=require_connected,
        )
        return PortLabeledGraph(
            self._adj, name=self.name if name is None else name, validate=False
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: PortLabeledGraph, *, name: str = "") -> "GraphBuilder":
        """Start a builder pre-populated with an existing graph."""
        builder = cls(name=name or graph.name)
        builder.add_graph(graph)
        return builder

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GraphBuilder n={self.num_nodes} m={self.num_edges}>"
