"""Port-labeled anonymous network substrate.

This package provides the graph model the paper works with: simple connected
undirected graphs whose nodes are anonymous but label their incident edges
with local port numbers ``0..d-1``.  Everything else in the reproduction
(views, the LOCAL simulator, the election tasks, the advice framework and the
lower-bound graph families) is built on top of it.
"""

from .builder import GraphBuilder
from .delta import DeltaError, DeltaResult, GraphDelta
from .graph import PortLabeledGraph
from .isomorphism import are_isomorphic, extend_isomorphism, find_isomorphism
from .validation import PortLabelingError, check_connected, validate_adjacency
from . import generators, io, paths

__all__ = [
    "PortLabeledGraph",
    "GraphBuilder",
    "GraphDelta",
    "DeltaResult",
    "DeltaError",
    "PortLabelingError",
    "validate_adjacency",
    "check_connected",
    "are_isomorphic",
    "find_isomorphism",
    "extend_isomorphism",
    "generators",
    "io",
    "paths",
]
