"""Port-preserving isomorphism of port-labeled graphs.

Two port-labeled graphs are isomorphic (as *maps*, in the paper's sense) if
there is a bijection of nodes that preserves both adjacency and the port
numbers on every edge.  Because the graphs are connected and ports at a node
are distinct, such an isomorphism is completely determined by the image of a
single node: following the same port from matched nodes must lead to matched
nodes.  This gives an O(n·m) decision procedure which we use in tests to
check that family constructions produce the intended graphs (e.g. that the
two copies of a tree glued into ``G_i`` really are copies).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from .graph import PortLabeledGraph

__all__ = ["extend_isomorphism", "find_isomorphism", "are_isomorphic"]


def extend_isomorphism(
    first: PortLabeledGraph,
    second: PortLabeledGraph,
    anchor_first: int,
    anchor_second: int,
) -> Optional[Dict[int, int]]:
    """Try to extend ``anchor_first -> anchor_second`` to a full port-preserving isomorphism.

    Returns the node mapping or ``None`` if the extension fails.
    """
    if first.num_nodes != second.num_nodes or first.num_edges != second.num_edges:
        return None
    if first.degree(anchor_first) != second.degree(anchor_second):
        return None
    mapping: Dict[int, int] = {anchor_first: anchor_second}
    reverse: Dict[int, int] = {anchor_second: anchor_first}
    queue = deque([anchor_first])
    while queue:
        v = queue.popleft()
        w = mapping[v]
        if first.degree(v) != second.degree(w):
            return None
        for port in first.ports(v):
            u, back_u = first.endpoint(v, port)
            x, back_x = second.endpoint(w, port)
            if back_u != back_x:
                return None
            if u in mapping:
                if mapping[u] != x:
                    return None
            elif x in reverse:
                return None
            else:
                mapping[u] = x
                reverse[x] = u
                queue.append(u)
    if len(mapping) != first.num_nodes:
        return None
    return mapping


def find_isomorphism(
    first: PortLabeledGraph, second: PortLabeledGraph
) -> Optional[Dict[int, int]]:
    """Find a port-preserving isomorphism, anchoring node 0 of ``first`` at every candidate."""
    if first.num_nodes != second.num_nodes or first.num_edges != second.num_edges:
        return None
    if sorted(first.degree_sequence()) != sorted(second.degree_sequence()):
        return None
    anchor = 0
    target_degree = first.degree(anchor)
    for candidate in second.nodes():
        if second.degree(candidate) != target_degree:
            continue
        mapping = extend_isomorphism(first, second, anchor, candidate)
        if mapping is not None:
            return mapping
    return None


def are_isomorphic(first: PortLabeledGraph, second: PortLabeledGraph) -> bool:
    """Whether two port-labeled graphs are isomorphic as port-labeled maps."""
    return find_isomorphism(first, second) is not None
