"""Typed edit scripts over port-labeled graphs.

A :class:`GraphDelta` is a small, validated, JSON-serialisable script of
mutations against a *base* graph — the unit that flows through the dynamic
compute path (``kernel.refine`` delta replay, the runner cache's lineage
entries, ``POST /elections`` items with a ``"delta"`` field).  Five op kinds
cover the mutation streams of the dynamic-graph workload:

``{"op": "add-edge", "v": v, "u": u}``
    Join two existing non-adjacent nodes.  The new edge takes the next free
    port on each side (``deg(v)`` / ``deg(u)``), which keeps port tables
    contiguous without renumbering anything else.
``{"op": "remove-edge", "v": v, "u": u}``
    Remove the edge ``{v, u}``.  The freed port slot on each side is filled
    by *swap-with-last*: the dart at the highest port moves into the hole
    (updating its far side's reverse port), so ports stay contiguous and the
    repair is deterministic.
``{"op": "add-node", "anchor": a}``
    Join a fresh node (handle ``n``) by one edge to ``anchor`` — port
    ``deg(anchor)`` on the anchor side, port ``0`` on the new node.
``{"op": "remove-node", "v": v}``
    Remove ``v`` and its incident edges (each repaired swap-with-last);
    the last node handle ``n-1`` is then renamed to ``v`` (swap-with-last on
    node handles) so handles stay ``0..n-2``.
``{"op": "relabel-ports", "v": v, "perm": [...]}``
    Permute the port labels of ``v``: the dart at old port ``p`` gets port
    ``perm[p]``.  Topology is unchanged; the neighbours' reverse ports are
    rewritten.

Ops apply *in order*, each validated against the graph produced by its
predecessors; the final graph must satisfy the full model invariants
(simple, connected, contiguous ports) or :class:`DeltaError` is raised.

:meth:`GraphDelta.apply_to` returns a :class:`DeltaResult` carrying, beside
the mutated graph, exactly the bookkeeping the incremental kernel needs:

* ``node_map`` — new handle → base handle (``-1`` for freshly joined nodes),
* ``touched`` — new handles whose *port table content* differs from their
  base counterpart's (handle renames alone do not touch a node),
* ``renamed`` — base handle → new handle for handles moved by node removal,
* ``topology_changed`` — ``False`` iff every op is a port relabeling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import PortLabeledGraph

__all__ = ["DeltaError", "DeltaResult", "GraphDelta", "DELTA_OPS"]

#: The op kinds a delta may contain, in canonical order.
DELTA_OPS = ("add-edge", "remove-edge", "add-node", "remove-node", "relabel-ports")


class DeltaError(ValueError):
    """An edit script is malformed or inapplicable to its base graph."""


@dataclass(frozen=True)
class DeltaResult:
    """The outcome of applying a :class:`GraphDelta` to a base graph."""

    graph: PortLabeledGraph
    #: new handle -> base handle; -1 for nodes the delta created.
    node_map: Tuple[int, ...]
    #: new handles whose port-table content changed (sorted ascending).
    touched: Tuple[int, ...]
    #: base handle -> new handle, only for handles moved by node removal.
    renamed: Dict[int, int]
    #: False iff the delta is purely port relabelings (same topology).
    topology_changed: bool


def _canonical_op(op: object) -> Tuple:
    """Normalise one wire/op value into its canonical internal tuple."""
    if isinstance(op, tuple) and op and op[0] in DELTA_OPS:
        return op
    if not isinstance(op, dict):
        raise DeltaError(f"delta op must be an object, got {type(op).__name__}")
    kind = op.get("op")
    try:
        if kind == "add-edge" or kind == "remove-edge":
            return (kind, int(op["v"]), int(op["u"]))
        if kind == "add-node":
            return (kind, int(op["anchor"]))
        if kind == "remove-node":
            return (kind, int(op["v"]))
        if kind == "relabel-ports":
            perm = tuple(int(p) for p in op["perm"])
            return (kind, int(op["v"]), perm)
    except (KeyError, TypeError, ValueError) as exc:
        raise DeltaError(f"malformed {kind!r} op: {exc}") from exc
    raise DeltaError(f"unknown delta op {kind!r} (expected one of {DELTA_OPS})")


class GraphDelta:
    """An immutable, validated edit script (see the module docstring)."""

    __slots__ = ("_ops", "_digest")

    def __init__(self, ops: Iterable[object]) -> None:
        self._ops: Tuple[Tuple, ...] = tuple(_canonical_op(op) for op in ops)
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------ #
    @property
    def ops(self) -> Tuple[Tuple, ...]:
        return self._ops

    @property
    def edit_distance(self) -> int:
        """Number of ops — the x-axis of the E19 speedup curve."""
        return len(self._ops)

    @property
    def topology_changed(self) -> bool:
        return any(op[0] != "relabel-ports" for op in self._ops)

    def digest(self) -> str:
        """A stable content digest of the script (lineage / sweep identity)."""
        if self._digest is None:
            self._digest = hashlib.blake2b(
                repr(self._ops).encode("ascii"), digest_size=16
            ).hexdigest()
        return self._digest

    def __len__(self) -> int:
        return len(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GraphDelta ops={len(self._ops)} digest={self.digest()[:8]}>"

    # ------------------------------------------------------------------ #
    # wire format
    # ------------------------------------------------------------------ #
    def to_payload(self) -> List[dict]:
        """The JSON-ready list-of-objects form (canonical key order)."""
        out: List[dict] = []
        for op in self._ops:
            kind = op[0]
            if kind in ("add-edge", "remove-edge"):
                out.append({"op": kind, "v": op[1], "u": op[2]})
            elif kind == "add-node":
                out.append({"op": kind, "anchor": op[1]})
            elif kind == "remove-node":
                out.append({"op": kind, "v": op[1]})
            else:
                out.append({"op": kind, "v": op[1], "perm": list(op[2])})
        return out

    @classmethod
    def from_payload(cls, payload: object) -> "GraphDelta":
        if not isinstance(payload, (list, tuple)):
            raise DeltaError("delta payload must be a list of ops")
        if not payload:
            raise DeltaError("delta payload must contain at least one op")
        return cls(payload)

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply_to(
        self,
        base: PortLabeledGraph,
        *,
        name: Optional[str] = None,
        validate: bool = True,
    ) -> DeltaResult:
        """Apply the script to ``base`` and return the :class:`DeltaResult`.

        ``base`` is never modified.  The mutated graph's default name is
        ``"<base-name>~<digest[:8]>"`` so the full and delta recompute paths
        agree on the derived graph byte-for-byte.
        """
        # Copy-on-write over the base rows: untouched nodes keep sharing the
        # base graph's (immutable tuple) port tables, so a small edit script
        # on a large graph copies O(touched) rows, not O(n).
        adj: List[Sequence[Tuple[int, int]]] = [base.adjacency(v) for v in base.nodes()]
        node_map: List[int] = list(range(len(adj)))
        touched: set = set()

        def _mut(x: int) -> List[Tuple[int, int]]:
            """The port table of ``x`` as a private mutable list (CoW fault)."""
            row = adj[x]
            if type(row) is tuple:
                row = list(row)
                adj[x] = row
            return row  # type: ignore[return-value]

        def _require_node(v: int, what: str) -> None:
            if not isinstance(v, int) or not 0 <= v < len(adj):
                raise DeltaError(f"{what}: node {v!r} out of range (n={len(adj)})")

        def _drop_dart(x: int, hole: int) -> None:
            """Remove the dart at port ``hole`` of ``x``, swap-with-last repair."""
            row = _mut(x)
            last = len(row) - 1
            if hole != last:
                w, r = row[last]
                row[hole] = (w, r)
                _mut(w)[r] = (x, hole)
                touched.add(w)
            row.pop()
            touched.add(x)

        def _remove_edge(v: int, u: int, what: str) -> None:
            for p, (w, _q) in enumerate(adj[v]):
                if w == u:
                    _drop_dart(v, p)
                    break
            else:
                raise DeltaError(f"{what}: {{{v}, {u}}} is not an edge")
            for p, (w, _q) in enumerate(adj[u]):
                if w == v:
                    _drop_dart(u, p)
                    break

        for op in self._ops:
            kind = op[0]
            if kind == "add-edge":
                _kind, v, u = op
                _require_node(v, "add-edge")
                _require_node(u, "add-edge")
                if v == u:
                    raise DeltaError("add-edge: self-loops are not allowed")
                if any(w == u for w, _q in adj[v]):
                    raise DeltaError(f"add-edge: {{{v}, {u}}} already exists")
                row_v = _mut(v)
                row_u = _mut(u)
                row_v.append((u, len(row_u)))
                row_u.append((v, len(row_v) - 1))
                touched.add(v)
                touched.add(u)
            elif kind == "remove-edge":
                _kind, v, u = op
                _require_node(v, "remove-edge")
                _require_node(u, "remove-edge")
                _remove_edge(v, u, "remove-edge")
            elif kind == "add-node":
                _kind, anchor = op
                _require_node(anchor, "add-node")
                fresh = len(adj)
                row_a = _mut(anchor)
                adj.append([(anchor, len(row_a))])
                row_a.append((fresh, 0))
                node_map.append(-1)
                touched.add(anchor)
                touched.add(fresh)
            elif kind == "remove-node":
                _kind, v = op
                _require_node(v, "remove-node")
                if len(adj) < 2:
                    raise DeltaError("remove-node: cannot empty the graph")
                while adj[v]:
                    _remove_edge(v, adj[v][0][0], "remove-node")
                touched.discard(v)
                last = len(adj) - 1
                if v != last:
                    # rename handle last -> v; row contents are unchanged
                    # modulo the rename, so this touches nothing by itself.
                    adj[v] = adj[last]
                    for w, r in adj[v]:
                        row_w = _mut(w)
                        row_w[r] = (v, row_w[r][1])
                    node_map[v] = node_map[last]
                    if last in touched:
                        touched.discard(last)
                        touched.add(v)
                adj.pop()
                node_map.pop()
            else:  # relabel-ports
                _kind, v, perm = op
                _require_node(v, "relabel-ports")
                degree = len(adj[v])
                if sorted(perm) != list(range(degree)):
                    raise DeltaError(
                        f"relabel-ports: perm must be a permutation of 0..{degree - 1}"
                    )
                row = adj[v]
                new_row: List[Optional[Tuple[int, int]]] = [None] * degree
                for p, (u, q) in enumerate(row):
                    new_row[perm[p]] = (u, q)
                    _mut(u)[q] = (v, perm[p])
                    touched.add(u)
                adj[v] = new_row  # type: ignore[assignment]
                touched.add(v)

        if validate and any(op[0] in ("remove-edge", "remove-node") for op in self._ops):
            # the surgery maintains reciprocity and port contiguity by
            # construction (each op repairs the darts it moves); the one
            # model invariant a removal can break is connectivity, so check
            # exactly that instead of re-validating the whole graph
            seen = bytearray(len(adj))
            seen[0] = 1
            stack = [0]
            reached = 1
            while stack:
                x = stack.pop()
                for w, _r in adj[x]:
                    if not seen[w]:
                        seen[w] = 1
                        reached += 1
                        stack.append(w)
            if reached != len(adj):
                raise DeltaError("delta disconnects the graph")
        if name is None:
            stem = base.name or "graph"
            name = f"{stem}~{self.digest()[:8]}"
        graph = PortLabeledGraph(adj, name=name, validate=False)
        renamed = {
            base_id: new_id
            for new_id, base_id in enumerate(node_map)
            if base_id >= 0 and base_id != new_id
        }
        return DeltaResult(
            graph=graph,
            node_map=tuple(node_map),
            touched=tuple(sorted(touched)),
            renamed=renamed,
            topology_changed=self.topology_changed,
        )
