"""Vectorised (numpy) partition refinement on CSR arrays.

The numpy twin of :class:`repro.kernel.refine.CSRPartitionRefinement`: the
same lazy per-depth view-equivalence partitions of one CSR graph, computed
as dense array operations instead of per-node Python loops.  One refinement
pass is one *full-width signature grouping*:

* nodes are bucketed by degree once, up front (refinement classes never
  cross degrees, so within a bucket every signature is a fixed-width row);
* the depth-``h`` signature of node ``v`` -- its depth-``h-1`` colour
  followed by the port-ordered ``(incoming port, neighbour's colour)``
  pairs -- becomes one row of a ``(nodes, 2·degree + 1)`` key matrix, built
  by slice assignment from precomputed per-bucket dart matrices;
* rows are grouped exactly (no hashing) with a lexicographic sort and a
  vectorised run-boundary scan, and the pass closes with one global
  ``numpy.unique`` that renumbers the class ids compactly.

Nodes already in singleton classes are excluded from the key matrices
(singletons can never split -- the same skip the python engine performs),
so a mostly-discrete graph pays only for its residual symmetric core.

Where the python engine is *incremental* (only the neighbourhood of the
previous pass's splits is re-signatured -- the right trade for warm,
shallow, or slowly-churning workloads), this engine is *batched*: every
pass costs O((n + m) log n) in C-speed primitives regardless of churn,
which wins by a wide margin on the cold bounded-depth sweeps the paper's
exponential families generate (the 132k-node J_{µ,k} member, the E14
substrate benchmarks).  ``benchmarks/ci_gate.py`` enforces the speedup;
the three-way equivalence matrix enforces that nothing else differs.

Everything observable is **byte-identical** to the python engine:
:meth:`~NumpyPartitionRefinement.colors_at` returns the same canonical
(first-appearance renumbered) colour tables as ``array`` instances of the
same typecode, ``class_counts``/``stable_depth``/``passes`` follow the same
trajectory (one pass per materialised depth), and inverse indexes contain
plain Python ints.  Partitions are what both engines compute; canonical
renumbering is a pure function of the partition; hence equality is
structural, not coincidental.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from .backend import numpy_or_none
from .csr import INT_TYPECODE, CSRGraph

__all__ = ["NumpyPartitionRefinement"]


def _np():
    numpy = numpy_or_none()
    if numpy is None:  # pragma: no cover - constructors are backend-gated
        raise RuntimeError("numpy backend requested but numpy is not installed")
    return numpy


def _group_words(numpy, words):
    """Exact row grouping of packed key words: ``(count, per-row group ids)``.

    Each row's signature is spread across the same positions of the arrays
    in ``words``; rows are grouped by full equality via one lexicographic
    sort and a boundary scan -- no hashing, so no collisions.  Group ids are
    dense, ordered by the rows' lexicographic rank (any deterministic order
    works: the ids are renumbered compactly at the end of the pass and
    canonicalised by first appearance when queried).
    """
    rows = words[0].shape[0]
    dtype = words[0].dtype
    if rows == 1:
        return 1, numpy.zeros(1, dtype=dtype)
    if len(words) == 1:
        _distinct, ids = numpy.unique(words[0], return_inverse=True)
        return int(_distinct.shape[0]), ids
    order = numpy.lexsort(words)
    differs = numpy.zeros(rows - 1, dtype=bool)
    for word in words:
        ordered = word[order]
        differs |= ordered[1:] != ordered[:-1]
    ids_sorted = numpy.empty(rows, dtype=dtype)
    ids_sorted[0] = 0
    numpy.cumsum(differs, out=ids_sorted[1:])
    ids = numpy.empty(rows, dtype=dtype)
    ids[order] = ids_sorted
    return int(ids_sorted[-1]) + 1, ids


class NumpyPartitionRefinement:
    """Lazy per-depth view-equivalence partitions, computed with numpy.

    Drop-in for :class:`repro.kernel.refine.CSRPartitionRefinement`: same
    constructor shape, same public surface, byte-identical answers.
    """

    __slots__ = (
        "_csr",
        "_numpy",
        "_dtype",
        "_offsets",
        "_neighbors",
        "_reverse_ports",
        "_raw",
        "_num_classes",
        "_buckets",
        "_rp_bits",
        "_stable_depth",
        "_passes",
        "_canonical_np",
        "_canonical",
        "_members",
        "_unique",
    )

    def __init__(self, csr: CSRGraph) -> None:
        numpy = _np()
        self._csr = csr
        self._numpy = numpy
        self._dtype = numpy.dtype(INT_TYPECODE)
        # zero-copy views of the kernel's array-module CSR arrays
        self._offsets = numpy.frombuffer(csr.offsets, dtype=self._dtype)
        self._neighbors = numpy.frombuffer(csr.neighbors, dtype=self._dtype)
        self._reverse_ports = numpy.frombuffer(csr.reverse_ports, dtype=self._dtype)
        n = csr.num_nodes
        degrees = self._offsets[1:] - self._offsets[:-1]
        # depth 0: classes are degrees (compact internal ids; canonical
        # first-appearance renumbering happens lazily in colors_at)
        distinct, initial = numpy.unique(degrees, return_inverse=True)
        self._raw: List = [initial.astype(self._dtype, copy=False)]
        self._num_classes: List[int] = [int(distinct.shape[0])]
        #: per-degree bucket matrices, built lazily on the first pass:
        #: (nodes of the bucket, their neighbour matrix, their
        #: reverse-port matrix), each matrix of shape (|bucket|, degree).
        self._buckets: Optional[List[Tuple]] = None
        #: bits needed for any reverse-port value (for signature packing)
        self._rp_bits = (
            max(1, int(self._reverse_ports.max()).bit_length())
            if self._reverse_ports.shape[0]
            else 1
        )
        self._stable_depth: Optional[int] = None
        self._passes = 0
        self._canonical_np: Dict[int, object] = {}
        self._canonical: Dict[int, array] = {}
        self._members: Dict[int, List[List[int]]] = {}
        self._unique: Dict[int, List[int]] = {}
        if n == 1 or self._num_classes[0] == n:
            self._stable_depth = 0

    @classmethod
    def from_stored(
        cls,
        csr: CSRGraph,
        tables: "List[List[int]]",
        stable_depth: int,
    ) -> "NumpyPartitionRefinement":
        """An engine pre-loaded with canonical tables from an earlier process.

        Same contract as the python engine's ``from_stored``: the loaded
        engine answers every depth query from the installed tables with
        :attr:`passes` frozen at ``0`` -- the store-warm zero-refinement
        certificate holds identically under both backends.
        """
        numpy = _np()
        n = csr.num_nodes
        if stable_depth < 0 or len(tables) < stable_depth + 1:
            raise ValueError("tables must cover depths 0..stable_depth")
        engine = cls(csr)
        raw: List = []
        num_classes: List[int] = []
        for table in tables:
            if len(table) != n:
                raise ValueError("each colour table must have one entry per node")
            arr = numpy.asarray(table, dtype=engine._dtype)
            raw.append(arr)
            num_classes.append(int(arr.max()) + 1 if n else 0)
        engine._raw = raw
        engine._num_classes = num_classes
        engine._stable_depth = stable_depth
        engine._passes = 0
        engine._canonical_np = {}
        engine._canonical = {}
        engine._members = {}
        engine._unique = {}
        return engine

    # ------------------------------------------------------------------ #
    @property
    def csr(self) -> CSRGraph:
        return self._csr

    @property
    def passes(self) -> int:
        return self._passes

    @property
    def stable_depth(self) -> Optional[int]:
        return self._stable_depth

    @property
    def computed_depth(self) -> int:
        """Deepest depth whose partition has been materialised."""
        return len(self._raw) - 1

    @property
    def class_counts(self) -> Tuple[int, ...]:
        """Class counts of every materialised depth (0..computed_depth)."""
        return tuple(self._num_classes)

    # ------------------------------------------------------------------ #
    def _ensure_buckets(self) -> List[Tuple]:
        """Per-degree (nodes, neighbour matrix, reverse-port matrix) triples.

        The matrices depend only on the CSR arrays, so they are built once
        and reused by every pass; together they are an O(n + m) footprint.
        """
        if self._buckets is None:
            numpy = self._numpy
            offsets = self._offsets
            degrees = offsets[1:] - offsets[:-1]
            buckets: List[Tuple] = []
            for d in numpy.unique(degrees):
                d = int(d)
                if d == 0:
                    continue  # a degree-0 node only exists when n == 1 (stable at depth 0)
                nodes = numpy.flatnonzero(degrees == d)
                darts = offsets[nodes][:, None] + numpy.arange(d, dtype=self._dtype)
                buckets.append((nodes, self._neighbors[darts], self._reverse_ports[darts]))
            self._buckets = buckets
        return self._buckets

    def _refine_once(self) -> None:
        numpy = self._numpy
        previous = self._raw[-1]
        previous_count = self._num_classes[-1]
        self._passes += 1

        sizes = numpy.bincount(previous, minlength=previous_count)
        active = sizes[previous] > 1
        # fresh ids start past every previous id, so an unsplit singleton
        # class can never collide with a regrouped one
        scratch = previous.copy()
        next_fresh = previous_count
        # bit widths for signature packing: previous ids are compact
        # (< previous_count), reverse ports bounded by the max degree
        colour_bits = max(1, int(previous_count - 1).bit_length())
        rp_bits = self._rp_bits
        for nodes, nbr_matrix, rp_matrix in self._ensure_buckets():
            mask = active[nodes]
            if not mask.any():
                continue
            sel_nodes = nodes[mask]
            nbr_sel = nbr_matrix[mask]
            rp_sel = rp_matrix[mask]
            # the signature row of node v is the fixed-width column sequence
            #   prev[v], rp[v,0], prev[nbr[v,0]], ..., rp[v,d-1], prev[nbr[v,d-1]]
            # packed greedily into as few non-negative 64-bit words as fit
            # (usually one or two), so the exact grouping sorts narrow keys
            words = []
            current = previous[sel_nodes]  # fancy indexing: already a fresh array
            used = colour_bits
            for port in range(nbr_sel.shape[1]):
                for column, bits in (
                    (rp_sel[:, port], rp_bits),
                    (previous[nbr_sel[:, port]], colour_bits),
                ):
                    if used + bits > 63:
                        words.append(current)
                        current = column.astype(self._dtype, copy=True)
                        used = bits
                    else:
                        current = (current << bits) | column
                        used += bits
            words.append(current)
            group_count, group_ids = _group_words(numpy, words)
            scratch[sel_nodes] = next_fresh + group_ids
            next_fresh += group_count
        # compact renumbering keeps the id space O(n) across any number of
        # passes; which compact ids the classes get is irrelevant (colors_at
        # canonicalises by first appearance).  O(n) presence scan -- no sort.
        present = numpy.zeros(next_fresh, dtype=bool)
        present[scratch] = True
        remap = numpy.cumsum(present)
        count = int(remap[-1])
        new_colors = (remap[scratch] - 1).astype(self._dtype, copy=False)
        self._raw.append(new_colors)
        self._num_classes.append(count)
        if self._stable_depth is None and count == previous_count:
            # a pass with no splits: the fixpoint was one depth earlier
            self._stable_depth = len(self._raw) - 2

    # ------------------------------------------------------------------ #
    def ensure_depth(self, depth: int) -> int:
        """Materialise partitions up to ``depth`` (or the fixpoint).

        Returns the *effective* depth at which to read: ``depth`` itself, or
        the stable depth when that is smaller.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        while len(self._raw) <= depth and self._stable_depth is None:
            self._refine_once()
        if self._stable_depth is not None and depth > self._stable_depth:
            return self._stable_depth
        return depth

    def ensure_stable(self) -> int:
        while self._stable_depth is None:
            self._refine_once()
        return self._stable_depth

    def apply_delta(self, csr: CSRGraph, node_map, touched):
        """Delta replay — the certified python fallback.

        The dirty-ball replay is inherently sparse (per depth it signatures
        only the dirty ball plus one O(n) inheritance sweep), which the
        batched full-width passes of this backend cannot exploit, so the
        numpy engine delegates to
        :meth:`repro.kernel.refine.CSRPartitionRefinement.apply_delta`,
        reading this engine's raw tables as the base.  The returned engine
        is the python one; its tables are byte-identical to a cold full
        refinement on either backend (certified by the delta equivalence
        suite).
        """
        from .refine import CSRPartitionRefinement

        return CSRPartitionRefinement.apply_delta(self, csr, node_map, touched)

    # ------------------------------------------------------------------ #
    # O(1) / O(output) queries (depth must already be effective)
    # ------------------------------------------------------------------ #
    def _canonical_at(self, effective: int):
        """Canonical colours as a numpy array (first appearance in node order)."""
        cached = self._canonical_np.get(effective)
        if cached is None:
            numpy = self._numpy
            raw = self._raw[effective]
            _distinct, first_index, inverse = numpy.unique(
                raw, return_index=True, return_inverse=True
            )
            # class rank = order of the class's first appearance in node order
            order = numpy.argsort(first_index)
            rank = numpy.empty(order.shape[0], dtype=self._dtype)
            rank[order] = numpy.arange(order.shape[0], dtype=self._dtype)
            cached = rank[inverse]
            self._canonical_np[effective] = cached
        return cached

    def colors_at(self, effective: int) -> array:
        """Canonical colours at a materialised depth (0..c-1 by first appearance).

        Byte-identical to the python engine's: first-appearance renumbering
        is a pure function of the partition, and the result is returned as
        the same ``array(INT_TYPECODE)`` type the rest of the kernel uses.
        """
        cached = self._canonical.get(effective)
        if cached is None:
            canonical = self._canonical_at(effective)
            cached = array(INT_TYPECODE)
            cached.frombytes(canonical.astype(self._dtype, copy=False).tobytes())
            self._canonical[effective] = cached
        return cached

    def num_classes_at(self, effective: int) -> int:
        return self._num_classes[effective]

    def members_at(self, effective: int) -> List[List[int]]:
        """Canonical class → members (ascending node order), built lazily."""
        cached = self._members.get(effective)
        if cached is None:
            numpy = self._numpy
            colors = self._canonical_at(effective)
            count = self._num_classes[effective]
            # stable argsort groups nodes by class while preserving the
            # ascending node order inside each class
            order = numpy.argsort(colors, kind="stable")
            bounds = numpy.cumsum(numpy.bincount(colors, minlength=count))[:-1]
            cached = [group.tolist() for group in numpy.split(order, bounds)]
            self._members[effective] = cached
        return cached

    def unique_at(self, effective: int) -> List[int]:
        """Nodes in singleton classes (ascending), built lazily per depth."""
        cached = self._unique.get(effective)
        if cached is None:
            cached = sorted(
                group[0] for group in self.members_at(effective) if len(group) == 1
            )
            self._unique[effective] = cached
        return cached

    def class_members(self, node: int, effective: int) -> List[int]:
        return self.members_at(effective)[self.colors_at(effective)[node]]

    # ------------------------------------------------------------------ #
    def canonical_tables(self) -> List[List[int]]:
        """Canonical colour tables for every materialised depth (0..computed)."""
        return [list(self.colors_at(depth)) for depth in range(len(self._raw))]

    def estimated_bytes(self) -> int:
        """Rough retained footprint of the engine's per-depth state (bytes).

        Counts the raw/canonical colour arrays and bucket matrices exactly
        and the inverse indexes at Python-list rates, mirroring the python
        engine's accounting for the runner cache's eviction bookkeeping.
        """
        total = 0
        for arr in self._raw:
            total += arr.nbytes
        for arr in self._canonical_np.values():
            total += arr.nbytes
        for arr in self._canonical.values():
            total += len(arr) * arr.itemsize
        if self._buckets is not None:
            for nodes, nbr_matrix, rp_matrix in self._buckets:
                total += nodes.nbytes + nbr_matrix.nbytes + rp_matrix.nbytes
        for groups in self._members.values():
            total += sum(56 + 8 * len(group) for group in groups)
        for group in self._unique.values():
            total += 56 + 8 * len(group)
        return total
