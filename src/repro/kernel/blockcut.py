"""Block-cut-tree (biconnected components) queries on CSR graphs.

ψ_PE's correctness condition asks, for a candidate leader ``u`` and every
member ``v`` of every other view class: *does port ``p`` at ``v`` start a
simple path from ``v`` to ``u``?*  Equivalently (for ``w`` the neighbour via
``p``): ``w == u``, or ``w`` and ``u`` lie in the same connected component of
``G - v``.  The previous implementation answered this with a cached BFS of
``G - v`` per removed node — O(n·(n+m)) per (leader, class) family and
rebuilt for every depth probed.

One depth-first search computes everything needed to answer all such queries
for *all* removed nodes at once (Hopcroft–Tarjan):

* ``tin`` / ``tout`` — preorder entry time and subtree interval end, so
  "is ``u`` in the DFS subtree of ``v``" is two comparisons;
* ``low`` — the classic lowlink: the smallest ``tin`` reachable from a
  subtree using at most one back edge;
* the DFS children of every node in increasing-``tin`` order, so "which child
  subtree of ``v`` contains ``u``" is a binary search over the children.

**Query contract** (``component_key``): for a removed node ``v`` and any
``u != v``, the key identifies the connected component of ``u`` in ``G - v``:

* if ``v`` is the DFS root, each child subtree is its own component (there
  are no cross edges between root subtrees in an undirected DFS);
* otherwise everything outside the subtree of ``v`` forms the "up" component
  (key ``-1``), a child subtree ``c`` with ``low[c] < tin[v]`` escapes along
  a back edge above ``v`` and merges with "up", and a child subtree with
  ``low[c] >= tin[v]`` is a separate component keyed by ``c``.

Two nodes are connected in ``G - v`` iff their keys match; each query costs
O(log deg v).  The biconnected components themselves (edge-partition blocks)
and the articulation points are exposed for tests and analyses.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import List, Sequence, Set, Tuple

from .backend import active_backend, numpy_or_none
from .csr import INT_TYPECODE, CSRGraph

__all__ = ["BlockCutTree"]


class BlockCutTree:
    """One DFS pass over a connected CSR graph; O(log Δ) cut queries forever after."""

    __slots__ = (
        "_csr",
        "_root",
        "_tin",
        "_tout",
        "_low",
        "_parent",
        "_children",
        "_child_tins",
        "_blocks",
        "_articulation",
        "_articulation_mask",
    )

    def __init__(self, csr: CSRGraph, root: int = 0) -> None:
        self._csr = csr
        self._root = root
        n = csr.num_nodes
        self._tin = array(INT_TYPECODE, [-1] * n)
        self._tout = array(INT_TYPECODE, [-1] * n)
        self._low = array(INT_TYPECODE, [-1] * n)
        self._parent = array(INT_TYPECODE, [-1] * n)
        self._children: List[List[int]] = [[] for _ in range(n)]
        self._blocks: List[Tuple[int, ...]] = []
        self._articulation: Set[int] = set()
        self._articulation_mask = None  # numpy bool mask, built on first batch query
        self._dfs()
        self._child_tins = [
            array(INT_TYPECODE, [self._tin[c] for c in kids]) for kids in self._children
        ]

    def _dfs(self) -> None:
        csr = self._csr
        offsets = csr.offsets
        neighbors = csr.neighbors
        tin, tout, low, parent = self._tin, self._tout, self._low, self._parent
        children = self._children
        root = self._root
        timer = 0
        edge_stack: List[Tuple[int, int]] = []
        # iterative DFS: (node, index of next dart to scan)
        tin[root] = low[root] = timer
        timer += 1
        stack = [(root, offsets[root])]
        while stack:
            v, i = stack[-1]
            if i < offsets[v + 1]:
                stack[-1] = (v, i + 1)
                u = neighbors[i]
                if tin[u] < 0:
                    parent[u] = v
                    children[v].append(u)
                    edge_stack.append((v, u))
                    tin[u] = low[u] = timer
                    timer += 1
                    stack.append((u, offsets[u]))
                elif u != parent[v] and tin[u] < tin[v]:
                    # a genuine back edge (each undirected edge handled once)
                    edge_stack.append((v, u))
                    if tin[u] < low[v]:
                        low[v] = tin[u]
            else:
                stack.pop()
                tout[v] = timer
                if stack:
                    p = stack[-1][0]
                    if low[v] < low[p]:
                        low[p] = low[v]
                    if low[v] >= tin[p]:
                        # p separates v's subtree: close one biconnected block
                        block_nodes: Set[int] = set()
                        while edge_stack:
                            a, b = edge_stack.pop()
                            block_nodes.add(a)
                            block_nodes.add(b)
                            if (a, b) == (p, v):
                                break
                        self._blocks.append(tuple(sorted(block_nodes)))
                        if p != root:
                            self._articulation.add(p)
        if len(children[root]) >= 2:
            self._articulation.add(root)

    # ------------------------------------------------------------------ #
    def rebound(self, csr: CSRGraph) -> "BlockCutTree":
        """A copy of this tree bound to ``csr`` (same topology, new ports).

        The DFS structure (tin/tout/low/parent/children, blocks,
        articulation points) is a pure fact of the *topology*, but the port
        queries (:meth:`starts_simple_path`, :meth:`class_port_ok`) read the
        bound CSR's port tables at query time — so after a ports-only graph
        delta the O(n) structure can be carried verbatim while the binding
        moves to the mutated CSR.  The caller guarantees ``csr`` encodes the
        same node handles and edge set; this instance is not modified.
        """
        clone = BlockCutTree.__new__(BlockCutTree)
        clone._csr = csr
        for slot in self.__slots__:
            if slot != "_csr":
                setattr(clone, slot, getattr(self, slot))
        return clone

    # ------------------------------------------------------------------ #
    # structure accessors
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> int:
        return self._root

    def articulation_points(self) -> Set[int]:
        """The cut vertices of the graph."""
        return set(self._articulation)

    def biconnected_components(self) -> List[Tuple[int, ...]]:
        """The biconnected blocks as sorted node tuples (bridges are 2-blocks)."""
        return list(self._blocks)

    def is_articulation(self, v: int) -> bool:
        return v in self._articulation

    # ------------------------------------------------------------------ #
    # removed-node connectivity queries
    # ------------------------------------------------------------------ #
    def _in_subtree(self, u: int, v: int) -> bool:
        return self._tin[v] <= self._tin[u] < self._tout[v]

    def _child_containing(self, u: int, v: int) -> int:
        """The DFS child of ``v`` whose subtree contains ``u`` (``u`` must be below ``v``)."""
        kids = self._children[v]
        index = bisect_right(self._child_tins[v], self._tin[u]) - 1
        return kids[index]

    def component_key(self, u: int, removed: int) -> int:
        """Identifier of the component of ``u`` in ``G - removed`` (``u != removed``)."""
        if u == removed:
            raise ValueError("component_key: u must differ from the removed node")
        if removed == self._root:
            return self._child_containing(u, removed)
        if not self._in_subtree(u, removed):
            return -1
        child = self._child_containing(u, removed)
        if self._low[child] < self._tin[removed]:
            # the child's subtree climbs past `removed` along a back edge
            return -1
        return child

    def same_component_without(self, a: int, b: int, removed: int) -> bool:
        """Whether ``a`` and ``b`` are connected in ``G - removed``."""
        if not self._articulation or removed not in self._articulation:
            # removing a non-cut vertex of a connected graph keeps it connected
            return True
        return self.component_key(a, removed) == self.component_key(b, removed)

    def class_port_ok(self, members: Sequence[int], port: int, target: int) -> bool:
        """Whether ``port`` starts a simple path to ``target`` from *every* member.

        Semantically ``all(starts_simple_path(v, port, target) for v in
        members)`` — the per-class feasibility test of ψ_PE's port search
        (``port`` must be < every member's degree).  Under the numpy backend
        the class is screened in bulk: one gather resolves every member's
        neighbour via ``port``, and the only members left for exact
        per-removed-node component queries are the articulation points whose
        neighbour is not the target itself — on the paper's families almost
        always a tiny minority of the class.
        """
        numpy = numpy_or_none() if active_backend() == "numpy" else None
        if numpy is None or len(members) < 8:
            return all(self.starts_simple_path(v, port, target) for v in members)
        dtype = numpy.dtype(INT_TYPECODE)
        nodes = numpy.asarray(members, dtype=dtype)
        if bool((nodes == target).any()):
            return False  # no simple path from the target to itself
        offsets = numpy.frombuffer(self._csr.offsets, dtype=dtype)
        neighbors = numpy.frombuffer(self._csr.neighbors, dtype=dtype)
        via = neighbors[offsets[nodes] + port]
        undecided = via != target
        if not bool(undecided.any()):
            return True
        if self._articulation_mask is None:
            mask = numpy.zeros(self._csr.num_nodes, dtype=bool)
            if self._articulation:
                mask[numpy.asarray(sorted(self._articulation), dtype=dtype)] = True
            self._articulation_mask = mask
        # removing a non-cut vertex keeps the graph connected, so only
        # articulation members still need the exact component comparison
        critical = undecided & self._articulation_mask[nodes]
        return all(
            self.same_component_without(w, target, v)
            for v, w in zip(nodes[critical].tolist(), via[critical].tolist())
        )

    def starts_simple_path(self, v: int, port: int, target: int) -> bool:
        """Whether ``port`` at ``v`` is the first port of a simple path ``v -> target``.

        The PE output-correctness condition: the neighbour ``w`` via ``port``
        either *is* the target, or stays connected to it once ``v`` is gone.
        """
        if v == target:
            return False
        w = self._csr.neighbor(v, port)
        if w == target:
            return True
        return self.same_component_without(w, target, v)
