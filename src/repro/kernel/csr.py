"""Flat compressed-sparse-row (CSR) view of a port-labeled graph.

A port-labeled graph stores, per node ``v`` of degree ``d``, the port table
``(neighbour, neighbour_port)`` for ports ``0..d-1``.  Because ports are
contiguous by the model's definition, the whole graph flattens into four int
arrays with *darts* (directed edge slots) as the unit:

* ``offsets[v] .. offsets[v+1]`` — the dart range of node ``v``;
* ``neighbors[offsets[v] + p]`` — the node reached from ``v`` via port ``p``;
* ``ports[i]`` — the outgoing port of dart ``i`` (i.e. ``i - offsets[v]``);
* ``reverse_ports[offsets[v] + p]`` — the port number on the far side.

Every hot loop of the kernel (refinement signatures, block-cut DFS, BFS,
message routing) walks these arrays instead of tuples-of-tuples, which avoids
one Python object dereference per edge visit.  The arrays use the standard
:mod:`array` module so the kernel stays dependency-free; :func:`as_numpy`
exposes zero-copy ``numpy`` views of them when numpy happens to be installed
(it is optional and never imported unless asked for), and :func:`from_numpy`
closes the round trip for numeric producers.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, Tuple

from .backend import active_backend, numpy_or_none

__all__ = ["CSRGraph", "build_csr", "bfs_distances_csr", "as_numpy", "from_numpy"]

#: array typecode for all kernel int arrays (signed, at least 32 bits).
INT_TYPECODE = "l"


class CSRGraph:
    """The flat-array encoding of one port-labeled graph.

    Instances are immutable by convention (the arrays are never written after
    construction) and are memoised per graph by
    :meth:`repro.portgraph.graph.PortLabeledGraph.csr`.
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "offsets",
        "neighbors",
        "reverse_ports",
        "_ports",
        "_twin_darts",
    )

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        offsets: array,
        neighbors: array,
        reverse_ports: array,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.offsets = offsets
        self.neighbors = neighbors
        self.reverse_ports = reverse_ports
        self._ports = None  # built on first access; no hot path reads it
        self._twin_darts = None  # built on first access (message routing)

    @property
    def ports(self) -> array:
        """Outgoing port of every dart: ``ports[offsets[v] + p] == p``.

        Derivable from ``offsets`` alone, so it is materialised lazily — the
        kernel's hot loops (refinement, block-cut DFS, BFS, message routing)
        never read it; it exists for dart-indexed consumers such as
        :func:`as_numpy`.
        """
        if self._ports is None:
            ports = array(INT_TYPECODE, [0] * self.offsets[self.num_nodes])
            for v in range(self.num_nodes):
                for p in range(self.offsets[v], self.offsets[v + 1]):
                    ports[p] = p - self.offsets[v]
            self._ports = ports
        return self._ports

    @property
    def twin_darts(self) -> array:
        """The dart involution: ``twin[offsets[v] + p]`` is the dart back.

        ``twin[dart] = offsets[neighbors[dart]] + reverse_ports[dart]`` — a
        message sent out of ``dart`` arrives in dart ``twin[dart]``'s inbox
        slot.  Materialised lazily (only message routing reads it), with
        numpy when available since it is one fancy-indexed add over all
        darts; the stored result is the same :mod:`array` value either way.
        """
        if self._twin_darts is None:
            numpy = numpy_or_none()
            if numpy is not None:
                views = as_numpy(self)
                twins_np = views["offsets"][views["neighbors"]] + views["reverse_ports"]
                twins = array(INT_TYPECODE)
                twins.frombytes(twins_np.astype(numpy.dtype(INT_TYPECODE), copy=False).tobytes())
            else:
                offsets = self.offsets
                neighbors = self.neighbors
                reverse_ports = self.reverse_ports
                twins = array(
                    INT_TYPECODE,
                    [
                        offsets[neighbors[dart]] + reverse_ports[dart]
                        for dart in range(len(neighbors))
                    ],
                )
            self._twin_darts = twins
        return self._twin_darts

    def nbytes(self) -> int:
        """Exact footprint of the materialised arrays (bytes)."""
        total = 0
        for arr in (self.offsets, self.neighbors, self.reverse_ports):
            total += len(arr) * arr.itemsize
        if self._ports is not None:
            total += len(self._ports) * self._ports.itemsize
        if self._twin_darts is not None:
            total += len(self._twin_darts) * self._twin_darts.itemsize
        return total

    # ------------------------------------------------------------------ #
    def degree(self, v: int) -> int:
        return self.offsets[v + 1] - self.offsets[v]

    def endpoint(self, v: int, port: int) -> Tuple[int, int]:
        """``(u, q)``: the neighbour via ``port`` at ``v`` and the port back."""
        dart = self.offsets[v] + port
        return self.neighbors[dart], self.reverse_ports[dart]

    def neighbor(self, v: int, port: int) -> int:
        return self.neighbors[self.offsets[v] + port]

    def neighbor_slice(self, v: int) -> array:
        """The port-ordered neighbours of ``v`` as an array slice."""
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    # ------------------------------------------------------------------ #
    def patched(self, result) -> "CSRGraph":
        """The mutated graph's CSR view, patched from this one (the edit API).

        ``result`` is a :class:`repro.portgraph.delta.DeltaResult` whose
        delta was applied to the graph these arrays encode.  Instead of
        re-flattening the whole adjacency (:func:`build_csr`'s O(m) python
        loop), rows of nodes the delta did not touch are *slice-copied* from
        this instance's arrays (a C-level memcpy per row); only touched rows
        — and rows adjacent to a renamed handle, whose neighbour ids must be
        rewritten — are rebuilt entry-by-entry.  The returned view is a
        fresh instance, so this one's arrays and its lazily-built
        ``ports`` / ``twin_darts`` memos are untouched (delta consumers
        invalidate those implicitly by starting from a clean instance; the
        kernel-level memos are carried or dropped by
        :meth:`repro.kernel.GraphKernel.derived`).

        Byte-identical to ``build_csr(result.graph)`` — certified by the
        delta equivalence suite.
        """
        graph = result.graph
        node_map = result.node_map
        n = graph.num_nodes
        base_offsets = self.offsets
        base_neighbors = self.neighbors
        base_reverse = self.reverse_ports

        rebuild = set(result.touched)
        for new_id in result.renamed.values():
            # rows referencing a renamed handle hold stale neighbour ids
            for u, _q in graph.adjacency(new_id):
                rebuild.add(u)

        # Identity fast path: no handles added, removed or renamed, so node
        # ``v`` maps to base node ``v`` and untouched spans between touched
        # rows are contiguous in *both* dart arrays.  Copy the base arrays
        # wholesale (C memcpy), shift the offsets suffix per degree change,
        # and rewrite only the touched rows — O(touched + shifts), not O(n).
        if not result.renamed and n == self.num_nodes and -1 not in node_map:
            order = sorted(rebuild)
            offsets = array(INT_TYPECODE, base_offsets)
            shifts = []
            for v in order:
                delta = graph.degree(v) - (base_offsets[v + 1] - base_offsets[v])
                if delta:
                    shifts.append((v, delta))
            if shifts:
                numpy = numpy_or_none()
                if numpy is not None:
                    off_np = numpy.frombuffer(offsets, dtype=numpy.dtype(INT_TYPECODE))
                    for v, delta in shifts:
                        off_np[v + 1 :] += delta
                else:
                    bounds = shifts + [(n, 0)]
                    cumulative = 0
                    for (v, delta), (nxt, _d) in zip(bounds, bounds[1:]):
                        cumulative += delta
                        for i in range(v + 1, nxt + 1):
                            offsets[i] += cumulative
            total = offsets[n]
            neighbors = array(INT_TYPECODE, bytes(total * base_neighbors.itemsize))
            reverse_ports = array(INT_TYPECODE, bytes(total * base_reverse.itemsize))
            prev = 0
            for v in order + [n]:
                if prev < v:
                    dst_lo, dst_hi = offsets[prev], offsets[v]
                    src_lo, src_hi = base_offsets[prev], base_offsets[v]
                    neighbors[dst_lo:dst_hi] = base_neighbors[src_lo:src_hi]
                    reverse_ports[dst_lo:dst_hi] = base_reverse[src_lo:src_hi]
                if v < n:
                    start = offsets[v]
                    for p, (u, q) in enumerate(graph.adjacency(v)):
                        neighbors[start + p] = u
                        reverse_ports[start + p] = q
                prev = v + 1
            return CSRGraph(n, total // 2, offsets, neighbors, reverse_ports)

        offsets = array(INT_TYPECODE, [0] * (n + 1))
        total = 0
        for v in range(n):
            offsets[v] = total
            total += graph.degree(v)
        offsets[n] = total
        neighbors = array(INT_TYPECODE, [0] * total)
        reverse_ports = array(INT_TYPECODE, [0] * total)
        for v in range(n):
            base = offsets[v]
            if v in rebuild:
                for p, (u, q) in enumerate(graph.adjacency(v)):
                    neighbors[base + p] = u
                    reverse_ports[base + p] = q
            else:
                b = node_map[v]
                lo, hi = base_offsets[b], base_offsets[b + 1]
                end = base + (hi - lo)
                neighbors[base:end] = base_neighbors[lo:hi]
                reverse_ports[base:end] = base_reverse[lo:hi]
        return CSRGraph(n, total // 2, offsets, neighbors, reverse_ports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CSRGraph n={self.num_nodes} m={self.num_edges}>"


def build_csr(graph) -> CSRGraph:
    """Flatten a :class:`~repro.portgraph.graph.PortLabeledGraph` into CSR arrays."""
    n = graph.num_nodes
    offsets = array(INT_TYPECODE, [0] * (n + 1))
    total = 0
    for v in range(n):
        offsets[v] = total
        total += graph.degree(v)
    offsets[n] = total
    neighbors = array(INT_TYPECODE, [0] * total)
    reverse_ports = array(INT_TYPECODE, [0] * total)
    for v in range(n):
        base = offsets[v]
        for p, (u, q) in enumerate(graph.adjacency(v)):
            neighbors[base + p] = u
            reverse_ports[base + p] = q
    return CSRGraph(n, total // 2, offsets, neighbors, reverse_ports)


def _bfs_distances_python(csr: CSRGraph, source: int) -> array:
    dist = array(INT_TYPECODE, [-1] * csr.num_nodes)
    dist[source] = 0
    offsets = csr.offsets
    neighbors = csr.neighbors
    queue = deque([source])
    while queue:
        v = queue.popleft()
        next_dist = dist[v] + 1
        for i in range(offsets[v], offsets[v + 1]):
            u = neighbors[i]
            if dist[u] < 0:
                dist[u] = next_dist
                queue.append(u)
    return dist


def _bfs_distances_numpy(csr: CSRGraph, source: int) -> array:
    """Frontier-at-once BFS: each level is one batch of array operations.

    The whole frontier's dart ranges are expanded in one ragged-arange step,
    every target inspected with one mask.  Hop distances are unique per node
    whatever the traversal order, so the result is byte-identical to the
    queue-based python walk.
    """
    numpy = numpy_or_none()
    views = as_numpy(csr)
    offsets = views["offsets"]
    neighbors = views["neighbors"]
    dtype = numpy.dtype(INT_TYPECODE)
    dist = numpy.full(csr.num_nodes, -1, dtype=dtype)
    dist[source] = 0
    frontier = numpy.asarray([source], dtype=dtype)
    level = 0
    while frontier.size:
        level += 1
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # ragged arange: concatenate(arange(start_i, start_i + count_i))
        bases = numpy.repeat(starts, counts)
        resets = numpy.repeat(numpy.cumsum(counts) - counts, counts)
        targets = neighbors[bases + (numpy.arange(total, dtype=dtype) - resets)]
        fresh = targets[dist[targets] < 0]
        if fresh.size == 0:
            break
        frontier = numpy.unique(fresh)
        dist[frontier] = level
    out = array(INT_TYPECODE)
    out.frombytes(dist.tobytes())
    return out


def bfs_distances_csr(csr: CSRGraph, source: int) -> array:
    """Hop distances from ``source`` to every node (-1 if unreachable).

    Dispatches on the active kernel backend; both implementations return the
    same :mod:`array` value.
    """
    if active_backend() == "numpy":
        return _bfs_distances_numpy(csr, source)
    return _bfs_distances_python(csr, source)


def as_numpy(csr: CSRGraph) -> Dict[str, "object"]:
    """Zero-copy numpy views of the CSR arrays, if numpy is installed.

    The returned arrays share memory with the :mod:`array` buffers (no copy,
    no conversion), so the bridge is free at any graph size.  Treat them as
    read-only: the CSR encoding is immutable by convention.  Raises
    ``RuntimeError`` when numpy is unavailable — the kernel itself never
    needs it.
    """
    numpy = numpy_or_none()
    if numpy is None:
        raise RuntimeError("numpy is not installed; the kernel runs on the array module")
    dtype = numpy.dtype(INT_TYPECODE)
    return {
        "offsets": numpy.frombuffer(csr.offsets, dtype=dtype),
        "neighbors": numpy.frombuffer(csr.neighbors, dtype=dtype),
        "ports": numpy.frombuffer(csr.ports, dtype=dtype),
        "reverse_ports": numpy.frombuffer(csr.reverse_ports, dtype=dtype),
    }


def from_numpy(arrays: Dict[str, "object"]) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` from numpy CSR arrays (the bridge back).

    Accepts the mapping shape :func:`as_numpy` produces — ``offsets``,
    ``neighbors`` and ``reverse_ports`` are required, ``ports`` is ignored
    (it is derivable) — so ``from_numpy(as_numpy(csr))`` round-trips to an
    equal graph.  Integer dtypes are cast as needed; the constructed graph
    owns fresh :mod:`array` buffers and is independent of the inputs.
    """
    numpy = numpy_or_none()
    if numpy is None:
        raise RuntimeError("numpy is not installed; the kernel runs on the array module")
    dtype = numpy.dtype(INT_TYPECODE)

    def as_array(name: str) -> array:
        values = numpy.ascontiguousarray(arrays[name]).astype(dtype, copy=False)
        if values.ndim != 1:
            raise ValueError(f"{name} must be one-dimensional")
        out = array(INT_TYPECODE)
        out.frombytes(values.tobytes())
        return out

    offsets = as_array("offsets")
    neighbors = as_array("neighbors")
    reverse_ports = as_array("reverse_ports")
    if len(offsets) == 0:
        raise ValueError("offsets must contain at least the terminating sentinel")
    num_nodes = len(offsets) - 1
    if offsets[0] != 0 or offsets[num_nodes] != len(neighbors):
        raise ValueError("offsets do not describe the dart range of neighbors")
    if len(neighbors) != len(reverse_ports):
        raise ValueError("neighbors and reverse_ports must have one entry per dart")
    return CSRGraph(num_nodes, len(neighbors) // 2, offsets, neighbors, reverse_ports)
