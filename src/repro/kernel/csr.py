"""Flat compressed-sparse-row (CSR) view of a port-labeled graph.

A port-labeled graph stores, per node ``v`` of degree ``d``, the port table
``(neighbour, neighbour_port)`` for ports ``0..d-1``.  Because ports are
contiguous by the model's definition, the whole graph flattens into four int
arrays with *darts* (directed edge slots) as the unit:

* ``offsets[v] .. offsets[v+1]`` — the dart range of node ``v``;
* ``neighbors[offsets[v] + p]`` — the node reached from ``v`` via port ``p``;
* ``ports[i]`` — the outgoing port of dart ``i`` (i.e. ``i - offsets[v]``);
* ``reverse_ports[offsets[v] + p]`` — the port number on the far side.

Every hot loop of the kernel (refinement signatures, block-cut DFS, BFS,
message routing) walks these arrays instead of tuples-of-tuples, which avoids
one Python object dereference per edge visit.  The arrays use the standard
:mod:`array` module so the kernel stays dependency-free; :func:`as_numpy`
exposes them as ``numpy`` arrays when numpy happens to be installed (it is
optional and never imported unless asked for).
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, Tuple

__all__ = ["CSRGraph", "build_csr", "bfs_distances_csr", "as_numpy"]

#: array typecode for all kernel int arrays (signed, at least 32 bits).
INT_TYPECODE = "l"


class CSRGraph:
    """The flat-array encoding of one port-labeled graph.

    Instances are immutable by convention (the arrays are never written after
    construction) and are memoised per graph by
    :meth:`repro.portgraph.graph.PortLabeledGraph.csr`.
    """

    __slots__ = ("num_nodes", "num_edges", "offsets", "neighbors", "reverse_ports", "_ports")

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        offsets: array,
        neighbors: array,
        reverse_ports: array,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.offsets = offsets
        self.neighbors = neighbors
        self.reverse_ports = reverse_ports
        self._ports = None  # built on first access; no hot path reads it

    @property
    def ports(self) -> array:
        """Outgoing port of every dart: ``ports[offsets[v] + p] == p``.

        Derivable from ``offsets`` alone, so it is materialised lazily — the
        kernel's hot loops (refinement, block-cut DFS, BFS, message routing)
        never read it; it exists for dart-indexed consumers such as
        :func:`as_numpy`.
        """
        if self._ports is None:
            ports = array(INT_TYPECODE, [0] * self.offsets[self.num_nodes])
            for v in range(self.num_nodes):
                for p in range(self.offsets[v], self.offsets[v + 1]):
                    ports[p] = p - self.offsets[v]
            self._ports = ports
        return self._ports

    def nbytes(self) -> int:
        """Exact footprint of the materialised arrays (bytes)."""
        total = 0
        for arr in (self.offsets, self.neighbors, self.reverse_ports):
            total += len(arr) * arr.itemsize
        if self._ports is not None:
            total += len(self._ports) * self._ports.itemsize
        return total

    # ------------------------------------------------------------------ #
    def degree(self, v: int) -> int:
        return self.offsets[v + 1] - self.offsets[v]

    def endpoint(self, v: int, port: int) -> Tuple[int, int]:
        """``(u, q)``: the neighbour via ``port`` at ``v`` and the port back."""
        dart = self.offsets[v] + port
        return self.neighbors[dart], self.reverse_ports[dart]

    def neighbor(self, v: int, port: int) -> int:
        return self.neighbors[self.offsets[v] + port]

    def neighbor_slice(self, v: int) -> array:
        """The port-ordered neighbours of ``v`` as an array slice."""
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CSRGraph n={self.num_nodes} m={self.num_edges}>"


def build_csr(graph) -> CSRGraph:
    """Flatten a :class:`~repro.portgraph.graph.PortLabeledGraph` into CSR arrays."""
    n = graph.num_nodes
    offsets = array(INT_TYPECODE, [0] * (n + 1))
    total = 0
    for v in range(n):
        offsets[v] = total
        total += graph.degree(v)
    offsets[n] = total
    neighbors = array(INT_TYPECODE, [0] * total)
    reverse_ports = array(INT_TYPECODE, [0] * total)
    for v in range(n):
        base = offsets[v]
        for p, (u, q) in enumerate(graph.adjacency(v)):
            neighbors[base + p] = u
            reverse_ports[base + p] = q
    return CSRGraph(n, total // 2, offsets, neighbors, reverse_ports)


def bfs_distances_csr(csr: CSRGraph, source: int) -> array:
    """Hop distances from ``source`` to every node (-1 if unreachable)."""
    dist = array(INT_TYPECODE, [-1] * csr.num_nodes)
    dist[source] = 0
    offsets = csr.offsets
    neighbors = csr.neighbors
    queue = deque([source])
    while queue:
        v = queue.popleft()
        next_dist = dist[v] + 1
        for i in range(offsets[v], offsets[v + 1]):
            u = neighbors[i]
            if dist[u] < 0:
                dist[u] = next_dist
                queue.append(u)
    return dist


def as_numpy(csr: CSRGraph) -> Dict[str, "object"]:
    """The CSR arrays as numpy arrays, if numpy is installed.

    Raises ``RuntimeError`` when numpy is unavailable — the kernel itself
    never needs it; this is a convenience for downstream numeric consumers.
    """
    try:
        import numpy
    except ImportError as error:  # pragma: no cover - depends on environment
        raise RuntimeError("numpy is not installed; the kernel runs on the array module") from error
    return {
        "offsets": numpy.asarray(csr.offsets),
        "neighbors": numpy.asarray(csr.neighbors),
        "ports": numpy.asarray(csr.ports),
        "reverse_ports": numpy.asarray(csr.reverse_ports),
    }
