"""The flat-array (CSR) compute kernel shared by the hot paths.

Every quantitative claim of the paper funnels through three computations:
view-equivalence refinement (ψ_S, feasibility, the twin queries of Lemmas
2.8/3.6/4.6), the simple-path reachability checks behind ψ_PE, and the joint
common-sequence searches behind ψ_PPE/ψ_CPPE.  This package is their common
low-level substrate:

* :mod:`repro.kernel.csr` — the flat compressed-sparse-row encoding of a
  port-labeled graph (``offsets`` / ``neighbors`` / ``ports`` /
  ``reverse_ports`` int arrays) plus array-level BFS.  Built lazily and
  memoised per graph via :meth:`repro.portgraph.graph.PortLabeledGraph.csr`.
* :mod:`repro.kernel.refine` — incremental worklist partition refinement on
  CSR: after the first pass only nodes adjacent to classes that split are
  re-signatured, and inverse indexes (class → members, per-depth unique-node
  lists) make the class queries O(1)/O(output).
* :mod:`repro.kernel.backend` / :mod:`repro.kernel.refine_numpy` — runtime
  selection of a vectorised numpy twin of the hot loops (refinement,
  BFS, block-cut prefilters, inbox routing).  Byte-identical results on
  both backends; numpy stays an optional extra, selected via
  ``REPRO_KERNEL_BACKEND`` / :func:`set_backend` and defaulting to
  numpy-when-importable.  Construct engines via :func:`make_refinement` /
  :func:`refinement_from_stored` so the choice applies.
* :mod:`repro.kernel.blockcut` — one block-cut-tree (biconnected components)
  DFS per graph, answering every "does port ``p`` at ``v`` start a simple
  path to the leader?" query of ψ_PE without a per-removed-node BFS.
* :class:`GraphKernel` — the per-graph bundle of all of the above, stored in
  the runner's :class:`~repro.runner.cache.RefinementCache` entries so warm
  sweeps skip refinement *and* block-cut-tree construction.

The kernel sits directly above :mod:`repro.portgraph` in the layer diagram;
:mod:`repro.views`, :mod:`repro.core` and :mod:`repro.sim` build on it.
"""

from .backend import (
    BACKEND_ENV_VAR,
    active_backend,
    numpy_available,
    resolve_backend,
    set_backend,
    use_backend,
)
from .blockcut import BlockCutTree
from .csr import CSRGraph, as_numpy, bfs_distances_csr, build_csr, from_numpy
from .refine import (
    CSRPartitionRefinement,
    make_refinement,
    refinement_delta,
    refinement_from_stored,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "CSRGraph",
    "build_csr",
    "bfs_distances_csr",
    "as_numpy",
    "from_numpy",
    "CSRPartitionRefinement",
    "make_refinement",
    "refinement_from_stored",
    "refinement_delta",
    "BlockCutTree",
    "GraphKernel",
    "active_backend",
    "numpy_available",
    "resolve_backend",
    "set_backend",
    "use_backend",
]


class GraphKernel:
    """Lazily-built kernel objects of one graph, memoised together.

    One instance per exact graph lives in each
    :class:`~repro.runner.cache.CacheEntry`, so every layer that asks the
    shared cache for kernel state (ψ_PE's block-cut queries, ψ_PPE/ψ_CPPE's
    distance-to-leader pruning, the sim engine's flat inboxes) reuses one
    CSR view, one block-cut tree and one BFS distance array per source.
    """

    __slots__ = ("graph", "_blockcut", "_distances")

    def __init__(self, graph) -> None:
        self.graph = graph
        self._blockcut = None
        self._distances = {}

    @classmethod
    def derived(cls, graph, base_kernel, *, topology_changed: bool) -> "GraphKernel":
        """A kernel for a delta-derived graph, carrying what stays valid.

        Selective invalidation of the memoised kernel objects: when the
        delta only relabeled ports (``topology_changed=False``, node handles
        and the edge set unchanged) the base's BFS distance arrays are pure
        topology facts and carry over verbatim, and the block-cut tree's
        O(n) DFS structure carries via :meth:`BlockCutTree.rebound` (its
        port queries read the new CSR at query time).  Any topology change
        drops both — they are rebuilt lazily on first use.
        """
        kernel = cls(graph)
        if not topology_changed:
            kernel._distances = dict(base_kernel._distances)
            if base_kernel._blockcut is not None:
                kernel._blockcut = base_kernel._blockcut.rebound(graph.csr())
        return kernel

    @property
    def csr(self) -> CSRGraph:
        """The graph's CSR view (memoised on the graph instance itself)."""
        return self.graph.csr()

    def block_cut_tree(self) -> BlockCutTree:
        """The graph's block-cut tree (built on first request)."""
        if self._blockcut is None:
            self._blockcut = BlockCutTree(self.csr)
        return self._blockcut

    def distances_from(self, source: int):
        """BFS hop distances from ``source`` to every node (memoised array)."""
        cached = self._distances.get(source)
        if cached is None:
            cached = bfs_distances_csr(self.csr, source)
            self._distances[source] = cached
        return cached

    def estimated_bytes(self) -> int:
        """Rough retained footprint of the kernel objects (bytes).

        The CSR arrays are counted exactly; the block-cut tree is charged at
        a flat per-node rate (its arrays and maps are all O(n)).  Feeds the
        runner cache's eviction accounting.
        """
        total = self.graph.csr().nbytes()
        if self._blockcut is not None:
            total += 48 * self.graph.num_nodes
        for distances in self._distances.values():
            total += len(distances) * distances.itemsize
        return total
