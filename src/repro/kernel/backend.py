"""Runtime selection of the kernel compute backend (pure python vs numpy).

The kernel has two interchangeable implementations of its hot loops:

* the **python** backend -- the original, dependency-free ``array``-module
  code paths (incremental worklist refinement, deque BFS, per-member
  block-cut queries, per-dart inbox scans);
* the **numpy** backend -- the same computations expressed as dense array
  operations (full-width ``lexsort``/boundary signature grouping per
  refinement pass, frontier-at-once BFS masking, vectorised block-cut
  prefilters, fancy-indexed inbox stamping).

Both backends are *byte-identical* in everything observable: canonical
colour tables, class counts, stable depths, ψ_Z values, advice bits and
store record bytes.  The backend therefore only ever changes *speed*, never
answers, which is what lets the rest of the library (cache, store, runner,
service) stay backend-agnostic -- certified by the three-way equivalence
matrix in ``tests/test_kernel_equivalence.py`` and the property suite in
``tests/test_kernel_backends.py``.

Selection rules (cheapest thing that propagates to worker processes):

* :func:`set_backend` pins ``"python"`` / ``"numpy"`` or restores
  ``"auto"``; it also exports ``REPRO_KERNEL_BACKEND`` so spawn-context
  worker processes (the runner's pool initializer, the service's shard
  workers) resolve the same choice without extra plumbing.
* With no pin, the ``REPRO_KERNEL_BACKEND`` environment variable decides.
* ``"auto"`` (the default everywhere) means *numpy when importable*,
  python otherwise -- numpy stays an optional extra
  (``pip install repro-leader-election[fast]``).

Forcing ``"numpy"`` where numpy is not installed raises immediately rather
than degrading silently: a benchmark asked to measure the numpy backend
must never quietly time the python one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "BACKEND_ENV_VAR",
    "active_backend",
    "numpy_available",
    "numpy_or_none",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted when no backend was pinned in-process.
#: Values: ``auto`` (default), ``python``, ``numpy``.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

_CHOICES = ("auto", "python", "numpy")

#: In-process pin from :func:`set_backend` (``None`` = fall back to the env).
_forced: Optional[str] = None

#: Memoised numpy module (or ``False`` after a failed import attempt).
_numpy = None


def numpy_or_none():
    """The ``numpy`` module if importable, else ``None`` (memoised)."""
    global _numpy
    if _numpy is None:
        try:
            import numpy
        except ImportError:
            _numpy = False
        else:
            _numpy = numpy
    return _numpy or None


def numpy_available() -> bool:
    """Whether the numpy backend can be selected in this process."""
    return numpy_or_none() is not None


def _validated(name: str) -> str:
    if name not in _CHOICES:
        raise ValueError(
            f"unknown kernel backend {name!r} (choose one of {', '.join(_CHOICES)})"
        )
    return name


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a requested backend name to ``"python"`` or ``"numpy"``.

    ``None`` means "whatever is currently selected": the in-process pin if
    :func:`set_backend` was called, else :data:`BACKEND_ENV_VAR`, else
    ``auto``.  Raises :class:`RuntimeError` when ``numpy`` is demanded but
    not installed, and :class:`ValueError` on unknown names.
    """
    if name is None:
        name = _forced if _forced is not None else os.environ.get(BACKEND_ENV_VAR, "auto")
    name = _validated(name)
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy" and not numpy_available():
        raise RuntimeError(
            "kernel backend 'numpy' requested but numpy is not installed "
            "(pip install repro-leader-election[fast])"
        )
    return name


def active_backend() -> str:
    """The backend new kernel objects will use: ``"python"`` or ``"numpy"``.

    Note the binding is per *object*: a refinement engine built while numpy
    was active keeps its vectorised code paths even if the selection later
    changes, exactly as a python-backend engine keeps its loops.
    """
    try:
        return resolve_backend(None)
    except RuntimeError:
        # an impossible env-var demand (numpy forced, not installed) fails
        # loudly when explicitly resolved; implicit consumers degrade
        return "python"


def set_backend(name: str) -> str:
    """Pin the kernel backend process-wide; returns the resolved name.

    ``"auto"`` restores the default resolution.  The choice is exported via
    :data:`BACKEND_ENV_VAR` so worker processes spawned afterwards (runner
    pool workers, service shards) inherit it.
    """
    global _forced
    resolved = resolve_backend(_validated(name))
    _forced = name
    os.environ[BACKEND_ENV_VAR] = name
    return resolved


@contextmanager
def use_backend(name: str):
    """Context manager: pin a backend, restore the previous selection after.

    Used by the dual-backend test matrix and the benchmark harness to build
    kernel objects under each backend in one process.
    """
    global _forced
    previous_forced = _forced
    previous_env = os.environ.get(BACKEND_ENV_VAR)
    try:
        yield set_backend(name)
    finally:
        _forced = previous_forced
        if previous_env is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous_env
