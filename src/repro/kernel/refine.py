"""Incremental worklist partition refinement on CSR arrays.

The view-equivalence partitions of a port-labeled graph (depth-``h`` classes
= equal truncated views ``B^h``) are computed by iterated signature
refinement: the depth-``h`` class of ``v`` is determined by its depth-(h-1)
class together with the port-ordered ``(incoming port, neighbour's class)``
pairs.  The naive scheme re-signatures *every* node at *every* depth —
O((n + m) · h) with a large constant, because each signature allocates a
nested tuple.

This engine is incremental in the style of Hopcroft / Paige–Tarjan.  Classes
carry stable ids across depths; when a class splits, one fragment (the
largest — the deterministic "retained" fragment) keeps the id and only the
members of the *other* fragments enter the worklist.  A pass then
re-signatures exactly the classes containing a worklist node or one of its
CSR neighbours, skipping singletons (they can never split):

* a class none of whose members or members' neighbours changed class cannot
  split — restricted to that neighbourhood, the partition is literally the
  same equivalence relation as one depth earlier;
* a neighbour that stayed in the *retained* fragment of its old class kept
  its class id, so signatures referencing it are unchanged — which is why
  retained-fragment members may be excluded from the worklist (two
  same-class neighbours both in retained fragments of one old class are
  still in one class).

On rapidly-discretising graphs every pass touches everything and the cost
matches a full sweep minus the already-discrete regions; on slowly
stabilising graphs (long quasi-symmetric cycles and paths) a pass touches
only the O(Δ)-sized frontier where classes are still splitting, turning the
O((n + m) · n) worst case into O(n + m + total churn).

Colours are materialised per depth as raw id arrays (an O(n) C-level copy
per pass) and canonicalised lazily — renumbered 0..c-1 by first appearance
in node order — only for depths actually queried, which keeps the public
colour lists byte-identical to the classic full-sweep implementation.
Inverse indexes (``members_at``: class → node list, ``unique_at``) are also
built lazily per depth and cached, so class/twin/uniqueness queries are
O(1) / O(output) after a one-off O(n) build per queried depth.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from .csr import INT_TYPECODE, CSRGraph

__all__ = [
    "CSRPartitionRefinement",
    "make_refinement",
    "refinement_from_stored",
    "refinement_delta",
]


class CSRPartitionRefinement:
    """Lazy per-depth view-equivalence partitions of one CSR graph.

    The partitions (and the canonical colour numberings exposed by
    :meth:`colors_at`) are exactly those of the classic full-sweep
    refinement; only the work per pass is reduced to the neighbourhood of the
    previous pass's splits.
    """

    __slots__ = (
        "_csr",
        "_raw",
        "_num_classes",
        "_current_members",
        "_class_size",
        "_next_id",
        "_changed",
        "_stable_depth",
        "_passes",
        "_canonical",
        "_members",
        "_unique",
    )

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr
        n = csr.num_nodes
        offsets = csr.offsets
        initial = array(INT_TYPECODE, [0] * n)
        mapping: Dict[int, int] = {}
        members: Dict[int, List[int]] = {}
        for v in range(n):
            degree = offsets[v + 1] - offsets[v]
            color = mapping.get(degree)
            if color is None:
                color = len(mapping)
                mapping[degree] = color
                members[color] = []
            initial[v] = color
            members[color].append(v)
        #: raw (stable-id) colour arrays per depth.
        self._raw: List[array] = [initial]
        self._num_classes: List[int] = [len(mapping)]
        #: live class id -> member list.  Lists may contain *stale* entries
        #: (nodes split off to a fresh id since): a node v is a live member
        #: of d iff the latest raw colours say so.  Stale entries are
        #: filtered on touch and compacted when they outnumber live ones.
        self._current_members = members
        #: live class id -> exact live member count.
        self._class_size: Dict[int, int] = {d: len(group) for d, group in members.items()}
        self._next_id = len(mapping)
        #: worklist: members of non-retained fragments of the latest pass.
        #: ``None`` means "everything" (before the first pass).
        self._changed: Optional[List[int]] = None
        self._stable_depth: Optional[int] = None
        self._passes = 0
        #: lazily-built per-depth views: canonical colours, class -> members,
        #: unique-node lists.
        self._canonical: Dict[int, array] = {}
        self._members: Dict[int, List[List[int]]] = {}
        self._unique: Dict[int, List[int]] = {}
        if n == 1 or self._num_classes[0] == n:
            self._stable_depth = 0

    @classmethod
    def from_stored(
        cls,
        csr: CSRGraph,
        tables: "List[List[int]]",
        stable_depth: int,
    ) -> "CSRPartitionRefinement":
        """An engine pre-loaded with partitions computed by an earlier process.

        ``tables`` must be *canonical* colour tables (ids ``0..c-1`` by first
        appearance in node order, exactly what :meth:`colors_at` returns) for
        depths ``0..len(tables)-1``, with ``stable_depth <= len(tables)-1``
        the refinement fixpoint.  The loaded engine answers every depth query
        from the installed tables and, because the fixpoint is known, never
        runs a refinement pass: :attr:`passes` stays ``0``, which is what
        lets the store-warm CI gate certify that a cold process replaying a
        sweep from the artifact store performs zero refinement work.
        """
        n = csr.num_nodes
        if stable_depth < 0 or len(tables) < stable_depth + 1:
            raise ValueError("tables must cover depths 0..stable_depth")
        engine = cls(csr)
        raw: List[array] = []
        num_classes: List[int] = []
        for table in tables:
            if len(table) != n:
                raise ValueError("each colour table must have one entry per node")
            arr = array(INT_TYPECODE, table)
            raw.append(arr)
            num_classes.append((max(arr) + 1) if n else 0)
        members: Dict[int, List[int]] = {}
        last = raw[-1]
        for v in range(n):
            group = members.get(last[v])
            if group is None:
                members[last[v]] = [v]
            else:
                group.append(v)
        engine._raw = raw
        engine._num_classes = num_classes
        engine._current_members = members
        engine._class_size = {c: len(group) for c, group in members.items()}
        engine._next_id = num_classes[-1]
        engine._changed = []
        engine._stable_depth = stable_depth
        engine._passes = 0
        engine._canonical = {}
        engine._members = {}
        engine._unique = {}
        return engine

    # ------------------------------------------------------------------ #
    @property
    def csr(self) -> CSRGraph:
        return self._csr

    @property
    def passes(self) -> int:
        return self._passes

    @property
    def stable_depth(self) -> Optional[int]:
        return self._stable_depth

    @property
    def computed_depth(self) -> int:
        """Deepest depth whose partition has been materialised."""
        return len(self._raw) - 1

    @property
    def class_counts(self) -> Tuple[int, ...]:
        """Class counts of every materialised depth (0..computed_depth)."""
        return tuple(self._num_classes)

    # ------------------------------------------------------------------ #
    def apply_delta(self, csr: CSRGraph, node_map, touched) -> "CSRPartitionRefinement":
        """Re-refine an edited graph by replaying only the dirtied classes.

        ``self`` is the (stable or stabilisable) engine of the *base* graph;
        ``csr`` encodes the mutated graph, ``node_map`` maps its handles back
        to base handles (``-1`` for fresh nodes) and ``touched`` lists the
        handles whose port tables the edit changed — exactly the fields of a
        :class:`repro.portgraph.delta.DeltaResult`.  Returns a **new** engine
        for the mutated graph; the base engine is not modified.

        Naively re-seeding this engine's own worklist would be unsound: one
        engine's partitions only ever *split* across depths, but an edit can
        make the mutated graph's partition at some depth **coarser** than the
        base's (classes merge).  Instead the replay rebuilds each depth's
        partition from two provably-exact sources:

        * a node is *dirty at depth h* iff its radius-``h`` ball contains a
          touched node (the dirty set grows one hop per depth).  A **clean**
          node's depth-``h`` truncated view is isomorphic to its base
          counterpart's, so clean nodes inherit the base partition verbatim:
          their label is the base raw colour at depth ``min(h, base stable)``
          pulled through ``node_map``;
        * **dirty** nodes are re-signatured against the depth-(h-1) labels —
          the true partition by induction — and either matched to a clean
          class via one representative signature probe per candidate class,
          or grouped among themselves under fresh (negative) ids.

        After each depth a *conformance certificate* is attempted: the
        depth's partition equals the base partition pulled through
        ``node_map`` (plus one singleton class per delta-created node) iff
        every matched dirty node landed on its own base label and every
        fresh class corresponds member-for-member to one base class.  When
        the certificate holds, the depth's table is (re)labeled to the base
        labeling — for an identity ``node_map`` the base array is aliased
        outright — and the dirty ball collapses back to the touched set:
        only a changed port table can make the *next* depth's signature
        deviate from a conforming labeling.  Local edits therefore replay
        in O(|touched|) per depth instead of O(ball), which is what the
        delta-vs-cold speedup gate in ``bench_pr10_delta`` measures.

        Since first-appearance canonicalisation is a pure function of the
        partition, every ``colors_at`` table of the returned engine is
        byte-identical to a cold full refinement of the mutated graph; the
        certified equivalence matrix in the delta test suite pins this.
        Replayed passes count toward :attr:`passes` (one per depth): delta
        recompute is real refinement work, unlike a store restore.
        """
        engine = CSRPartitionRefinement(csr)
        if engine._stable_depth is not None:
            return engine  # single node or already-discrete depth 0
        self.ensure_stable()
        base_stable = self.stable_depth
        # normalise to stdlib arrays lazily: a numpy base engine (delegating
        # here) holds numpy tables, which lack the C-level index/count scans
        # the replay leans on, and most replays touch few distinct depths
        base_tables = self._raw
        norm_cache: Dict[int, array] = {}

        def base_raw(d: int) -> array:
            t = base_tables[d]
            if isinstance(t, array):
                return t
            got = norm_cache.get(d)
            if got is None:
                got = norm_cache[d] = array(INT_TYPECODE, t.tolist())
            return got

        n = csr.num_nodes
        offsets = csr.offsets
        neighbors = csr.neighbors
        reverse_ports = csr.reverse_ports

        base_counts = self._num_classes
        # identity transport: same handles, no joins/leaves — base tables can
        # be aliased verbatim on conforming depths (zero copies)
        identity = n == self._csr.num_nodes and all(
            m == v for v, m in enumerate(node_map)
        )

        touched_list: List[int] = sorted(set(touched))
        dirty = bytearray(n)
        for v in touched_list:
            dirty[v] = 1
        dirty_list: List[int] = list(touched_list)
        # base nodes observed to sit in a singleton base class: refinement
        # only ever splits, so one .count observation serves every later depth
        singleton_base = bytearray(self._csr.num_nodes)
        prev = engine._raw[0]
        # prev aliases the base table of the previous depth verbatim (the
        # identity-transport conforming case): base-space facts apply to it
        prev_is_base = False
        # the ball must widen only while some label deviated from the base
        # inheritance at the previous depth; after a conforming depth the
        # candidates collapse to the touched set alone
        grow = True
        depth = 0
        while True:
            depth += 1
            if grow:
                # grow the dirty ball one hop
                frontier: List[int] = []
                for v in dirty_list:
                    for i in range(offsets[v], offsets[v + 1]):
                        u = neighbors[i]
                        if not dirty[u]:
                            dirty[u] = 1
                            frontier.append(u)
                if frontier:
                    dirty_list = sorted(dirty_list + frontier)
            table = base_raw(min(depth, base_stable))
            # previous-depth labels under which a dirty node could still
            # coincide with a clean class (negative = fresh, never matches;
            # a known-singleton base class has no clean members to probe)
            candidate_prev: set = set()
            for v in dirty_list:
                parent = prev[v]
                if parent >= 0 and not (prev_is_base and singleton_base[v]):
                    candidate_prev.add(parent)
            # one representative signature per *distinct child label* among
            # the clean members of each candidate class
            rep_signatures: Dict[tuple, int] = {}
            if len(candidate_prev) > 64:
                # wide candidate set: one bulk sweep of the previous table
                # beats thousands of per-class occurrence scans
                probed_pairs: set = set()
                for i in range(n):
                    parent = prev[i]
                    if parent not in candidate_prev or dirty[i]:
                        continue
                    label = table[node_map[i]]
                    if (parent, label) in probed_pairs:
                        continue
                    probed_pairs.add((parent, label))
                    rep_signatures[
                        (
                            parent,
                            tuple(
                                (reverse_ports[k], prev[neighbors[k]])
                                for k in range(offsets[i], offsets[i + 1])
                            ),
                        )
                    ] = label
            else:
                # narrow candidate set: C-level occurrence scans per class
                for parent in candidate_prev:
                    probed: set = set()
                    i = -1
                    while True:
                        try:
                            i = prev.index(parent, i + 1)
                        except ValueError:
                            break
                        if dirty[i]:
                            continue
                        label = table[node_map[i]]
                        if label in probed:
                            continue
                        probed.add(label)
                        rep_signatures[
                            (
                                parent,
                                tuple(
                                    (reverse_ports[k], prev[neighbors[k]])
                                    for k in range(offsets[i], offsets[i + 1])
                                ),
                            )
                        ] = label
            fresh: Dict[tuple, int] = {}
            labels: Dict[int, int] = {}
            for v in dirty_list:
                signature = (
                    prev[v],
                    tuple(
                        (reverse_ports[i], prev[neighbors[i]])
                        for i in range(offsets[v], offsets[v + 1])
                    ),
                )
                label = rep_signatures.get(signature)
                if label is None:
                    label = fresh.get(signature)
                    if label is None:
                        label = -1 - len(fresh)
                        fresh[signature] = label
                labels[v] = label

            # conformance certificate: does this partition equal the base's
            # (through node_map, plus a singleton per created node)?
            conforming = True
            fresh_groups: Dict[int, List[int]] = {}
            for v in dirty_list:
                label = labels[v]
                if label >= 0:
                    if node_map[v] < 0 or table[node_map[v]] != label:
                        conforming = False
                        break
                else:
                    fresh_groups.setdefault(label, []).append(v)
            if conforming:
                for members in fresh_groups.values():
                    mapped = [node_map[v] for v in members]
                    if mapped[0] < 0:
                        # a delta-created node is its own class either way
                        if len(members) == 1:
                            continue
                        conforming = False
                        break
                    base_label = table[mapped[0]]
                    if not all(m >= 0 and table[m] == base_label for m in mapped):
                        conforming = False
                        break
                    # node_map is injective, so a full-size image set means
                    # no clean or matched node can share this base class
                    if len(members) == 1:
                        b = mapped[0]
                        if not singleton_base[b]:
                            if table.count(base_label) == 1:
                                singleton_base[b] = 1
                            else:
                                conforming = False
                                break
                    elif table.count(base_label) != len(members):
                        conforming = False
                        break

            if conforming:
                # relabel to the base labeling (same partition) and collapse
                # the ball: only a changed port table can deviate next depth
                if identity:
                    cur = table
                    count = base_counts[min(depth, base_stable)]
                    prev_is_base = True
                else:
                    cur = array(INT_TYPECODE, map(table.__getitem__, node_map))
                    for v in range(n):
                        if node_map[v] < 0:
                            cur[v] = -n - 1 - v  # stable per-node sentinel
                    count = len(set(cur))
                    prev_is_base = False
                dirty = bytearray(n)
                for v in touched_list:
                    dirty[v] = 1
                dirty_list = list(touched_list)
                grow = False
                if identity and all(singleton_base[v] for v in touched_list):
                    # discrete-touched fast-forward: every touched node sits
                    # in a singleton base class from here on (splitting never
                    # merges), and signatures embed the previous labels --
                    # which this conforming depth just reset to the base's,
                    # pairwise distinct for the touched set.  Each touched
                    # node therefore stays a class of its own at every
                    # remaining depth, every clean node groups exactly as the
                    # base does, and the whole remaining refinement conforms:
                    # alias the base tables through the fixpoint in one
                    # stride.
                    engine._raw.append(cur)
                    engine._num_classes.append(count)
                    engine._passes += 1
                    while count != engine._num_classes[-2]:
                        depth += 1
                        effective = min(depth, base_stable)
                        cur = base_raw(effective)
                        count = base_counts[effective]
                        engine._raw.append(cur)
                        engine._num_classes.append(count)
                        engine._passes += 1
                    engine._stable_depth = depth - 1
                    break
            else:
                if identity:
                    cur = array(INT_TYPECODE, table)
                else:
                    cur = array(INT_TYPECODE, map(table.__getitem__, node_map))
                # keep only the nodes whose label actually deviated from the
                # base inheritance (plus the ever-suspect touched set): a
                # matched-to-its-own-class node is indistinguishable from a
                # clean one and needs no ring of its own next depth
                deviating: List[int] = []
                for v, label in labels.items():
                    cur[v] = label
                    b = node_map[v]
                    if label < 0 or b < 0 or label != table[b]:
                        deviating.append(v)
                count = len(set(cur))
                prev_is_base = False
                dirty = bytearray(n)
                for v in touched_list:
                    dirty[v] = 1
                for v in deviating:
                    dirty[v] = 1
                dirty_list = sorted(set(touched_list) | set(deviating))
                grow = True
            engine._raw.append(cur)
            engine._num_classes.append(count)
            engine._passes += 1
            if count == engine._num_classes[-2]:
                # same class count + nesting partitions => same partition:
                # the fixpoint was reached one depth earlier, and this table
                # is its duplicate — exactly the shape _refine_once leaves.
                engine._stable_depth = depth - 1
                break
            prev = cur

        last = engine._raw[-1]
        members: Dict[int, List[int]] = {}
        for v in range(n):
            members.setdefault(last[v], []).append(v)
        engine._current_members = members
        engine._class_size = {c: len(group) for c, group in members.items()}
        engine._next_id = engine._num_classes[-1]
        engine._changed = []
        return engine

    # ------------------------------------------------------------------ #
    def _signature(self, v: int, previous: array) -> tuple:
        csr = self._csr
        offsets = csr.offsets
        neighbors = csr.neighbors
        reverse_ports = csr.reverse_ports
        return tuple(
            (reverse_ports[i], previous[neighbors[i]])
            for i in range(offsets[v], offsets[v + 1])
        )

    def _split_class(
        self,
        d: int,
        parts: List[List[int]],
        retained_index: int,
        new_colors: array,
        changed_next: List[int],
    ) -> None:
        """Give every fragment except ``parts[retained_index]`` a fresh id."""
        current_members = self._current_members
        class_size = self._class_size
        for index, part in enumerate(parts):
            if index == retained_index:
                continue
            fresh = self._next_id
            self._next_id = fresh + 1
            for v in part:
                new_colors[v] = fresh
            current_members[fresh] = part
            class_size[fresh] = len(part)
        retained = parts[retained_index]
        current_members[d] = retained
        class_size[d] = len(retained)
        for index, part in enumerate(parts):
            if index != retained_index:
                changed_next.extend(part)

    def _refine_once(self) -> None:
        csr = self._csr
        offsets = csr.offsets
        neighbors = csr.neighbors
        previous = self._raw[-1]
        current_members = self._current_members
        class_size = self._class_size
        changed = self._changed
        self._passes += 1

        new_colors = array(INT_TYPECODE, previous)
        changed_next: List[int] = []
        splits = 0

        if changed is None:
            # First pass: every multi-member class is re-signatured in full.
            for d in sorted(current_members):
                group = current_members[d]
                if len(group) <= 1:
                    continue
                fragments: Dict[tuple, List[int]] = {}
                for v in group:
                    signature = self._signature(v, previous)
                    bucket = fragments.get(signature)
                    if bucket is None:
                        fragments[signature] = [v]
                    else:
                        bucket.append(v)
                if len(fragments) > 1:
                    parts = list(fragments.values())
                    retained_index = max(range(len(parts)), key=lambda i: len(parts[i]))
                    self._split_class(d, parts, retained_index, new_colors, changed_next)
                    splits += len(parts) - 1
        else:
            # 1. collect the *touched* nodes (worklist nodes and their
            #    neighbours), bucketed by their current class.  Only these
            #    members can have a signature differing from their class's;
            #    every untouched member of a touched class provably shares
            #    one common signature, so it never needs re-signaturing.
            touched = bytearray(csr.num_nodes)
            touched_by_class: Dict[int, List[int]] = {}
            for v in changed:
                if not touched[v]:
                    touched[v] = 1
                    touched_by_class.setdefault(previous[v], []).append(v)
                for i in range(offsets[v], offsets[v + 1]):
                    u = neighbors[i]
                    if not touched[u]:
                        touched[u] = 1
                        touched_by_class.setdefault(previous[u], []).append(u)

            # 2. re-signature the touched members of each dirty class.
            for d in sorted(touched_by_class):
                if class_size[d] <= 1:
                    continue
                touched_members = touched_by_class[d]
                untouched_count = class_size[d] - len(touched_members)
                sig_groups: Dict[tuple, List[int]] = {}
                for v in touched_members:
                    signature = self._signature(v, previous)
                    bucket = sig_groups.get(signature)
                    if bucket is None:
                        sig_groups[signature] = [v]
                    else:
                        bucket.append(v)

                if untouched_count == 0:
                    if len(sig_groups) == 1:
                        continue
                    parts = list(sig_groups.values())
                    retained_index = max(range(len(parts)), key=lambda i: len(parts[i]))
                    self._split_class(d, parts, retained_index, new_colors, changed_next)
                    splits += len(parts) - 1
                    continue

                # Some members are untouched: they all share the signature of
                # any untouched representative, so one O(Δ) probe stands in
                # for all of them.
                rep = None
                for v in current_members[d]:
                    if previous[v] == d and not touched[v]:
                        rep = v
                        break
                rep_signature = self._signature(rep, previous)
                rep_group = sig_groups.pop(rep_signature, None)
                implicit_size = untouched_count + (len(rep_group) if rep_group else 0)
                if not sig_groups:
                    continue  # every touched member matched: no split
                moved = list(sig_groups.values())
                largest_moved = max(len(part) for part in moved)
                if implicit_size >= largest_moved:
                    # the untouched fragment is retained: it keeps id d and
                    # is never materialised, so the pass stays O(touched)
                    for part in moved:
                        fresh = self._next_id
                        self._next_id = fresh + 1
                        for v in part:
                            new_colors[v] = fresh
                        current_members[fresh] = part
                        class_size[fresh] = len(part)
                        changed_next.extend(part)
                    class_size[d] = implicit_size
                    splits += len(moved)
                else:
                    # a touched fragment outgrew the untouched one; the class
                    # is mostly churn anyway, so materialising it is within
                    # the touched budget
                    rep_set = set(rep_group) if rep_group else ()
                    implicit = [
                        v
                        for v in current_members[d]
                        if previous[v] == d and (not touched[v] or v in rep_set)
                    ]
                    parts = [implicit] + moved
                    retained_index = 1 + max(
                        range(len(moved)), key=lambda i: len(moved[i])
                    )
                    self._split_class(d, parts, retained_index, new_colors, changed_next)
                    splits += len(parts) - 1

        # compact member lists whose stale entries dominate
        for d in set(previous[v] for v in changed_next) if changed_next else ():
            group = current_members.get(d)
            if group is not None and len(group) > 2 * max(1, class_size[d]):
                current_members[d] = [v for v in group if new_colors[v] == d]

        self._raw.append(new_colors)
        self._num_classes.append(self._num_classes[-1] + splits)
        self._changed = changed_next

        if self._stable_depth is None and splits == 0:
            # refinement only splits classes: a pass with no splits means the
            # partition reached its fixpoint one depth earlier.
            self._stable_depth = len(self._raw) - 2

    # ------------------------------------------------------------------ #
    def ensure_depth(self, depth: int) -> int:
        """Materialise partitions up to ``depth`` (or the fixpoint).

        Returns the *effective* depth at which to read: ``depth`` itself, or
        the stable depth when that is smaller.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        while len(self._raw) <= depth and self._stable_depth is None:
            self._refine_once()
        if self._stable_depth is not None and depth > self._stable_depth:
            return self._stable_depth
        return depth

    def ensure_stable(self) -> int:
        while self._stable_depth is None:
            self._refine_once()
        return self._stable_depth

    # ------------------------------------------------------------------ #
    # O(1) / O(output) queries (depth must already be effective)
    # ------------------------------------------------------------------ #
    def colors_at(self, effective: int) -> array:
        """Canonical colours at a materialised depth (0..c-1 by first appearance).

        Byte-identical to the lists the classic full-sweep implementation
        produced, because first-appearance renumbering is a pure function of
        the partition.  Built lazily and cached per depth.
        """
        cached = self._canonical.get(effective)
        if cached is None:
            raw = self._raw[effective]
            mapping: Dict[int, int] = {}
            mapping_get = mapping.get
            cached = array(INT_TYPECODE, raw)
            for v, r in enumerate(raw):
                color = mapping_get(r)
                if color is None:
                    color = len(mapping)
                    mapping[r] = color
                cached[v] = color
            self._canonical[effective] = cached
        return cached

    def num_classes_at(self, effective: int) -> int:
        return self._num_classes[effective]

    def members_at(self, effective: int) -> List[List[int]]:
        """Canonical class → members (ascending node order), built lazily."""
        cached = self._members.get(effective)
        if cached is None:
            cached = [[] for _ in range(self._num_classes[effective])]
            for v, c in enumerate(self.colors_at(effective)):
                cached[c].append(v)
            self._members[effective] = cached
        return cached

    def unique_at(self, effective: int) -> List[int]:
        """Nodes in singleton classes (ascending), built lazily per depth."""
        cached = self._unique.get(effective)
        if cached is None:
            cached = sorted(
                group[0] for group in self.members_at(effective) if len(group) == 1
            )
            self._unique[effective] = cached
        return cached

    def class_members(self, node: int, effective: int) -> List[int]:
        return self.members_at(effective)[self.colors_at(effective)[node]]

    # ------------------------------------------------------------------ #
    def canonical_tables(self) -> List[List[int]]:
        """Canonical colour tables for every materialised depth (0..computed).

        This is the payload the artifact store persists and
        :meth:`from_stored` re-installs; round-tripping through it preserves
        every public colour query byte-for-byte.
        """
        return [list(self.colors_at(depth)) for depth in range(len(self._raw))]

    def estimated_bytes(self) -> int:
        """Rough retained footprint of the engine's per-depth state (bytes).

        Counts the raw and canonical colour arrays exactly and the inverse
        indexes (member/unique lists) at Python-list rates; used by the
        runner cache's eviction accounting, not for allocation decisions.
        """
        total = 0
        for arr in self._raw:
            total += len(arr) * arr.itemsize
        for arr in self._canonical.values():
            total += len(arr) * arr.itemsize
        for groups in self._members.values():
            total += sum(56 + 8 * len(group) for group in groups)
        for group in self._unique.values():
            total += 56 + 8 * len(group)
        for group in self._current_members.values():
            total += 56 + 8 * len(group)
        return total


# ---------------------------------------------------------------------- #
# backend-dispatching factories
# ---------------------------------------------------------------------- #
def make_refinement(csr):
    """A refinement engine for ``csr`` on the active kernel backend.

    Both engines expose the same surface and answer byte-identically (see
    ``repro.kernel.backend``); the binding is per object — an engine keeps
    the backend it was built with even if the selection later changes.
    """
    from .backend import active_backend

    if active_backend() == "numpy":
        from .refine_numpy import NumpyPartitionRefinement

        return NumpyPartitionRefinement(csr)
    return CSRPartitionRefinement(csr)


def refinement_from_stored(csr, tables, stable_depth):
    """A pre-loaded engine (``passes == 0``) on the active kernel backend."""
    from .backend import active_backend

    if active_backend() == "numpy":
        from .refine_numpy import NumpyPartitionRefinement

        return NumpyPartitionRefinement.from_stored(csr, tables, stable_depth)
    return CSRPartitionRefinement.from_stored(csr, tables, stable_depth)


def refinement_delta(base_engine, csr, node_map, touched):
    """An engine for an edited graph, replayed from its base's partitions.

    The delta path always runs :meth:`CSRPartitionRefinement.apply_delta` —
    the **certified python fallback**: the replay's per-depth work is the
    dirty ball plus one cheap O(n) inheritance sweep, which the batched
    full-width numpy passes cannot exploit, and its output is certified
    byte-identical to both backends' cold refinement by the delta
    equivalence suite.  The base engine may be either backend (its raw
    tables are read through the shared accessor surface); the returned
    engine is always the python one.
    """
    return CSRPartitionRefinement.apply_delta(base_engine, csr, node_map, touched)
