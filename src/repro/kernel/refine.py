"""Incremental worklist partition refinement on CSR arrays.

The view-equivalence partitions of a port-labeled graph (depth-``h`` classes
= equal truncated views ``B^h``) are computed by iterated signature
refinement: the depth-``h`` class of ``v`` is determined by its depth-(h-1)
class together with the port-ordered ``(incoming port, neighbour's class)``
pairs.  The naive scheme re-signatures *every* node at *every* depth —
O((n + m) · h) with a large constant, because each signature allocates a
nested tuple.

This engine is incremental in the style of Hopcroft / Paige–Tarjan.  Classes
carry stable ids across depths; when a class splits, one fragment (the
largest — the deterministic "retained" fragment) keeps the id and only the
members of the *other* fragments enter the worklist.  A pass then
re-signatures exactly the classes containing a worklist node or one of its
CSR neighbours, skipping singletons (they can never split):

* a class none of whose members or members' neighbours changed class cannot
  split — restricted to that neighbourhood, the partition is literally the
  same equivalence relation as one depth earlier;
* a neighbour that stayed in the *retained* fragment of its old class kept
  its class id, so signatures referencing it are unchanged — which is why
  retained-fragment members may be excluded from the worklist (two
  same-class neighbours both in retained fragments of one old class are
  still in one class).

On rapidly-discretising graphs every pass touches everything and the cost
matches a full sweep minus the already-discrete regions; on slowly
stabilising graphs (long quasi-symmetric cycles and paths) a pass touches
only the O(Δ)-sized frontier where classes are still splitting, turning the
O((n + m) · n) worst case into O(n + m + total churn).

Colours are materialised per depth as raw id arrays (an O(n) C-level copy
per pass) and canonicalised lazily — renumbered 0..c-1 by first appearance
in node order — only for depths actually queried, which keeps the public
colour lists byte-identical to the classic full-sweep implementation.
Inverse indexes (``members_at``: class → node list, ``unique_at``) are also
built lazily per depth and cached, so class/twin/uniqueness queries are
O(1) / O(output) after a one-off O(n) build per queried depth.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from .csr import INT_TYPECODE, CSRGraph

__all__ = ["CSRPartitionRefinement", "make_refinement", "refinement_from_stored"]


class CSRPartitionRefinement:
    """Lazy per-depth view-equivalence partitions of one CSR graph.

    The partitions (and the canonical colour numberings exposed by
    :meth:`colors_at`) are exactly those of the classic full-sweep
    refinement; only the work per pass is reduced to the neighbourhood of the
    previous pass's splits.
    """

    __slots__ = (
        "_csr",
        "_raw",
        "_num_classes",
        "_current_members",
        "_class_size",
        "_next_id",
        "_changed",
        "_stable_depth",
        "_passes",
        "_canonical",
        "_members",
        "_unique",
    )

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr
        n = csr.num_nodes
        offsets = csr.offsets
        initial = array(INT_TYPECODE, [0] * n)
        mapping: Dict[int, int] = {}
        members: Dict[int, List[int]] = {}
        for v in range(n):
            degree = offsets[v + 1] - offsets[v]
            color = mapping.get(degree)
            if color is None:
                color = len(mapping)
                mapping[degree] = color
                members[color] = []
            initial[v] = color
            members[color].append(v)
        #: raw (stable-id) colour arrays per depth.
        self._raw: List[array] = [initial]
        self._num_classes: List[int] = [len(mapping)]
        #: live class id -> member list.  Lists may contain *stale* entries
        #: (nodes split off to a fresh id since): a node v is a live member
        #: of d iff the latest raw colours say so.  Stale entries are
        #: filtered on touch and compacted when they outnumber live ones.
        self._current_members = members
        #: live class id -> exact live member count.
        self._class_size: Dict[int, int] = {d: len(group) for d, group in members.items()}
        self._next_id = len(mapping)
        #: worklist: members of non-retained fragments of the latest pass.
        #: ``None`` means "everything" (before the first pass).
        self._changed: Optional[List[int]] = None
        self._stable_depth: Optional[int] = None
        self._passes = 0
        #: lazily-built per-depth views: canonical colours, class -> members,
        #: unique-node lists.
        self._canonical: Dict[int, array] = {}
        self._members: Dict[int, List[List[int]]] = {}
        self._unique: Dict[int, List[int]] = {}
        if n == 1 or self._num_classes[0] == n:
            self._stable_depth = 0

    @classmethod
    def from_stored(
        cls,
        csr: CSRGraph,
        tables: "List[List[int]]",
        stable_depth: int,
    ) -> "CSRPartitionRefinement":
        """An engine pre-loaded with partitions computed by an earlier process.

        ``tables`` must be *canonical* colour tables (ids ``0..c-1`` by first
        appearance in node order, exactly what :meth:`colors_at` returns) for
        depths ``0..len(tables)-1``, with ``stable_depth <= len(tables)-1``
        the refinement fixpoint.  The loaded engine answers every depth query
        from the installed tables and, because the fixpoint is known, never
        runs a refinement pass: :attr:`passes` stays ``0``, which is what
        lets the store-warm CI gate certify that a cold process replaying a
        sweep from the artifact store performs zero refinement work.
        """
        n = csr.num_nodes
        if stable_depth < 0 or len(tables) < stable_depth + 1:
            raise ValueError("tables must cover depths 0..stable_depth")
        engine = cls(csr)
        raw: List[array] = []
        num_classes: List[int] = []
        for table in tables:
            if len(table) != n:
                raise ValueError("each colour table must have one entry per node")
            arr = array(INT_TYPECODE, table)
            raw.append(arr)
            num_classes.append((max(arr) + 1) if n else 0)
        members: Dict[int, List[int]] = {}
        last = raw[-1]
        for v in range(n):
            group = members.get(last[v])
            if group is None:
                members[last[v]] = [v]
            else:
                group.append(v)
        engine._raw = raw
        engine._num_classes = num_classes
        engine._current_members = members
        engine._class_size = {c: len(group) for c, group in members.items()}
        engine._next_id = num_classes[-1]
        engine._changed = []
        engine._stable_depth = stable_depth
        engine._passes = 0
        engine._canonical = {}
        engine._members = {}
        engine._unique = {}
        return engine

    # ------------------------------------------------------------------ #
    @property
    def csr(self) -> CSRGraph:
        return self._csr

    @property
    def passes(self) -> int:
        return self._passes

    @property
    def stable_depth(self) -> Optional[int]:
        return self._stable_depth

    @property
    def computed_depth(self) -> int:
        """Deepest depth whose partition has been materialised."""
        return len(self._raw) - 1

    @property
    def class_counts(self) -> Tuple[int, ...]:
        """Class counts of every materialised depth (0..computed_depth)."""
        return tuple(self._num_classes)

    # ------------------------------------------------------------------ #
    def _signature(self, v: int, previous: array) -> tuple:
        csr = self._csr
        offsets = csr.offsets
        neighbors = csr.neighbors
        reverse_ports = csr.reverse_ports
        return tuple(
            (reverse_ports[i], previous[neighbors[i]])
            for i in range(offsets[v], offsets[v + 1])
        )

    def _split_class(
        self,
        d: int,
        parts: List[List[int]],
        retained_index: int,
        new_colors: array,
        changed_next: List[int],
    ) -> None:
        """Give every fragment except ``parts[retained_index]`` a fresh id."""
        current_members = self._current_members
        class_size = self._class_size
        for index, part in enumerate(parts):
            if index == retained_index:
                continue
            fresh = self._next_id
            self._next_id = fresh + 1
            for v in part:
                new_colors[v] = fresh
            current_members[fresh] = part
            class_size[fresh] = len(part)
        retained = parts[retained_index]
        current_members[d] = retained
        class_size[d] = len(retained)
        for index, part in enumerate(parts):
            if index != retained_index:
                changed_next.extend(part)

    def _refine_once(self) -> None:
        csr = self._csr
        offsets = csr.offsets
        neighbors = csr.neighbors
        previous = self._raw[-1]
        current_members = self._current_members
        class_size = self._class_size
        changed = self._changed
        self._passes += 1

        new_colors = array(INT_TYPECODE, previous)
        changed_next: List[int] = []
        splits = 0

        if changed is None:
            # First pass: every multi-member class is re-signatured in full.
            for d in sorted(current_members):
                group = current_members[d]
                if len(group) <= 1:
                    continue
                fragments: Dict[tuple, List[int]] = {}
                for v in group:
                    signature = self._signature(v, previous)
                    bucket = fragments.get(signature)
                    if bucket is None:
                        fragments[signature] = [v]
                    else:
                        bucket.append(v)
                if len(fragments) > 1:
                    parts = list(fragments.values())
                    retained_index = max(range(len(parts)), key=lambda i: len(parts[i]))
                    self._split_class(d, parts, retained_index, new_colors, changed_next)
                    splits += len(parts) - 1
        else:
            # 1. collect the *touched* nodes (worklist nodes and their
            #    neighbours), bucketed by their current class.  Only these
            #    members can have a signature differing from their class's;
            #    every untouched member of a touched class provably shares
            #    one common signature, so it never needs re-signaturing.
            touched = bytearray(csr.num_nodes)
            touched_by_class: Dict[int, List[int]] = {}
            for v in changed:
                if not touched[v]:
                    touched[v] = 1
                    touched_by_class.setdefault(previous[v], []).append(v)
                for i in range(offsets[v], offsets[v + 1]):
                    u = neighbors[i]
                    if not touched[u]:
                        touched[u] = 1
                        touched_by_class.setdefault(previous[u], []).append(u)

            # 2. re-signature the touched members of each dirty class.
            for d in sorted(touched_by_class):
                if class_size[d] <= 1:
                    continue
                touched_members = touched_by_class[d]
                untouched_count = class_size[d] - len(touched_members)
                sig_groups: Dict[tuple, List[int]] = {}
                for v in touched_members:
                    signature = self._signature(v, previous)
                    bucket = sig_groups.get(signature)
                    if bucket is None:
                        sig_groups[signature] = [v]
                    else:
                        bucket.append(v)

                if untouched_count == 0:
                    if len(sig_groups) == 1:
                        continue
                    parts = list(sig_groups.values())
                    retained_index = max(range(len(parts)), key=lambda i: len(parts[i]))
                    self._split_class(d, parts, retained_index, new_colors, changed_next)
                    splits += len(parts) - 1
                    continue

                # Some members are untouched: they all share the signature of
                # any untouched representative, so one O(Δ) probe stands in
                # for all of them.
                rep = None
                for v in current_members[d]:
                    if previous[v] == d and not touched[v]:
                        rep = v
                        break
                rep_signature = self._signature(rep, previous)
                rep_group = sig_groups.pop(rep_signature, None)
                implicit_size = untouched_count + (len(rep_group) if rep_group else 0)
                if not sig_groups:
                    continue  # every touched member matched: no split
                moved = list(sig_groups.values())
                largest_moved = max(len(part) for part in moved)
                if implicit_size >= largest_moved:
                    # the untouched fragment is retained: it keeps id d and
                    # is never materialised, so the pass stays O(touched)
                    for part in moved:
                        fresh = self._next_id
                        self._next_id = fresh + 1
                        for v in part:
                            new_colors[v] = fresh
                        current_members[fresh] = part
                        class_size[fresh] = len(part)
                        changed_next.extend(part)
                    class_size[d] = implicit_size
                    splits += len(moved)
                else:
                    # a touched fragment outgrew the untouched one; the class
                    # is mostly churn anyway, so materialising it is within
                    # the touched budget
                    rep_set = set(rep_group) if rep_group else ()
                    implicit = [
                        v
                        for v in current_members[d]
                        if previous[v] == d and (not touched[v] or v in rep_set)
                    ]
                    parts = [implicit] + moved
                    retained_index = 1 + max(
                        range(len(moved)), key=lambda i: len(moved[i])
                    )
                    self._split_class(d, parts, retained_index, new_colors, changed_next)
                    splits += len(parts) - 1

        # compact member lists whose stale entries dominate
        for d in set(previous[v] for v in changed_next) if changed_next else ():
            group = current_members.get(d)
            if group is not None and len(group) > 2 * max(1, class_size[d]):
                current_members[d] = [v for v in group if new_colors[v] == d]

        self._raw.append(new_colors)
        self._num_classes.append(self._num_classes[-1] + splits)
        self._changed = changed_next

        if self._stable_depth is None and splits == 0:
            # refinement only splits classes: a pass with no splits means the
            # partition reached its fixpoint one depth earlier.
            self._stable_depth = len(self._raw) - 2

    # ------------------------------------------------------------------ #
    def ensure_depth(self, depth: int) -> int:
        """Materialise partitions up to ``depth`` (or the fixpoint).

        Returns the *effective* depth at which to read: ``depth`` itself, or
        the stable depth when that is smaller.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        while len(self._raw) <= depth and self._stable_depth is None:
            self._refine_once()
        if self._stable_depth is not None and depth > self._stable_depth:
            return self._stable_depth
        return depth

    def ensure_stable(self) -> int:
        while self._stable_depth is None:
            self._refine_once()
        return self._stable_depth

    # ------------------------------------------------------------------ #
    # O(1) / O(output) queries (depth must already be effective)
    # ------------------------------------------------------------------ #
    def colors_at(self, effective: int) -> array:
        """Canonical colours at a materialised depth (0..c-1 by first appearance).

        Byte-identical to the lists the classic full-sweep implementation
        produced, because first-appearance renumbering is a pure function of
        the partition.  Built lazily and cached per depth.
        """
        cached = self._canonical.get(effective)
        if cached is None:
            raw = self._raw[effective]
            mapping: Dict[int, int] = {}
            mapping_get = mapping.get
            cached = array(INT_TYPECODE, raw)
            for v, r in enumerate(raw):
                color = mapping_get(r)
                if color is None:
                    color = len(mapping)
                    mapping[r] = color
                cached[v] = color
            self._canonical[effective] = cached
        return cached

    def num_classes_at(self, effective: int) -> int:
        return self._num_classes[effective]

    def members_at(self, effective: int) -> List[List[int]]:
        """Canonical class → members (ascending node order), built lazily."""
        cached = self._members.get(effective)
        if cached is None:
            cached = [[] for _ in range(self._num_classes[effective])]
            for v, c in enumerate(self.colors_at(effective)):
                cached[c].append(v)
            self._members[effective] = cached
        return cached

    def unique_at(self, effective: int) -> List[int]:
        """Nodes in singleton classes (ascending), built lazily per depth."""
        cached = self._unique.get(effective)
        if cached is None:
            cached = sorted(
                group[0] for group in self.members_at(effective) if len(group) == 1
            )
            self._unique[effective] = cached
        return cached

    def class_members(self, node: int, effective: int) -> List[int]:
        return self.members_at(effective)[self.colors_at(effective)[node]]

    # ------------------------------------------------------------------ #
    def canonical_tables(self) -> List[List[int]]:
        """Canonical colour tables for every materialised depth (0..computed).

        This is the payload the artifact store persists and
        :meth:`from_stored` re-installs; round-tripping through it preserves
        every public colour query byte-for-byte.
        """
        return [list(self.colors_at(depth)) for depth in range(len(self._raw))]

    def estimated_bytes(self) -> int:
        """Rough retained footprint of the engine's per-depth state (bytes).

        Counts the raw and canonical colour arrays exactly and the inverse
        indexes (member/unique lists) at Python-list rates; used by the
        runner cache's eviction accounting, not for allocation decisions.
        """
        total = 0
        for arr in self._raw:
            total += len(arr) * arr.itemsize
        for arr in self._canonical.values():
            total += len(arr) * arr.itemsize
        for groups in self._members.values():
            total += sum(56 + 8 * len(group) for group in groups)
        for group in self._unique.values():
            total += 56 + 8 * len(group)
        for group in self._current_members.values():
            total += 56 + 8 * len(group)
        return total


# ---------------------------------------------------------------------- #
# backend-dispatching factories
# ---------------------------------------------------------------------- #
def make_refinement(csr):
    """A refinement engine for ``csr`` on the active kernel backend.

    Both engines expose the same surface and answer byte-identically (see
    ``repro.kernel.backend``); the binding is per object — an engine keeps
    the backend it was built with even if the selection later changes.
    """
    from .backend import active_backend

    if active_backend() == "numpy":
        from .refine_numpy import NumpyPartitionRefinement

        return NumpyPartitionRefinement(csr)
    return CSRPartitionRefinement(csr)


def refinement_from_stored(csr, tables, stable_depth):
    """A pre-loaded engine (``passes == 0``) on the active kernel backend."""
    from .backend import active_backend

    if active_backend() == "numpy":
        from .refine_numpy import NumpyPartitionRefinement

        return NumpyPartitionRefinement.from_stored(csr, tables, stable_depth)
    return CSRPartitionRefinement.from_stored(csr, tables, stable_depth)
