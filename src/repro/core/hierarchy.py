"""The Fact 1.1 hierarchy of election indices.

The four tasks form a hierarchy: a solution of a stronger task can be turned
into a solution of a weaker one without extra communication, hence

    ψ_CPPE(G) >= ψ_PPE(G) >= ψ_PE(G) >= ψ_S(G)     (Fact 1.1)

This module provides checks of that ordering for computed index dictionaries
and classification helpers used by tests and the E13 bench.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..portgraph.graph import PortLabeledGraph
from .election_index import all_election_indices
from .tasks import Task

__all__ = [
    "indices_respect_hierarchy",
    "verify_fact_1_1",
    "index_gaps",
]


def indices_respect_hierarchy(indices: Mapping[Task, Optional[int]]) -> bool:
    """Whether a ψ_Z dictionary satisfies ψ_CPPE >= ψ_PPE >= ψ_PE >= ψ_S.

    Missing (``None``) entries are skipped: ``None`` means either the graph is
    infeasible (all four are then ``None``) or the index was not computed.
    """
    ordered = [indices.get(task) for task in Task.ordered()]
    previous = None
    for value in ordered:
        if value is None:
            continue
        if previous is not None and value < previous:
            return False
        previous = value
    return True


def verify_fact_1_1(graph: PortLabeledGraph, **kwargs) -> Dict[Task, Optional[int]]:
    """Compute all four indices of ``graph`` and assert the Fact 1.1 ordering."""
    indices = all_election_indices(graph, **kwargs)
    if not indices_respect_hierarchy(indices):
        raise AssertionError(f"Fact 1.1 violated: {indices}")
    return indices


def index_gaps(indices: Mapping[Task, Optional[int]]) -> Dict[str, Optional[int]]:
    """Pairwise gaps between consecutive indices in the hierarchy (``None`` if unknown)."""
    ordered = Task.ordered()
    gaps: Dict[str, Optional[int]] = {}
    for weaker, stronger in zip(ordered, ordered[1:]):
        a, b = indices.get(weaker), indices.get(stronger)
        gaps[f"{stronger.value}-{weaker.value}"] = None if a is None or b is None else b - a
    return gaps
