"""Validators for claimed solutions of the four election tasks.

Given a graph and the outputs of all nodes, these functions decide whether
the outputs constitute a correct solution of Selection, Port Election, Port
Path Election, or Complete Port Path Election (as defined in Section 1 of the
paper) and, if not, report *why* -- which is what the tests and benchmark
harnesses rely on to certify the paper's algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..portgraph.graph import PortLabeledGraph
from ..portgraph.paths import (
    follow_ports,
    is_first_port_of_simple_path,
    is_simple_node_sequence,
    path_from_complete_ports,
)
from .tasks import LEADER, NON_LEADER, ElectionOutcome, Task, output_is_leader

__all__ = [
    "ValidationResult",
    "validate_selection",
    "validate_port_election",
    "validate_port_path_election",
    "validate_complete_port_path_election",
    "validate_outcome",
    "validate",
]


@dataclass
class ValidationResult:
    """Outcome of validating a claimed election solution."""

    task: Task
    ok: bool
    leader: Optional[int] = None
    errors: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_invalid(self) -> "ValidationResult":
        if not self.ok:
            raise AssertionError(
                f"invalid {self.task.full_name} solution: " + "; ".join(self.errors[:5])
            )
        return self


def _check_coverage(graph: PortLabeledGraph, outputs: Mapping[int, Any], errors: List[str]) -> bool:
    missing = [v for v in graph.nodes() if v not in outputs]
    if missing:
        errors.append(f"{len(missing)} nodes have no output (e.g. node {missing[0]})")
        return False
    return True


def _find_unique_leader(outputs: Mapping[int, Any], errors: List[str]) -> Optional[int]:
    leaders = [v for v, value in outputs.items() if output_is_leader(value)]
    if len(leaders) != 1:
        errors.append(f"expected exactly one leader output, found {len(leaders)}")
        return None
    return leaders[0]


def validate_selection(
    graph: PortLabeledGraph, outputs: Mapping[int, Any]
) -> ValidationResult:
    """Selection: one node outputs ``leader``, every other node ``non-leader``."""
    errors: List[str] = []
    if not _check_coverage(graph, outputs, errors):
        return ValidationResult(Task.SELECTION, False, errors=errors)
    leader = _find_unique_leader(outputs, errors)
    if leader is None:
        return ValidationResult(Task.SELECTION, False, errors=errors)
    for v, value in outputs.items():
        if v == leader:
            continue
        if value not in (NON_LEADER, 0):
            errors.append(f"node {v}: non-leader output {value!r} is not 'non-leader'")
    return ValidationResult(Task.SELECTION, not errors, leader=leader, errors=errors)


def validate_port_election(
    graph: PortLabeledGraph, outputs: Mapping[int, Any]
) -> ValidationResult:
    """Port Election: every non-leader outputs the first port of a simple path to the leader."""
    errors: List[str] = []
    if not _check_coverage(graph, outputs, errors):
        return ValidationResult(Task.PORT_ELECTION, False, errors=errors)
    leader = _find_unique_leader(outputs, errors)
    if leader is None:
        return ValidationResult(Task.PORT_ELECTION, False, errors=errors)
    for v, value in outputs.items():
        if v == leader:
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"node {v}: PE output {value!r} is not a port number")
            continue
        if not (0 <= value < graph.degree(v)):
            errors.append(f"node {v}: port {value} does not exist (degree {graph.degree(v)})")
            continue
        if not is_first_port_of_simple_path(graph, v, value, leader):
            errors.append(
                f"node {v}: port {value} is not the first port of any simple path to leader {leader}"
            )
    return ValidationResult(Task.PORT_ELECTION, not errors, leader=leader, errors=errors)


def _validate_path_outputs(
    graph: PortLabeledGraph,
    outputs: Mapping[int, Any],
    task: Task,
    *,
    complete: bool,
) -> ValidationResult:
    errors: List[str] = []
    if not _check_coverage(graph, outputs, errors):
        return ValidationResult(task, False, errors=errors)
    leader = _find_unique_leader(outputs, errors)
    if leader is None:
        return ValidationResult(task, False, errors=errors)
    for v, value in outputs.items():
        if v == leader:
            continue
        if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
            errors.append(f"node {v}: output {value!r} is not a port sequence")
            continue
        sequence = tuple(value)
        if not sequence:
            errors.append(f"node {v}: non-leader output is an empty port sequence")
            continue
        if complete:
            if len(sequence) % 2 != 0:
                errors.append(f"node {v}: CPPE sequence has odd length {len(sequence)}")
                continue
            nodes = path_from_complete_ports(graph, v, sequence)
        else:
            nodes = follow_ports(graph, v, sequence)
        if nodes is None:
            errors.append(f"node {v}: port sequence {sequence} cannot be followed")
            continue
        if not is_simple_node_sequence(nodes):
            errors.append(f"node {v}: port sequence {sequence} does not trace a simple path")
            continue
        if nodes[-1] != leader:
            errors.append(
                f"node {v}: path ends at node {nodes[-1]}, not at the leader {leader}"
            )
    return ValidationResult(task, not errors, leader=leader, errors=errors)


def validate_port_path_election(
    graph: PortLabeledGraph, outputs: Mapping[int, Any]
) -> ValidationResult:
    """PPE: every non-leader outputs the outgoing-port sequence of a simple path to the leader."""
    return _validate_path_outputs(graph, outputs, Task.PORT_PATH_ELECTION, complete=False)


def validate_complete_port_path_election(
    graph: PortLabeledGraph, outputs: Mapping[int, Any]
) -> ValidationResult:
    """CPPE: every non-leader outputs the (out, in) port-pair sequence of a simple path to the leader."""
    return _validate_path_outputs(
        graph, outputs, Task.COMPLETE_PORT_PATH_ELECTION, complete=True
    )


_VALIDATORS = {
    Task.SELECTION: validate_selection,
    Task.PORT_ELECTION: validate_port_election,
    Task.PORT_PATH_ELECTION: validate_port_path_election,
    Task.COMPLETE_PORT_PATH_ELECTION: validate_complete_port_path_election,
}


def validate(
    task: Task, graph: PortLabeledGraph, outputs: Mapping[int, Any]
) -> ValidationResult:
    """Validate a claimed solution of ``task`` on ``graph``."""
    return _VALIDATORS[task](graph, outputs)


def validate_outcome(graph: PortLabeledGraph, outcome: ElectionOutcome) -> ValidationResult:
    """Validate an :class:`ElectionOutcome` against its own task."""
    return validate(outcome.task, graph, outcome.outputs)
