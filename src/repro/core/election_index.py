"""Exact election indices ψ_Z(G) for the four tasks.

For a feasible network ``G`` whose map is given to the nodes, the *Z-index*
ψ_Z(G) is the minimum number of communication rounds in which task
``Z ∈ {S, PE, PPE, CPPE}`` can be solved (Section 1 of the paper).  Because a
node's decision after ``t`` rounds is a function of its augmented truncated
view ``B^t``, the indices admit exact combinatorial characterisations:

* **ψ_S(G)** is the smallest ``t`` at which some node's ``B^t`` is unique
  (Proposition 2.1 for necessity; the map-based comparison algorithm for
  sufficiency).

* **ψ_PE(G)** is the smallest ``t`` at which there is a node ``u`` with a
  unique ``B^t`` such that every other view-equivalence class has a *common*
  port that starts a simple path to ``u`` from each of its members.

* **ψ_PPE(G)** / **ψ_CPPE(G)** are the smallest ``t`` at which there is such
  a ``u`` and every other class has a *common outgoing-port sequence*
  (respectively, a common sequence of (outgoing, incoming) port pairs) that
  traces a simple path from each member to ``u``.

ψ_S and ψ_PE are computed in polynomial time.  ψ_PPE and ψ_CPPE use an exact
joint breadth-first search over common sequences, which is exponential in the
worst case but bounded by ``max_states`` (raising :class:`SearchLimitExceeded`
rather than silently guessing).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement
from .tasks import Task

__all__ = [
    "SearchLimitExceeded",
    "selection_index",
    "port_election_index",
    "port_path_election_index",
    "complete_port_path_election_index",
    "election_index",
    "all_election_indices",
    "selection_assignment",
    "port_election_assignment",
    "path_election_assignment",
]


class SearchLimitExceeded(RuntimeError):
    """Raised when the PPE/CPPE sequence search exceeds its state budget."""


def _default_refinement(graph: PortLabeledGraph) -> ViewRefinement:
    """The process-wide memoised refinement of ``graph``.

    Every index function takes an explicit ``refinement`` for callers that
    manage their own; when none is passed, the shared LRU cache of the runner
    subsystem supplies one, so repeated queries about the same graph -- from
    feasibility checks, from different ψ_Z computations, from benchmark
    sweeps -- all refine it at most once per process.  (Imported lazily:
    ``repro.runner`` imports this module.)
    """
    from ..runner.cache import shared_refinement

    return shared_refinement(graph)


# --------------------------------------------------------------------------- #
# ψ_S
# --------------------------------------------------------------------------- #
def selection_index(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> Optional[int]:
    """ψ_S(G): smallest depth at which some node has a unique augmented view.

    Returns ``None`` for infeasible graphs (no such depth exists).
    """
    refinement = refinement if refinement is not None else _default_refinement(graph)
    return refinement.first_depth_with_unique_node()


def selection_assignment(
    graph: PortLabeledGraph,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> Optional[int]:
    """The leader a map-based Selection algorithm elects at ``depth``.

    Among all nodes with a unique ``B^depth``, the one with the smallest view
    in the canonical (lexicographic) order is chosen, mirroring the oracle of
    Theorem 2.2.  Returns ``None`` if no node has a unique view at ``depth``.
    """
    from ..views.encoding import augmented_view_key

    refinement = refinement if refinement is not None else _default_refinement(graph)
    unique = refinement.unique_nodes(depth)
    if not unique:
        return None
    return min(unique, key=lambda v: augmented_view_key(graph, v, depth))


# --------------------------------------------------------------------------- #
# ψ_PE
# --------------------------------------------------------------------------- #
class _RemovedNodeComponents:
    """Cached connected components of ``G - v`` for varying ``v``.

    ``component(v, w)`` is the component id of ``w`` in the graph with node
    ``v`` deleted; two nodes are connected in ``G - v`` iff their ids match.
    """

    def __init__(self, graph: PortLabeledGraph) -> None:
        self._graph = graph
        self._cache: Dict[int, List[int]] = {}

    def components_without(self, removed: int) -> List[int]:
        cached = self._cache.get(removed)
        if cached is not None:
            return cached
        graph = self._graph
        comp = [-1] * graph.num_nodes
        comp[removed] = -2
        next_id = 0
        for start in graph.nodes():
            if comp[start] != -1:
                continue
            comp[start] = next_id
            queue = deque([start])
            while queue:
                x = queue.popleft()
                for y in graph.neighbors(x):
                    if comp[y] == -1:
                        comp[y] = next_id
                        queue.append(y)
            next_id += 1
        self._cache[removed] = comp
        return comp

    def first_port_ok(self, v: int, port: int, leader: int) -> bool:
        """Whether ``port`` at ``v`` starts a simple path from ``v`` to ``leader``."""
        w = self._graph.neighbor(v, port)
        if w == leader:
            return True
        comp = self.components_without(v)
        return comp[w] == comp[leader]


def _pe_class_port(
    graph: PortLabeledGraph,
    members: Sequence[int],
    leader: int,
    cut: _RemovedNodeComponents,
) -> Optional[int]:
    """A single port valid as PE output for every member of a class, or ``None``."""
    min_degree = min(graph.degree(v) for v in members)
    for port in range(min_degree):
        if all(cut.first_port_ok(v, port, leader) for v in members):
            return port
    return None


def port_election_assignment(
    graph: PortLabeledGraph,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> Optional[Tuple[int, Dict[int, int]]]:
    """A (leader, per-node port) assignment realising PE at ``depth``, or ``None``.

    The assignment is constant on view-equivalence classes at ``depth``, so it
    can be implemented by a distributed algorithm running for ``depth`` rounds
    with the map as advice.
    """
    refinement = refinement if refinement is not None else _default_refinement(graph)
    classes = refinement.classes(depth)
    cut = _RemovedNodeComponents(graph)
    singleton_nodes = sorted(m[0] for m in classes.values() if len(m) == 1)
    for leader in singleton_nodes:
        ports: Dict[int, int] = {}
        feasible = True
        for members in classes.values():
            if members == [leader]:
                continue
            port = _pe_class_port(graph, members, leader, cut)
            if port is None:
                feasible = False
                break
            for v in members:
                ports[v] = port
        if feasible:
            return leader, ports
    return None


def port_election_index(
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
) -> Optional[int]:
    """ψ_PE(G); ``None`` if the graph is infeasible (or ``max_depth`` is hit first)."""
    refinement = refinement if refinement is not None else _default_refinement(graph)
    start = refinement.first_depth_with_unique_node(max_depth=max_depth)
    if start is None:
        return None
    depth = start
    stable = refinement.ensure_stable()
    while max_depth is None or depth <= max_depth:
        if port_election_assignment(graph, depth, refinement=refinement) is not None:
            return depth
        if depth >= stable:
            # At the fixpoint every class is a singleton in a feasible graph,
            # so PE is solvable there; reaching this point means infeasible.
            return None
        depth += 1
    return None


# --------------------------------------------------------------------------- #
# ψ_PPE and ψ_CPPE
# --------------------------------------------------------------------------- #
def _common_path_sequence(
    graph: PortLabeledGraph,
    members: Sequence[int],
    leader: int,
    *,
    complete: bool,
    max_length: Optional[int] = None,
    max_states: int = 200_000,
) -> Optional[Tuple[int, ...]]:
    """A common port sequence tracing a simple path from every member to ``leader``.

    For ``complete=False`` the sequence is the PPE-style outgoing ports
    ``(p1, ..., pk)``; for ``complete=True`` it is the CPPE-style flat
    ``(p1, q1, ..., pk, qk)``.  Returns ``None`` if no common sequence of
    length at most ``max_length`` exists.  Raises :class:`SearchLimitExceeded`
    when the joint search grows beyond ``max_states`` states.
    """
    if any(v == leader for v in members):
        return None
    if max_length is None:
        max_length = graph.num_nodes - 1
    start_positions = tuple(members)
    start_visited = tuple(frozenset((v,)) for v in members)
    queue: deque = deque([(start_positions, start_visited, ())])
    seen = {(start_positions, start_visited)}
    while queue:
        positions, visited, sequence = queue.popleft()
        steps_taken = len(sequence) // 2 if complete else len(sequence)
        if steps_taken >= max_length:
            continue
        min_degree = min(graph.degree(v) for v in positions)
        for port in range(min_degree):
            next_nodes: List[int] = []
            incoming_ports = set()
            blocked = False
            for i, v in enumerate(positions):
                u, q = graph.endpoint(v, port)
                if u in visited[i]:
                    blocked = True
                    break
                next_nodes.append(u)
                incoming_ports.add(q)
            if blocked:
                continue
            if complete and len(incoming_ports) != 1:
                continue
            if complete:
                new_sequence = sequence + (port, next(iter(incoming_ports)))
            else:
                new_sequence = sequence + (port,)
            if all(u == leader for u in next_nodes):
                return new_sequence
            if any(u == leader for u in next_nodes):
                # Some members reached the leader early: their simple path can
                # no longer end at the leader later, so this branch is dead.
                continue
            new_positions = tuple(next_nodes)
            new_visited = tuple(
                visited[i] | {next_nodes[i]} for i in range(len(positions))
            )
            key = (new_positions, new_visited)
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_states:
                raise SearchLimitExceeded(
                    f"common-path search exceeded {max_states} states "
                    f"(class size {len(members)})"
                )
            queue.append((new_positions, new_visited, new_sequence))
    return None


def path_election_assignment(
    graph: PortLabeledGraph,
    depth: int,
    *,
    complete: bool,
    refinement: Optional[ViewRefinement] = None,
    max_states: int = 200_000,
) -> Optional[Tuple[int, Dict[int, Tuple[int, ...]]]]:
    """A (leader, per-node sequence) assignment realising PPE/CPPE at ``depth``, or ``None``."""
    refinement = refinement if refinement is not None else _default_refinement(graph)
    classes = refinement.classes(depth)
    singleton_nodes = sorted(m[0] for m in classes.values() if len(m) == 1)
    for leader in singleton_nodes:
        sequences: Dict[int, Tuple[int, ...]] = {}
        feasible = True
        for members in classes.values():
            if members == [leader]:
                continue
            sequence = _common_path_sequence(
                graph, members, leader, complete=complete, max_states=max_states
            )
            if sequence is None:
                feasible = False
                break
            for v in members:
                sequences[v] = sequence
        if feasible:
            return leader, sequences
    return None


def _path_index(
    graph: PortLabeledGraph,
    *,
    complete: bool,
    refinement: Optional[ViewRefinement],
    max_depth: Optional[int],
    max_states: int,
) -> Optional[int]:
    refinement = refinement if refinement is not None else _default_refinement(graph)
    start = refinement.first_depth_with_unique_node(max_depth=max_depth)
    if start is None:
        return None
    stable = refinement.ensure_stable()
    depth = start
    while max_depth is None or depth <= max_depth:
        assignment = path_election_assignment(
            graph, depth, complete=complete, refinement=refinement, max_states=max_states
        )
        if assignment is not None:
            return depth
        if depth >= stable:
            return None
        depth += 1
    return None


def port_path_election_index(
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Optional[int]:
    """ψ_PPE(G) (exact, bounded search)."""
    return _path_index(
        graph,
        complete=False,
        refinement=refinement,
        max_depth=max_depth,
        max_states=max_states,
    )


def complete_port_path_election_index(
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Optional[int]:
    """ψ_CPPE(G) (exact, bounded search)."""
    return _path_index(
        graph,
        complete=True,
        refinement=refinement,
        max_depth=max_depth,
        max_states=max_states,
    )


# --------------------------------------------------------------------------- #
# dispatch helpers
# --------------------------------------------------------------------------- #
def election_index(
    task: Task,
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Optional[int]:
    """ψ_Z(G) for any of the four tasks Z."""
    if task is Task.SELECTION:
        return selection_index(graph, refinement=refinement)
    if task is Task.PORT_ELECTION:
        return port_election_index(graph, refinement=refinement, max_depth=max_depth)
    if task is Task.PORT_PATH_ELECTION:
        return port_path_election_index(
            graph, refinement=refinement, max_depth=max_depth, max_states=max_states
        )
    if task is Task.COMPLETE_PORT_PATH_ELECTION:
        return complete_port_path_election_index(
            graph, refinement=refinement, max_depth=max_depth, max_states=max_states
        )
    raise ValueError(f"unknown task {task!r}")


def all_election_indices(
    graph: PortLabeledGraph,
    *,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Dict[Task, Optional[int]]:
    """ψ_Z(G) for all four tasks, sharing one (process-cached) refinement."""
    refinement = _default_refinement(graph)
    return {
        task: election_index(
            task,
            graph,
            refinement=refinement,
            max_depth=max_depth,
            max_states=max_states,
        )
        for task in Task.ordered()
    }
