"""Exact election indices ψ_Z(G) for the four tasks.

For a feasible network ``G`` whose map is given to the nodes, the *Z-index*
ψ_Z(G) is the minimum number of communication rounds in which task
``Z ∈ {S, PE, PPE, CPPE}`` can be solved (Section 1 of the paper).  Because a
node's decision after ``t`` rounds is a function of its augmented truncated
view ``B^t``, the indices admit exact combinatorial characterisations:

* **ψ_S(G)** is the smallest ``t`` at which some node's ``B^t`` is unique
  (Proposition 2.1 for necessity; the map-based comparison algorithm for
  sufficiency).

* **ψ_PE(G)** is the smallest ``t`` at which there is a node ``u`` with a
  unique ``B^t`` such that every other view-equivalence class has a *common*
  port that starts a simple path to ``u`` from each of its members.

* **ψ_PPE(G)** / **ψ_CPPE(G)** are the smallest ``t`` at which there is such
  a ``u`` and every other class has a *common outgoing-port sequence*
  (respectively, a common sequence of (outgoing, incoming) port pairs) that
  traces a simple path from each member to ``u``.

ψ_S and ψ_PE are computed in polynomial time.  ψ_PPE and ψ_CPPE use an exact
joint breadth-first search over common sequences, which is exponential in the
worst case but bounded by ``max_states`` (raising :class:`SearchLimitExceeded`
rather than silently guessing).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel import GraphKernel
from ..kernel.csr import bfs_distances_csr
from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement
from .tasks import Task

__all__ = [
    "SearchLimitExceeded",
    "selection_index",
    "port_election_index",
    "port_path_election_index",
    "complete_port_path_election_index",
    "election_index",
    "all_election_indices",
    "selection_assignment",
    "port_election_assignment",
    "path_election_assignment",
    "search_statistics",
    "reset_search_statistics",
]


class SearchLimitExceeded(RuntimeError):
    """Raised when the PPE/CPPE sequence search exceeds its state budget."""


#: When ``max_cells`` is not given explicitly, the footprint cap of the joint
#: search defaults to this many int cells per allowed state.  A stored state
#: costs ``k`` position ints plus ``k`` visited sets of up to path-length
#: nodes each, so a pure state *count* wildly undercounts real memory for
#: large classes; the cell cap bounds the actual footprint of ``seen`` (and
#: with it the queue, which only holds states already in ``seen``).
_DEFAULT_CELLS_PER_STATE = 32

#: Process-wide counters of the PPE/CPPE joint searches (monotone; workers
#: keep their own copies).  ``states``/``cells`` count *stored* search states
#: and their int-cell footprint, so the CI benchmark gate can certify that a
#: warm sweep replay performed zero fresh search work.
_SEARCH_STATS = {"searches": 0, "states": 0, "cells": 0, "limit_hits": 0}


def search_statistics() -> Dict[str, int]:
    """A snapshot of the cumulative PPE/CPPE joint-search counters."""
    return dict(_SEARCH_STATS)


def reset_search_statistics() -> None:
    """Zero the cumulative joint-search counters (tests and benchmarks)."""
    for key in _SEARCH_STATS:
        _SEARCH_STATS[key] = 0


def _default_refinement(graph: PortLabeledGraph) -> ViewRefinement:
    """The process-wide memoised refinement of ``graph``.

    Every index function takes an explicit ``refinement`` for callers that
    manage their own; when none is passed, the shared LRU cache of the runner
    subsystem supplies one, so repeated queries about the same graph -- from
    feasibility checks, from different ψ_Z computations, from benchmark
    sweeps -- all refine it at most once per process.  (Imported lazily:
    ``repro.runner`` imports this module.)
    """
    from ..runner.cache import shared_refinement

    return shared_refinement(graph)


def _default_kernel(graph: PortLabeledGraph) -> GraphKernel:
    """The process-wide memoised kernel (CSR, block-cut tree, BFS distances).

    Lives on the same cache entry as the refinement, so a warm sweep skips
    block-cut-tree construction exactly as it skips refinement passes.
    (Imported lazily for the same layering reason as above.)
    """
    from ..runner.cache import shared_kernel

    return shared_kernel(graph)


# --------------------------------------------------------------------------- #
# ψ_S
# --------------------------------------------------------------------------- #
def selection_index(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> Optional[int]:
    """ψ_S(G): smallest depth at which some node has a unique augmented view.

    Returns ``None`` for infeasible graphs (no such depth exists).
    """
    refinement = refinement if refinement is not None else _default_refinement(graph)
    return refinement.first_depth_with_unique_node()


def selection_assignment(
    graph: PortLabeledGraph,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> Optional[int]:
    """The leader a map-based Selection algorithm elects at ``depth``.

    Among all nodes with a unique ``B^depth``, the one with the smallest view
    in the canonical (lexicographic) order is chosen, mirroring the oracle of
    Theorem 2.2.  Returns ``None`` if no node has a unique view at ``depth``.
    """
    from ..views.encoding import augmented_view_key

    refinement = refinement if refinement is not None else _default_refinement(graph)
    unique = refinement.unique_nodes(depth)
    if not unique:
        return None
    return min(unique, key=lambda v: augmented_view_key(graph, v, depth))


# --------------------------------------------------------------------------- #
# ψ_PE
# --------------------------------------------------------------------------- #
def _pe_class_port(
    graph: PortLabeledGraph,
    members: Sequence[int],
    leader: int,
    cut,
) -> Optional[int]:
    """A single port valid as PE output for every member of a class, or ``None``.

    ``cut`` is the graph's :class:`~repro.kernel.blockcut.BlockCutTree`: one
    DFS per graph answers every "does this port start a simple path to the
    leader?" question in O(log Δ), replacing the per-removed-node BFS family
    this helper used to drive.  Whole classes are screened at once via
    :meth:`~repro.kernel.blockcut.BlockCutTree.class_port_ok`, which the
    numpy backend vectorises down to the articulation-point members.
    """
    min_degree = min(graph.degree(v) for v in members)
    for port in range(min_degree):
        if cut.class_port_ok(members, port, leader):
            return port
    return None


def port_election_assignment(
    graph: PortLabeledGraph,
    depth: int,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> Optional[Tuple[int, Dict[int, int]]]:
    """A (leader, per-node port) assignment realising PE at ``depth``, or ``None``.

    The assignment is constant on view-equivalence classes at ``depth``, so it
    can be implemented by a distributed algorithm running for ``depth`` rounds
    with the map as advice.
    """
    refinement = refinement if refinement is not None else _default_refinement(graph)
    classes = refinement.classes(depth)
    cut = _default_kernel(graph).block_cut_tree()
    singleton_nodes = sorted(m[0] for m in classes.values() if len(m) == 1)
    for leader in singleton_nodes:
        ports: Dict[int, int] = {}
        feasible = True
        for members in classes.values():
            if members == [leader]:
                continue
            port = _pe_class_port(graph, members, leader, cut)
            if port is None:
                feasible = False
                break
            for v in members:
                ports[v] = port
        if feasible:
            return leader, ports
    return None


def port_election_index(
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
) -> Optional[int]:
    """ψ_PE(G); ``None`` if the graph is infeasible (or ``max_depth`` is hit first)."""
    refinement = refinement if refinement is not None else _default_refinement(graph)
    start = refinement.first_depth_with_unique_node(max_depth=max_depth)
    if start is None:
        return None
    depth = start
    stable = refinement.ensure_stable()
    while max_depth is None or depth <= max_depth:
        if port_election_assignment(graph, depth, refinement=refinement) is not None:
            return depth
        if depth >= stable:
            # At the fixpoint every class is a singleton in a feasible graph,
            # so PE is solvable there; reaching this point means infeasible.
            return None
        depth += 1
    return None


# --------------------------------------------------------------------------- #
# ψ_PPE and ψ_CPPE
# --------------------------------------------------------------------------- #
def _common_path_sequence(
    graph: PortLabeledGraph,
    members: Sequence[int],
    leader: int,
    *,
    complete: bool,
    max_length: Optional[int] = None,
    max_states: int = 200_000,
    max_cells: Optional[int] = None,
    distances=None,
) -> Optional[Tuple[int, ...]]:
    """A common port sequence tracing a simple path from every member to ``leader``.

    For ``complete=False`` the sequence is the PPE-style outgoing ports
    ``(p1, ..., pk)``; for ``complete=True`` it is the CPPE-style flat
    ``(p1, q1, ..., pk, qk)``.  Returns ``None`` if no common sequence of
    length at most ``max_length`` exists.

    Two budgets guard the exponential joint search, both raising
    :class:`SearchLimitExceeded`: ``max_states`` bounds the number of stored
    states, and ``max_cells`` bounds their actual int-cell footprint
    (positions plus per-member visited sets; default
    ``max_states * 32``).  The state count alone undercounts memory by a
    factor of ``class size × path length``, which is what the cell cap fixes.

    ``distances`` (hop distances to ``leader``, e.g. from
    :meth:`repro.kernel.GraphKernel.distances_from`) enables lower-bound
    pruning: a branch whose member provably cannot reach the leader within
    the remaining simple-path budget is dead and never enters ``seen``.
    Pruning only removes provably fruitless states, so the returned sequence
    is identical with and without it.  When ``None``, one BFS from ``leader``
    over the graph's CSR view is performed here.
    """
    if any(v == leader for v in members):
        return None
    if max_length is None:
        max_length = graph.num_nodes - 1
    if max_cells is None:
        max_cells = max_states * _DEFAULT_CELLS_PER_STATE
    if distances is None:
        distances = bfs_distances_csr(graph.csr(), leader)
    stats = _SEARCH_STATS
    stats["searches"] += 1
    if any(distances[v] > max_length for v in members):
        return None
    csr = graph.csr()
    offsets = csr.offsets
    neighbors = csr.neighbors
    reverse_ports = csr.reverse_ports
    k = len(members)
    start_positions = tuple(members)
    start_visited = tuple(frozenset((v,)) for v in members)
    queue: deque = deque([(start_positions, start_visited, ())])
    seen = {(start_positions, start_visited)}
    cells = 2 * k  # the start state: k positions + k singleton visited sets
    try:
        while queue:
            positions, visited, sequence = queue.popleft()
            steps_taken = len(sequence) // 2 if complete else len(sequence)
            if steps_taken >= max_length:
                continue
            remaining = max_length - steps_taken - 1
            min_degree = min(offsets[v + 1] - offsets[v] for v in positions)
            for port in range(min_degree):
                next_nodes: List[int] = []
                incoming_ports = set()
                blocked = False
                for i, v in enumerate(positions):
                    dart = offsets[v] + port
                    u = neighbors[dart]
                    if u in visited[i] or distances[u] > remaining:
                        # revisit, or provably unable to reach the leader
                        # within the simple-path budget (distance lower
                        # bound; never triggers for the leader itself)
                        blocked = True
                        break
                    next_nodes.append(u)
                    incoming_ports.add(reverse_ports[dart])
                if blocked:
                    continue
                if complete and len(incoming_ports) != 1:
                    continue
                if complete:
                    new_sequence = sequence + (port, next(iter(incoming_ports)))
                else:
                    new_sequence = sequence + (port,)
                if all(u == leader for u in next_nodes):
                    return new_sequence
                if any(u == leader for u in next_nodes):
                    # Some members reached the leader early: their simple path
                    # can no longer end at the leader later: a dead branch.
                    continue
                new_positions = tuple(next_nodes)
                new_visited = tuple(
                    visited[i] | {next_nodes[i]} for i in range(k)
                )
                key = (new_positions, new_visited)
                if key in seen:
                    continue
                seen.add(key)
                cells += k + k * (steps_taken + 2)
                if len(seen) > max_states or cells > max_cells:
                    stats["limit_hits"] += 1
                    raise SearchLimitExceeded(
                        f"common-path search exceeded its budget: "
                        f"{len(seen)} states / {cells} cells "
                        f"(limits {max_states} states / {max_cells} cells, "
                        f"class size {k})"
                    )
                queue.append((new_positions, new_visited, new_sequence))
        return None
    finally:
        stats["states"] += len(seen)
        stats["cells"] += cells


def path_election_assignment(
    graph: PortLabeledGraph,
    depth: int,
    *,
    complete: bool,
    refinement: Optional[ViewRefinement] = None,
    max_states: int = 200_000,
    max_cells: Optional[int] = None,
) -> Optional[Tuple[int, Dict[int, Tuple[int, ...]]]]:
    """A (leader, per-node sequence) assignment realising PPE/CPPE at ``depth``, or ``None``."""
    refinement = refinement if refinement is not None else _default_refinement(graph)
    classes = refinement.classes(depth)
    kernel = _default_kernel(graph)
    singleton_nodes = sorted(m[0] for m in classes.values() if len(m) == 1)
    for leader in singleton_nodes:
        distances = kernel.distances_from(leader)
        sequences: Dict[int, Tuple[int, ...]] = {}
        feasible = True
        for members in classes.values():
            if members == [leader]:
                continue
            sequence = _common_path_sequence(
                graph,
                members,
                leader,
                complete=complete,
                max_states=max_states,
                max_cells=max_cells,
                distances=distances,
            )
            if sequence is None:
                feasible = False
                break
            for v in members:
                sequences[v] = sequence
        if feasible:
            return leader, sequences
    return None


def _path_index(
    graph: PortLabeledGraph,
    *,
    complete: bool,
    refinement: Optional[ViewRefinement],
    max_depth: Optional[int],
    max_states: int,
    max_cells: Optional[int] = None,
) -> Optional[int]:
    refinement = refinement if refinement is not None else _default_refinement(graph)
    start = refinement.first_depth_with_unique_node(max_depth=max_depth)
    if start is None:
        return None
    stable = refinement.ensure_stable()
    depth = start
    while max_depth is None or depth <= max_depth:
        assignment = path_election_assignment(
            graph,
            depth,
            complete=complete,
            refinement=refinement,
            max_states=max_states,
            max_cells=max_cells,
        )
        if assignment is not None:
            return depth
        if depth >= stable:
            return None
        depth += 1
    return None


def port_path_election_index(
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
    max_cells: Optional[int] = None,
) -> Optional[int]:
    """ψ_PPE(G) (exact, bounded search)."""
    return _path_index(
        graph,
        complete=False,
        refinement=refinement,
        max_depth=max_depth,
        max_states=max_states,
        max_cells=max_cells,
    )


def complete_port_path_election_index(
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
    max_cells: Optional[int] = None,
) -> Optional[int]:
    """ψ_CPPE(G) (exact, bounded search)."""
    return _path_index(
        graph,
        complete=True,
        refinement=refinement,
        max_depth=max_depth,
        max_states=max_states,
        max_cells=max_cells,
    )


# --------------------------------------------------------------------------- #
# dispatch helpers
# --------------------------------------------------------------------------- #
def election_index(
    task: Task,
    graph: PortLabeledGraph,
    *,
    refinement: Optional[ViewRefinement] = None,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Optional[int]:
    """ψ_Z(G) for any of the four tasks Z."""
    if task is Task.SELECTION:
        return selection_index(graph, refinement=refinement)
    if task is Task.PORT_ELECTION:
        return port_election_index(graph, refinement=refinement, max_depth=max_depth)
    if task is Task.PORT_PATH_ELECTION:
        return port_path_election_index(
            graph, refinement=refinement, max_depth=max_depth, max_states=max_states
        )
    if task is Task.COMPLETE_PORT_PATH_ELECTION:
        return complete_port_path_election_index(
            graph, refinement=refinement, max_depth=max_depth, max_states=max_states
        )
    raise ValueError(f"unknown task {task!r}")


def all_election_indices(
    graph: PortLabeledGraph,
    *,
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Dict[Task, Optional[int]]:
    """ψ_Z(G) for all four tasks, sharing one (process-cached) refinement."""
    refinement = _default_refinement(graph)
    return {
        task: election_index(
            task,
            graph,
            refinement=refinement,
            max_depth=max_depth,
            max_states=max_states,
        )
        for task in Task.ordered()
    }
